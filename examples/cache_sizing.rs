//! Cache downsizing (the paper's Figure 5 story): because prefetching is
//! independent of locality, an optimized task can sustain the performance
//! of on-demand fetching with a **smaller** cache — and a smaller cache
//! leaks less and switches less, compounding the energy win (up to 21% in
//! the paper).
//!
//! This example takes one task, optimizes it for a sequence of cache
//! sizes, and prints the smallest configuration whose optimized WCET and
//! energy still beat the original program on the full-size cache.
//!
//! ```text
//! cargo run --release --example cache_sizing
//! ```

use unlocked_prefetch::cache::CacheConfig;
use unlocked_prefetch::core::{OptimizeParams, Optimizer};
use unlocked_prefetch::energy::{EnergyModel, Technology};
use unlocked_prefetch::isa::shape::Shape;
use unlocked_prefetch::sim::{SimConfig, Simulator};

fn task() -> unlocked_prefetch::isa::Program {
    // An ndes-like cipher round structure: big rounds over S-box loops.
    Shape::seq([
        Shape::code(60),
        Shape::loop_(
            16,
            Shape::seq([
                Shape::code(55),
                Shape::loop_(8, Shape::code(22)),
                Shape::loop_(32, Shape::code(7)),
                Shape::if_else(2, Shape::code(25), Shape::code(20)),
            ]),
        ),
        Shape::loop_(64, Shape::code(10)),
        Shape::code(40),
    ])
    .compile("cipher")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = task();
    println!(
        "task: {} instructions ({} B)\n",
        program.instr_count(),
        program.code_bytes()
    );

    // Reference: original program on the largest cache.
    let full = CacheConfig::new(2, 16, 2048)?;
    let full_model = EnergyModel::new(&full, Technology::Nm32);
    let timing = full_model.timing();
    let sim = |cfg: CacheConfig, p: &unlocked_prefetch::isa::Program| {
        let m = EnergyModel::new(&cfg, Technology::Nm32);
        let r = Simulator::new(cfg, m.timing(), SimConfig::default())
            .run(p)
            .expect("task simulates");
        (r.acet_cycles(), m.energy_of(&r.mean_stats()).total_nj())
    };
    let (ref_acet, ref_energy) = sim(full, &program);
    let ref_wcet =
        unlocked_prefetch::wcet::WcetAnalysis::analyze(&program, &full, &timing)?.tau_w();
    println!("reference: original program on {full}:");
    println!("  WCET {ref_wcet} cycles, ACET {ref_acet:.0} cycles, energy {ref_energy:.0} nJ\n");

    println!(
        "{:>9} {:>11} {:>12} {:>12} {:>12} {:>7}",
        "capacity", "prefetches", "WCET", "ACET", "energy nJ", "verdict"
    );
    let mut best: Option<u32> = None;
    for capacity in [2048u32, 1024, 512, 256] {
        let cfg = CacheConfig::new(2, 16, capacity)?;
        let m = EnergyModel::new(&cfg, Technology::Nm32);
        let opt = Optimizer::new(
            cfg,
            OptimizeParams {
                timing: m.timing(),
                ..OptimizeParams::default()
            },
        )
        .run(&program)?;
        let wcet = opt.report.wcet_after;
        let (acet, energy) = sim(cfg, &opt.program);
        let ok = wcet <= ref_wcet && acet <= ref_acet && energy < ref_energy;
        if ok {
            best = Some(capacity);
        }
        println!(
            "{:>8}B {:>11} {:>12} {:>12.0} {:>12.0} {:>7}",
            capacity,
            opt.report.inserted,
            wcet,
            acet,
            energy,
            if ok { "fits" } else { "-" }
        );
    }
    match best {
        Some(c) => println!(
            "\n=> the optimized task sustains the 2048 B reference on a {c} B cache \
             ({}x smaller)",
            2048 / c
        ),
        None => println!("\n=> no smaller configuration beats the reference for this task"),
    }
    Ok(())
}
