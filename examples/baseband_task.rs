//! The paper's motivating scenario (§1): a mobile device's "radio" side —
//! baseband and protocol-stack processing on an RTOS — needs hard
//! real-time guarantees *and* energy efficiency.
//!
//! This example models a baseband task (frame loop with channel filter,
//! demodulation switch, and CRC inner loops), then compares three ways to
//! make its instruction-cache behaviour predictable:
//!
//! 1. plain on-demand fetching + WCET analysis (the baseline),
//! 2. **static cache locking** (predictable but slow: refs [4, 14]),
//! 3. the paper's **unlocked-cache prefetching** (predictable *and* fast).
//!
//! ```text
//! cargo run --release --example baseband_task
//! ```

use unlocked_prefetch::baselines::locking::{locked_tau_w, select_locked_greedy};
use unlocked_prefetch::cache::CacheConfig;
use unlocked_prefetch::core::{OptimizeParams, Optimizer};
use unlocked_prefetch::energy::{EnergyModel, Technology};
use unlocked_prefetch::isa::shape::Shape;
use unlocked_prefetch::sim::{SimConfig, Simulator};
use unlocked_prefetch::wcet::WcetAnalysis;

fn baseband() -> unlocked_prefetch::isa::Program {
    Shape::seq([
        Shape::code(24), // frame setup
        Shape::loop_(
            32, // symbols per frame
            Shape::seq([
                Shape::loop_(8, Shape::code(14)), // channel filter taps
                Shape::switch(3, (0..4).map(|k| Shape::code(10 + k))), // demod per modulation
                Shape::if_else(2, Shape::code(18), Shape::code(9)), // soft-bit path
                Shape::loop_(4, Shape::code(8)),  // CRC update
            ]),
        ),
        Shape::code(16), // frame teardown
    ])
    .compile("baseband")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = baseband();
    let config = CacheConfig::new(4, 16, 256)?;
    let model45 = EnergyModel::new(&config, Technology::Nm45);
    let model32 = EnergyModel::new(&config, Technology::Nm32);
    let timing = model45.timing();
    println!(
        "baseband task: {} instrs ({} B) on a {config} cache\n",
        program.instr_count(),
        program.code_bytes()
    );

    // 1. Baseline: on-demand fetching.
    let base = WcetAnalysis::analyze(&program, &config, &timing)?;
    let sim = Simulator::new(config, timing, SimConfig::default());
    let base_run = sim.run(&program)?;

    // 2. Static locking.
    let locked = select_locked_greedy(&program, &config, &timing)?;
    let locked_tau = locked_tau_w(&program, &config, &timing, &locked)?;
    let locked_run = sim.run_locked(&program, &locked)?;

    // 3. Unlocked-cache prefetching.
    let opt = Optimizer::new(
        config,
        OptimizeParams {
            timing,
            ..OptimizeParams::default()
        },
    )
    .run(&program)?;
    let opt_run = sim.run(&opt.program)?;

    let energy = |stats| {
        let e45 = model45.energy_of(&stats).total_nj();
        let e32 = model32.energy_of(&stats).total_nj();
        (e45, e32)
    };
    let (b45, b32) = energy(base_run.mean_stats());
    let (l45, l32) = energy(locked_run.mean_stats());
    let (o45, o32) = energy(opt_run.mean_stats());

    println!(
        "{:<22} {:>12} {:>12} {:>11} {:>11} {:>11}",
        "strategy", "WCET(mem)", "ACET(mem)", "miss rate", "E@45nm nJ", "E@32nm nJ"
    );
    let row = |name: &str, wcet: u64, acet: f64, miss: f64, e45: f64, e32: f64| {
        println!(
            "{:<22} {:>12} {:>12.0} {:>10.2}% {:>11.1} {:>11.1}",
            name,
            wcet,
            acet,
            100.0 * miss,
            e45,
            e32
        );
    };
    row(
        "on-demand (baseline)",
        base.tau_w(),
        base_run.acet_cycles(),
        base_run.miss_rate(),
        b45,
        b32,
    );
    row(
        "static locking",
        locked_tau,
        locked_run.acet_cycles(),
        locked_run.miss_rate(),
        l45,
        l32,
    );
    row(
        &format!("prefetching (+{} pf)", opt.report.inserted),
        opt.report.wcet_after,
        opt_run.acet_cycles(),
        opt_run.miss_rate(),
        o45,
        o32,
    );

    println!("\nthe reconciliation:");
    println!(
        "  prefetching keeps the WCET guarantee ({} <= {})",
        opt.report.wcet_after,
        base.tau_w()
    );
    println!(
        "  and reduces energy at 32nm by {:.1}% vs locking's {:+.1}%",
        100.0 * (1.0 - o32 / b32),
        100.0 * (1.0 - l32 / b32),
    );
    Ok(())
}
