//! Quickstart: optimize a program and inspect the guarantees.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use unlocked_prefetch::cache::{CacheConfig, MemTiming};
use unlocked_prefetch::core::{check, OptimizeParams, Optimizer};
use unlocked_prefetch::isa::shape::Shape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compress-like task: an outer loop whose branchy body slightly
    // exceeds the instruction cache (the paper's 1-10% miss-rate regime).
    let program = Shape::seq([
        Shape::code(30),
        Shape::loop_(
            20,
            Shape::seq([
                Shape::code(10),
                Shape::if_else(2, Shape::code(16), Shape::code(8)),
                Shape::if_then(2, Shape::code(12)),
            ]),
        ),
        Shape::code(14),
    ])
    .compile("compress-mini");

    let config = CacheConfig::new(2, 16, 128)?;
    let timing = MemTiming::default();

    println!(
        "program: {} instructions, {} bytes",
        program.instr_count(),
        program.code_bytes()
    );
    println!("cache:   {config} ({} sets), {timing}", config.n_sets());

    // Run the WCET-safe prefetch optimizer.
    let result = Optimizer::new(config, OptimizeParams::default()).run(&program)?;
    let r = &result.report;
    println!("\noptimizer report:");
    println!("  rounds                {}", r.rounds);
    println!("  prefetches inserted   {}", r.inserted);
    println!("  candidates examined   {}", r.candidates_seen);
    println!(
        "  tau_w (WCET memory)   {} -> {} cycles ({:+.1}%)",
        r.wcet_before,
        r.wcet_after,
        100.0 * (r.wcet_after as f64 / r.wcet_before as f64 - 1.0)
    );
    println!(
        "  WCET-path misses      {} -> {}",
        r.misses_before, r.misses_after
    );

    // Re-prove Theorem 1 independently.
    let theorem = check(
        &program,
        &result.program,
        result.analysis_after.layout().clone(),
        &config,
        &timing,
    )?;
    println!("\nTheorem 1 check: {theorem:?}");
    assert!(theorem.holds());
    println!("=> the optimized program is prefetch-equivalent and its WCET did not grow");
    Ok(())
}
