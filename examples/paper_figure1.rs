//! The paper's worked examples (Figures 1, 2 and 6), executably.
//!
//! * **Figure 1** — the reverse analysis walks the references from sink to
//!   source with an all-invalid initial state; a "replacement" in that
//!   walk marks a block that is needed soon downstream but will not
//!   survive demand fetching. We print those raw detections.
//! * **Figure 2** — at merge points the `J_SE` join propagates the state
//!   of the edge on the WCET path; the example's loop body has an
//!   if/else, so the join is exercised.
//! * **Figure 6** — loops are handled through VIVU: the body appears as a
//!   `first` and a `rest` instance, and the inserted prefetches (chosen
//!   from first-instance evidence) pay off across all `rest` iterations.
//!
//! ```text
//! cargo run --example paper_figure1
//! ```

use unlocked_prefetch::cache::{CacheConfig, MemTiming};
use unlocked_prefetch::core::{candidates, OptimizeParams, Optimizer};
use unlocked_prefetch::isa::shape::Shape;
use unlocked_prefetch::wcet::WcetAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bounded loop with a conditional body, slightly over-subscribing
    // the cache: the shape of the paper's running examples.
    let program = Shape::seq([
        Shape::code(30),
        Shape::loop_(
            20,
            Shape::seq([
                Shape::code(10),
                Shape::if_else(2, Shape::code(16), Shape::code(8)),
                Shape::if_then(2, Shape::code(12)),
            ]),
        ),
        Shape::code(14),
    ])
    .compile("figure-1-2-6");
    let config = CacheConfig::new(2, 16, 128)?;
    let timing = MemTiming::default();

    let before = WcetAnalysis::analyze(&program, &config, &timing)?;
    println!(
        "program: {} instructions over {} VIVU contexts, {} references",
        program.instr_count(),
        before.vivu().len(),
        before.acfg().len()
    );
    print_classes("before", &before);

    // Figure 1b: the reverse analysis' raw detections (Algorithm 1 line 2,
    // with the J_SE join of Figure 2 at merges).
    let cands = candidates::scan(&program, &before);
    println!(
        "\nreverse analysis found {} replacement points, e.g.:",
        cands.len()
    );
    for c in cands.iter().take(6) {
        let node = before.acfg().reference(c.r_i).node;
        println!(
            "  at {} in context {} : block {} is needed downstream",
            c.r_i,
            before.vivu().node(node).ctx,
            c.evicted
        );
    }

    // Figure 1c: the optimized program.
    let opt = Optimizer::new(
        config,
        OptimizeParams {
            timing,
            ..OptimizeParams::default()
        },
    )
    .run(&program)?;
    println!(
        "\noptimized: {} prefetches inserted over {} rounds, tau_w {} -> {} ({:+.1}%)",
        opt.report.inserted,
        opt.report.rounds,
        opt.report.wcet_before,
        opt.report.wcet_after,
        100.0 * (opt.report.wcet_after as f64 / opt.report.wcet_before as f64 - 1.0),
    );
    print_classes("after", &opt.analysis_after);
    assert!(opt.report.wcet_after <= opt.report.wcet_before);
    Ok(())
}

fn print_classes(label: &str, a: &WcetAnalysis) {
    let (hit, miss, unclassified) = a.classification_counts();
    println!(
        "{label}: {hit} always-hit, {miss} always-miss, {unclassified} unclassified; \
         tau_w = {}, WCET-path misses = {}",
        a.tau_w(),
        a.wcet_misses()
    );
}
