//! Facade crate for the `unlocked-prefetch` workspace.
//!
//! Re-exports every subsystem of the DAC 2013 reproduction ("Reconciling
//! real-time guarantees and energy efficiency through unlocked-cache
//! prefetching") under one roof so examples and downstream users need a
//! single dependency:
//!
//! * [`isa`] — program model, CFG, loops, code layout and relocation
//! * [`cache`] — concrete and abstract (must/may) LRU cache models
//! * [`ilp`] — simplex / branch-and-bound / DAG-longest-path solvers
//! * [`wcet`] — VIVU, ACFG, and IPET-based WCET analysis
//! * [`energy`] — CACTI-style cache/DRAM energy and timing models
//! * [`sim`] — trace-driven instruction-cache simulator
//! * [`suite`] — the 37 Mälardalen-like benchmark skeletons
//! * [`baselines`] — hardware prefetchers and static cache locking
//! * [`core`] — the WCET-safe software prefetch optimizer (the paper)
//!
//! # Quickstart
//!
//! ```
//! use unlocked_prefetch::cache::CacheConfig;
//! use unlocked_prefetch::core::{Optimizer, OptimizeParams};
//! use unlocked_prefetch::isa::shape::Shape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Shape::loop_(50, Shape::code(40)).compile("hot-loop");
//! let config = CacheConfig::new(2, 16, 256)?;
//! let result = Optimizer::new(config, OptimizeParams::default()).run(&program)?;
//! assert!(result.report.wcet_after <= result.report.wcet_before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use rtpf_audit as audit;
pub use rtpf_baselines as baselines;
pub use rtpf_cache as cache;
pub use rtpf_core as core;
pub use rtpf_energy as energy;
pub use rtpf_ilp as ilp;
pub use rtpf_isa as isa;
pub use rtpf_sim as sim;
pub use rtpf_suite as suite;
pub use rtpf_wcet as wcet;
