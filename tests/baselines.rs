//! Cross-crate baseline comparisons: hardware prefetchers and locking
//! against the paper's software technique.

use unlocked_prefetch::baselines::hw::{simulate_hw, HwScheme};
use unlocked_prefetch::cache::CacheConfig;
use unlocked_prefetch::core::{OptimizeParams, Optimizer};
use unlocked_prefetch::energy::{EnergyModel, Technology};
use unlocked_prefetch::sim::{SimConfig, Simulator};

fn test_sim() -> SimConfig {
    SimConfig {
        runs: 1,
        seed: 4242,
        ..SimConfig::default()
    }
}

#[test]
fn hw_schemes_all_run_on_a_suite_program() {
    let b = unlocked_prefetch::suite::by_name("edn").expect("edn");
    let config = CacheConfig::new(2, 16, 512).expect("valid");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    for scheme in [
        HwScheme::NextLine { n: 1 },
        HwScheme::NextLine { n: 2 },
        HwScheme::NextLineOnMiss { n: 1 },
        HwScheme::NextLineTagged,
        HwScheme::Target,
        HwScheme::WrongPath,
    ] {
        let r = simulate_hw(&b.program, config, timing, test_sim(), scheme)
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        assert!(r.stats.accesses > 0);
        assert_eq!(r.stats.hits + r.stats.misses, r.stats.accesses);
    }
}

#[test]
fn next_line_helps_streaming_but_software_prefetch_keeps_the_wcet_bound() {
    // Hardware next-line reduces the simulated time of a streaming loop,
    // but provides no WCET guarantee; the software technique is the one
    // with a provable bound (checked by Theorem 1 in the core crate).
    let b = unlocked_prefetch::suite::by_name("jfdctint").expect("jfdctint");
    let config = CacheConfig::new(2, 16, 1024).expect("valid");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    let base = Simulator::new(config, timing, test_sim())
        .run(&b.program)
        .expect("simulates");
    let hw = simulate_hw(
        &b.program,
        config,
        timing,
        test_sim(),
        HwScheme::NextLine { n: 2 },
    )
    .expect("simulates");
    assert!(
        hw.stats.cycles <= base.stats.cycles,
        "next-line should not slow a streaming DCT down: {} vs {}",
        hw.stats.cycles,
        base.stats.cycles
    );

    let opt = Optimizer::new(
        config,
        OptimizeParams {
            timing,
            max_rounds: 3,
            ..OptimizeParams::default()
        },
    )
    .run(&b.program)
    .expect("optimizes");
    assert!(opt.report.wcet_after <= opt.report.wcet_before);
}

#[test]
fn wrong_path_pollutes_more_than_target() {
    // Wrong-path prefetching issues strictly more fills; on a small cache
    // that shows up as extra fills (the pollution the paper mentions).
    let b = unlocked_prefetch::suite::by_name("statemate").expect("statemate");
    let config = CacheConfig::new(1, 16, 256).expect("valid");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    let target =
        simulate_hw(&b.program, config, timing, test_sim(), HwScheme::Target).expect("simulates");
    let wrong = simulate_hw(&b.program, config, timing, test_sim(), HwScheme::WrongPath)
        .expect("simulates");
    assert!(wrong.prefetches_issued >= target.prefetches_issued);
    assert!(wrong.stats.fills >= target.stats.fills);
}
