//! End-to-end pipeline tests spanning every crate: suite program → WCET
//! analysis → prefetch optimization → Theorem 1 verification → trace
//! simulation → energy accounting.

use unlocked_prefetch::baselines::locking::{locked_tau_w, select_locked_greedy};
use unlocked_prefetch::cache::CacheConfig;
use unlocked_prefetch::core::{check, prefetch_equivalent, OptimizeParams, Optimizer};
use unlocked_prefetch::energy::{EnergyModel, Technology};
use unlocked_prefetch::sim::{SimConfig, Simulator};
use unlocked_prefetch::wcet::WcetAnalysis;

fn test_sim() -> SimConfig {
    SimConfig {
        runs: 1,
        seed: 99,
        ..SimConfig::default()
    }
}

#[test]
fn full_pipeline_on_a_conflicting_benchmark() {
    let b = unlocked_prefetch::suite::by_name("fft1").expect("fft1 exists");
    let config = CacheConfig::new(2, 16, 1024).expect("valid geometry");
    let model = EnergyModel::new(&config, Technology::Nm32);
    let timing = model.timing();

    // Analyze + optimize.
    let opt = Optimizer::new(
        config,
        OptimizeParams {
            timing,
            ..OptimizeParams::default()
        },
    )
    .run(&b.program)
    .expect("optimizes");
    assert!(opt.report.wcet_after <= opt.report.wcet_before);

    // Theorem 1 re-proof.
    let theorem = check(
        &b.program,
        &opt.program,
        opt.analysis_after.layout().clone(),
        &config,
        &timing,
    )
    .expect("verifies");
    assert!(theorem.holds(), "{theorem:?}");

    // Simulate both and compare energies.
    let sim = Simulator::new(config, timing, test_sim());
    let orig = sim.run(&b.program).expect("simulates");
    let optr = sim.run(&opt.program).expect("simulates");
    let e_orig = model.energy_of(&orig.mean_stats()).total_nj();
    let e_opt = model.energy_of(&optr.mean_stats()).total_nj();
    // Energy must not blow up (small regressions can happen off the WCET
    // path; the sweep-level averages are checked in the experiments).
    assert!(
        e_opt <= e_orig * 1.10,
        "optimized energy {e_opt} vs original {e_orig}"
    );
}

#[test]
fn every_suite_program_survives_the_pipeline_on_one_config() {
    let config = CacheConfig::new(2, 16, 512).expect("valid geometry");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    for b in unlocked_prefetch::suite::catalog() {
        // Analysis.
        let a = WcetAnalysis::analyze(&b.program, &config, &timing)
            .unwrap_or_else(|e| panic!("{} failed analysis: {e}", b.name));
        assert!(a.tau_w() > 0, "{} has zero WCET", b.name);
        // Optimization (tight budget: this is a smoke test).
        let opt = Optimizer::new(
            config,
            OptimizeParams {
                timing,
                max_rounds: 2,
                max_singles_per_round: 4,
                ..OptimizeParams::default()
            },
        )
        .run(&b.program)
        .unwrap_or_else(|e| panic!("{} failed optimization: {e}", b.name));
        assert!(
            opt.report.wcet_after <= opt.report.wcet_before,
            "{} violated Theorem 1",
            b.name
        );
        assert!(
            prefetch_equivalent(&b.program, &opt.program),
            "{} not prefetch-equivalent",
            b.name
        );
    }
}

#[test]
fn simulator_and_analysis_agree_on_rough_magnitude() {
    // The WCET bound must exceed the simulated worst-like run's memory
    // cycles divided by a small slack (the sim replays real paths; the
    // analysis over-approximates).
    let b = unlocked_prefetch::suite::by_name("matmult").expect("matmult");
    let config = CacheConfig::new(2, 16, 512).expect("valid");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    let a = WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes");
    let sim = Simulator::new(
        config,
        timing,
        SimConfig {
            behavior: unlocked_prefetch::sim::BranchBehavior::WorstLike,
            runs: 1,
            seed: 1,
            max_fetches: 4_000_000,
        },
    );
    let run = sim.run(&b.program).expect("simulates");
    let sim_cycles = run.acet_cycles();
    let bound = a.tau_w() as f64;
    assert!(
        bound >= sim_cycles * 0.9,
        "WCET bound {bound} far below simulated worst-like {sim_cycles}"
    );
}

#[test]
fn locking_tradeoff_matches_the_papers_argument() {
    // For a task bigger than the cache, locking hurts both ACET and
    // (static-dominated) energy relative to plain LRU — §2.3.
    let b = unlocked_prefetch::suite::by_name("compress").expect("compress");
    let config = CacheConfig::new(2, 16, 512).expect("valid");
    let model = EnergyModel::new(&config, Technology::Nm32);
    let timing = model.timing();
    let locked = select_locked_greedy(&b.program, &config, &timing).expect("selects");
    let sim = Simulator::new(config, timing, test_sim());
    let free = sim.run(&b.program).expect("simulates");
    let lock = sim.run_locked(&b.program, &locked).expect("simulates");
    assert!(lock.acet_cycles() > free.acet_cycles());
    let e_free = model.energy_of(&free.mean_stats()).total_nj();
    let e_lock = model.energy_of(&lock.mean_stats()).total_nj();
    assert!(e_lock > e_free, "locking should cost energy at 32 nm");
    // But locking's WCET is still a valid bound of its own execution.
    let tau = locked_tau_w(&b.program, &config, &timing, &locked).expect("bounds");
    assert!(tau as f64 >= lock.acet_cycles() * 0.9);
}
