//! Property-based tests (proptest) on the core data structures and the
//! headline invariant: optimization never increases the WCET.

use proptest::prelude::*;

use unlocked_prefetch::cache::{
    CacheConfig, Classification, ConcreteState, MayState, MemTiming, MustState,
};
use unlocked_prefetch::core::{prefetch_equivalent, OptimizeParams, Optimizer};
use unlocked_prefetch::isa::shape::Shape;
use unlocked_prefetch::isa::{Layout, MemBlockId};
use unlocked_prefetch::wcet::WcetAnalysis;

/// Random structured programs: bounded depth, bounded loop bounds.
fn shapes() -> impl Strategy<Value = Shape> {
    let leaf = (1u32..30).prop_map(Shape::code);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::seq),
            (0u32..3, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Shape::if_else(c, a, b)),
            (0u32..3, inner.clone()).prop_map(|(c, a)| Shape::if_then(c, a)),
            (1u32..8, inner.clone()).prop_map(|(n, b)| Shape::loop_(n, b)),
            (0u32..2, prop::collection::vec(inner, 2..4))
                .prop_map(|(c, arms)| Shape::switch(c, arms)),
        ]
    })
}

fn small_configs() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![Just(16u32), Just(32)],
        prop_oneof![Just(64u32), Just(128), Just(256), Just(1024)],
    )
        .prop_filter_map("geometry must hold one set", |(a, b, c)| {
            CacheConfig::new(a, b, c).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_shapes_validate(shape in shapes()) {
        let p = shape.compile("prop");
        prop_assert!(p.validate().is_ok());
        prop_assert!(p.instr_count() > 0);
    }

    #[test]
    fn analysis_invariants(shape in shapes(), config in small_configs()) {
        let p = shape.compile("prop");
        let a = WcetAnalysis::analyze(&p, &config, &MemTiming::default()).expect("analyzes");
        // τ_w decomposes over references (Eq. 3 == Σ Eq. 2).
        let sum: u64 = a.acfg().refs().iter().map(|r| a.tau_of(r.id)).sum();
        prop_assert_eq!(sum, a.tau_w());
        // Classification counts partition the references.
        let (h, m, u) = a.classification_counts();
        prop_assert_eq!(h + m + u, a.acfg().len());
        // Every on-path reference has positive n_w and t_w.
        for r in a.acfg().refs() {
            if a.on_wcet_path(r.id) {
                prop_assert!(a.n_w(r.id) > 0);
            }
            prop_assert!(a.t_w(r.id) >= 1);
        }
    }

    #[test]
    fn optimizer_never_increases_wcet(shape in shapes(), config in small_configs()) {
        let p = shape.compile("prop");
        let params = OptimizeParams {
            max_rounds: 2,
            max_singles_per_round: 4,
            ..OptimizeParams::default()
        };
        let r = Optimizer::new(config, params).run(&p).expect("optimizes");
        prop_assert!(r.report.wcet_after <= r.report.wcet_before);
        prop_assert!(prefetch_equivalent(&p, &r.program));
        prop_assert!(r.program.validate().is_ok());
        prop_assert_eq!(r.program.prefetch_count() as u32, r.report.inserted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_concrete_invariants(accesses in prop::collection::vec(0u64..64, 1..200)) {
        let config = CacheConfig::new(2, 16, 64).expect("valid");
        let mut c = ConcreteState::new(&config);
        for &b in &accesses {
            let block = MemBlockId(b);
            c.access(block);
            // The accessed block is resident and MRU in its set.
            prop_assert!(c.contains(block));
            let set = c.set(config.set_of(block));
            prop_assert_eq!(set[0], block);
            // No set exceeds the associativity; no duplicates.
            for s in 0..config.n_sets() as usize {
                let ways = c.set(s);
                prop_assert!(ways.len() <= config.assoc() as usize);
                for i in 0..ways.len() {
                    for j in i + 1..ways.len() {
                        prop_assert_ne!(ways[i], ways[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn abstract_states_bracket_the_concrete_state(
        accesses in prop::collection::vec(0u64..48, 1..150)
    ) {
        // must ⊆ concrete ⊆ may along any access string.
        let config = CacheConfig::new(2, 16, 128).expect("valid");
        let mut c = ConcreteState::new(&config);
        let mut must = MustState::new(&config);
        let mut may = MayState::new(&config);
        for &b in &accesses {
            let block = MemBlockId(b);
            // Classification from the pre-access states must predict the
            // concrete outcome: always-hit ⇒ hit, always-miss ⇒ miss.
            let cls = Classification::of(block, &must, &may);
            let outcome = c.access(block);
            match cls {
                Classification::AlwaysHit => {
                    prop_assert!(outcome.is_hit(), "always-hit {block} missed")
                }
                Classification::AlwaysMiss => {
                    prop_assert!(!outcome.is_hit(), "always-miss {block} hit")
                }
                _ => {}
            }
            must.update(block);
            may.update(block);
            for (mb, _) in must.iter() {
                prop_assert!(c.contains(mb), "must claims {mb} not in concrete");
            }
            for cb in c.blocks() {
                prop_assert!(may.contains(cb), "concrete holds {cb} not in may");
            }
        }
    }

    #[test]
    fn must_join_is_sound_for_both_branches(
        left in prop::collection::vec(0u64..32, 1..40),
        right in prop::collection::vec(0u64..32, 1..40),
    ) {
        // Whatever the join guarantees must be guaranteed by each input.
        let config = CacheConfig::new(2, 16, 64).expect("valid");
        let mut a = MustState::new(&config);
        let mut b = MustState::new(&config);
        let mut ca = ConcreteState::new(&config);
        let mut cb = ConcreteState::new(&config);
        for &x in &left { a.update(MemBlockId(x)); ca.access(MemBlockId(x)); }
        for &x in &right { b.update(MemBlockId(x)); cb.access(MemBlockId(x)); }
        let j = a.join(&b);
        for (blk, age) in j.iter() {
            prop_assert!(ca.contains(blk) && cb.contains(blk));
            // Join age is the max of the per-side ages.
            let aa = a.age(blk).expect("in intersection");
            let ab = b.age(blk).expect("in intersection");
            prop_assert_eq!(age, aa.max(ab));
        }
    }

    #[test]
    fn anchored_layout_shifts_prefix_by_one_slot(
        n_before in 1usize..30,
        n_after in 1usize..30,
    ) {
        use unlocked_prefetch::isa::{InstrKind, Program};
        let mut p = Program::new("prop");
        let b0 = p.entry();
        let mut ids = Vec::new();
        for _ in 0..(n_before + n_after) {
            ids.push(p.push_instr(b0, InstrKind::Compute(0)).expect("push"));
        }
        let before = Layout::of(&p);
        let anchor = ids[n_before];
        let addr = before.addr(anchor);
        p.insert_instr(b0, n_before, InstrKind::Prefetch { target: ids[0] })
            .expect("insert");
        let after = Layout::anchored(&p, anchor, addr);
        // Suffix fixed, prefix down one slot.
        for (i, &id) in ids.iter().enumerate() {
            if i < n_before {
                prop_assert_eq!(after.addr(id), before.addr(id) - 4);
            } else {
                prop_assert_eq!(after.addr(id), before.addr(id));
            }
        }
    }
}
