//! Theorem 1 (WCET non-increase + prefetch equivalence) across a matrix
//! of suite programs and cache configurations.

use unlocked_prefetch::cache::{CacheConfig, MemTiming};
use unlocked_prefetch::core::{check, OptimizeParams, Optimizer};

/// Representative sub-matrix: small/medium/large programs × small/medium/
/// large caches, direct-mapped through 4-way, both block sizes.
const PROGRAMS: [&str; 6] = ["bs", "crc", "fft1", "compress", "ndes", "statemate"];

fn configs() -> Vec<CacheConfig> {
    [
        (1u32, 16u32, 256u32),
        (2, 16, 512),
        (4, 16, 1024),
        (1, 32, 512),
        (2, 32, 2048),
        (4, 32, 8192),
    ]
    .into_iter()
    .map(|(a, b, c)| CacheConfig::new(a, b, c).expect("valid"))
    .collect()
}

#[test]
fn theorem_one_holds_across_the_matrix() {
    let timing = MemTiming::default();
    for name in PROGRAMS {
        let b = unlocked_prefetch::suite::by_name(name).expect("known benchmark");
        for config in configs() {
            let opt = Optimizer::new(
                config,
                OptimizeParams {
                    timing,
                    max_rounds: 3,
                    max_singles_per_round: 6,
                    ..OptimizeParams::default()
                },
            )
            .run(&b.program)
            .unwrap_or_else(|e| panic!("{name}@{config}: {e}"));
            let report = check(
                &b.program,
                &opt.program,
                opt.analysis_after.layout().clone(),
                &config,
                &timing,
            )
            .unwrap_or_else(|e| panic!("{name}@{config}: {e}"));
            assert!(
                report.holds(),
                "{name}@{config}: Theorem 1 violated: {report:?}"
            );
        }
    }
}

#[test]
fn monotonicity_of_wcet_with_capacity_is_preserved_after_optimization() {
    // Growing the cache never hurts the analysis; the optimized programs
    // must preserve that sanity property too.
    let timing = MemTiming::default();
    let b = unlocked_prefetch::suite::by_name("cnt").expect("cnt");
    let mut last_opt = u64::MAX;
    for capacity in [256u32, 1024, 4096] {
        let config = CacheConfig::new(2, 16, capacity).expect("valid");
        let opt = Optimizer::new(
            config,
            OptimizeParams {
                timing,
                max_rounds: 3,
                ..OptimizeParams::default()
            },
        )
        .run(&b.program)
        .expect("optimizes");
        assert!(
            opt.report.wcet_after <= last_opt,
            "optimized WCET grew when the cache grew"
        );
        last_opt = opt.report.wcet_after;
    }
}
