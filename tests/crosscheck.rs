//! Cross-validation between independent components: the analyzer, the
//! simulator, and the text format must agree wherever their domains
//! overlap.

use unlocked_prefetch::cache::{CacheConfig, MemTiming};
use unlocked_prefetch::isa::shape::Shape;
use unlocked_prefetch::isa::text;
use unlocked_prefetch::sim::{BranchBehavior, SimConfig, Simulator};
use unlocked_prefetch::wcet::WcetAnalysis;

/// For a straight-line program there is exactly one path: the WCET bound
/// and the simulated run must agree cycle for cycle.
#[test]
fn analysis_equals_simulation_on_straight_line_code() {
    for n in [8u32, 40, 200] {
        let p = Shape::code(n).compile("line");
        for (a, b, c) in [(1u32, 16u32, 64u32), (2, 16, 256), (4, 32, 1024)] {
            let config = CacheConfig::new(a, b, c).expect("valid");
            let timing = MemTiming::default();
            let analysis = WcetAnalysis::analyze(&p, &config, &timing).expect("analyzes");
            let sim = Simulator::new(
                config,
                timing,
                SimConfig {
                    behavior: BranchBehavior::WorstLike,
                    runs: 1,
                    seed: 0,
                    max_fetches: 1_000_000,
                },
            )
            .run(&p)
            .expect("simulates");
            assert_eq!(
                analysis.tau_w(),
                sim.stats.cycles,
                "n={n} config=({a},{b},{c}): bound and replay must coincide"
            );
            assert_eq!(analysis.wcet_misses(), sim.stats.misses);
            assert_eq!(analysis.wcet_accesses(), sim.stats.accesses);
        }
    }
}

/// Single-path loops (no conditionals): the worst-like replay must never
/// exceed the bound, and must stay close to it (the bound's slack is only
/// the broken-back-edge approximation at the final header test).
#[test]
fn bound_dominates_single_path_loops() {
    for bound in [1u32, 2, 7, 25] {
        let p = Shape::seq([
            Shape::code(5),
            Shape::loop_(bound, Shape::code(12)),
            Shape::code(3),
        ])
        .compile("loop");
        let config = CacheConfig::new(2, 16, 128).expect("valid");
        let timing = MemTiming::default();
        let analysis = WcetAnalysis::analyze(&p, &config, &timing).expect("analyzes");
        let sim = Simulator::new(
            config,
            timing,
            SimConfig {
                behavior: BranchBehavior::WorstLike,
                runs: 1,
                seed: 0,
                max_fetches: 1_000_000,
            },
        )
        .run(&p)
        .expect("simulates");
        // The replay executes the final header test that VIVU's broken
        // back edge does not charge; allow that sliver both ways.
        let bound_cycles = analysis.tau_w() as f64;
        let replay = sim.stats.cycles as f64;
        assert!(
            bound_cycles >= replay * 0.95,
            "bound {bound_cycles} far below replay {replay} at bound={bound}"
        );
        assert!(
            bound_cycles <= replay * 1.30 + 100.0,
            "bound {bound_cycles} unreasonably above replay {replay} at bound={bound}"
        );
    }
}

/// Every suite program's shape round-trips through the text format.
#[test]
fn text_format_roundtrips_the_entire_suite() {
    for (name, _) in unlocked_prefetch::suite::programs::NAMES {
        let shape = unlocked_prefetch::suite::programs::shape_of(name).expect("known");
        let rendered = text::write(name, &shape);
        let (name2, shape2) =
            text::parse(&rendered).unwrap_or_else(|e| panic!("{name} failed to re-parse: {e}"));
        assert_eq!(name, name2);
        // Nested `Seq`s flatten on re-parse, so compare by the printed
        // normal form (idempotence) and by the compiled program.
        assert_eq!(
            rendered,
            text::write(&name2, &shape2),
            "{name} rendering is not idempotent"
        );
        let p1 = shape.compile(name);
        let p2 = shape2.compile(name);
        assert_eq!(p1.instr_count(), p2.instr_count(), "{name}");
        assert_eq!(p1.block_count(), p2.block_count(), "{name}");
    }
}

/// The analyzer must be deterministic: repeated runs yield identical
/// bounds and classifications.
#[test]
fn analysis_is_deterministic() {
    let b = unlocked_prefetch::suite::by_name("qurt").expect("qurt");
    let config = CacheConfig::new(2, 16, 512).expect("valid");
    let timing = MemTiming::default();
    let a1 = WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes");
    let a2 = WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes");
    assert_eq!(a1.tau_w(), a2.tau_w());
    assert_eq!(a1.classification_counts(), a2.classification_counts());
    for r in a1.acfg().refs() {
        assert_eq!(a1.classification(r.id), a2.classification(r.id));
        assert_eq!(a1.n_w(r.id), a2.n_w(r.id));
    }
}
