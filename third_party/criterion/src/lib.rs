//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of criterion's API the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros) on top of plain `std::time::Instant`
//! wall-clock measurement. There is no statistical analysis — each
//! benchmark reports the mean over an adaptive number of iterations.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget per benchmark once the first iteration has completed.
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);
/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u32 = 1000;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in always sets up one input per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Measures one benchmark body.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly, measuring wall-clock time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let _ = black_box(routine()); // warm-up, unmeasured
        loop {
            let start = Instant::now();
            let _ = black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= SAMPLE_BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    /// Runs `routine` on fresh inputs from `setup`; only `routine` is
    /// measured.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = black_box(routine(setup())); // warm-up, unmeasured
        loop {
            let input = setup();
            let start = Instant::now();
            let _ = black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= SAMPLE_BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no measurement)");
            return;
        }
        let mean = self.total / self.iters;
        println!("{name:<50} {mean:>12.2?}/iter ({} iters)", self.iters);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{id}"));
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher::default();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(b.iters >= 1);
    }

    #[test]
    fn batched_setup_is_unmeasured() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
