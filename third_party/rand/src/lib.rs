//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this tiny crate
//! provides the exact API surface the workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`) on
//! top of a deterministic SplitMix64 generator. It is *not* a general
//! replacement for `rand`: distribution quality is "good enough for
//! simulation", nothing more.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Seedable construction (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small seeds.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

/// Ranges that can be sampled uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` in use).
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` in use.
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(1..=9u64);
            assert!((1..=9).contains(&w));
            let x = rng.gen_range(0usize..3);
            assert!(x < 3);
            let f = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
