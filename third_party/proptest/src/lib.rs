//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `prop_filter_map`, [`strategy::Just`], tuple and
//! range strategies, [`collection::vec`], [`arbitrary::any`], and the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from real proptest: generation is plain uniform sampling
//! from a per-test deterministic seed (no bias towards edge cases), and
//! failing cases are reported but **not shrunk**. Determinism means a
//! failure reproduces by re-running the same test binary.

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert*!` with its rendered message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = TestRng { state: seed };
            let _ = rng.next_u64();
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Stable seed for a test name (FNV-1a), so every test gets its own
    /// deterministic case sequence.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy: 'static {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
        {
            BoxedStrategy::new(move |rng| self.new_value(rng))
        }

        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.new_value(rng)))
        }

        fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
        where
            Self: Sized,
            S: Strategy,
            S::Value: 'static,
            F: Fn(Self::Value) -> S + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.new_value(rng)).new_value(rng))
        }

        /// Maps values through `f`, resampling when it returns `None`.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> BoxedStrategy<U>
        where
            Self: Sized,
            U: 'static,
            F: Fn(Self::Value) -> Option<U> + 'static,
        {
            BoxedStrategy::new(move |rng| {
                for _ in 0..10_000 {
                    if let Some(u) = f(self.new_value(rng)) {
                        return u;
                    }
                }
                panic!("prop_filter_map rejected every sample: {whence}")
            })
        }

        /// Recursive strategies, expanded eagerly to `depth` levels with
        /// `self` as the leaf (the probabilistic depth control of real
        /// proptest is approximated by the branch strategies themselves).
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = branch(cur).boxed();
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between equally-weighted arms (`prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::new(move |rng| {
            let i = rng.below(arms.len());
            arms[i].new_value(rng)
        })
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{BoxedStrategy, Strategy};

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let span = size.hi_exclusive - size.lo;
            let len = size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| element.new_value(rng)).collect()
        })
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary + 'static> Strategy for Any<A> {
        type Value = A;

        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary + 'static>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic randomized tests (see crate docs for the
/// differences from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident (
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec((0u32..5).prop_map(|x| x * 2), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn patterns_destructure((a, b) in (0u32..10, Just(7u32))) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 7);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::test_runner::TestRng;
        let leaf = (0u32..4).prop_map(|x| vec![x]);
        let nested = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(mut a, b)| {
                    a.extend(b);
                    a
                }),
            ]
        });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..50 {
            let v = nested.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16);
        }
    }

    #[test]
    fn filter_map_resamples() {
        use crate::test_runner::TestRng;
        let evens =
            (0u32..100).prop_filter_map("even", |x| if x % 2 == 0 { Some(x) } else { None });
        let mut rng = TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(evens.new_value(&mut rng) % 2, 0);
        }
    }
}
