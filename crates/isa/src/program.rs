//! The [`Program`] container: instruction arena, basic blocks, and CFG.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{ProgramError, ValidateError};
use crate::instr::{Instr, InstrId, InstrKind};

/// Stable identity of a basic block within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Arena index of this block.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Why control flows along a CFG edge.
///
/// The distinction matters to the trace simulator (branch behaviour policies)
/// and to the target/wrong-path hardware prefetcher baselines, which treat
/// taken branches differently from fall-through.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Execution falls through to the next block in layout order.
    Fallthrough,
    /// A branch (or switch arm) transfers control away from layout order.
    Taken,
}

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    id: BlockId,
    instrs: Vec<InstrId>,
}

impl BasicBlock {
    /// Identity of this block.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Instructions in program order.
    #[inline]
    pub fn instrs(&self) -> &[InstrId] {
        &self.instrs
    }

    /// Number of instructions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the block holds no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A whole program: instruction arena, basic blocks, CFG, and loop bounds.
///
/// Instruction and block ids are arena indices and remain stable across
/// mutation; in particular the prefetch optimizer can insert instructions
/// without invalidating outstanding ids. Byte addresses are *not* stored
/// here — compute them with [`Layout::of`](crate::Layout::of), which is how
/// relocation after an insertion is observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    name: String,
    instr_kinds: Vec<InstrKind>,
    /// For each instruction: the block that contains it.
    instr_block: Vec<BlockId>,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    /// Blocks in code-layout order (addresses are assigned in this order).
    layout_order: Vec<BlockId>,
    succs: Vec<Vec<(BlockId, EdgeKind)>>,
    preds: Vec<Vec<BlockId>>,
    /// Iteration bounds, keyed by natural-loop header. A bound of `n` means
    /// the loop body headed there executes at most `n` times per entry of
    /// the loop from outside.
    loop_bounds: BTreeMap<BlockId, u32>,
}

impl Program {
    /// Creates an empty program with a single (empty) entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let mut p = Program {
            name: name.into(),
            instr_kinds: Vec::new(),
            instr_block: Vec::new(),
            blocks: Vec::new(),
            entry: BlockId(0),
            layout_order: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            loop_bounds: BTreeMap::new(),
        };
        let entry = p.add_block();
        p.entry = entry;
        p
    }

    /// Program name (used in reports and experiment output).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Re-designates the entry block.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownBlock`] if `entry` does not exist.
    pub fn set_entry(&mut self, entry: BlockId) -> Result<(), ProgramError> {
        self.check_block(entry)?;
        self.entry = entry;
        Ok(())
    }

    /// Appends a fresh, empty basic block (also appended to layout order).
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            id,
            instrs: Vec::new(),
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.layout_order.push(id);
        id
    }

    /// Number of basic blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instructions.
    #[inline]
    pub fn instr_count(&self) -> usize {
        self.instr_kinds.len()
    }

    /// Number of software prefetch instructions.
    pub fn prefetch_count(&self) -> usize {
        self.instr_kinds.iter().filter(|k| k.is_prefetch()).count()
    }

    /// All block ids, in arena order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Borrow a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this program.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The instruction with identity `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an instruction of this program.
    #[inline]
    pub fn instr(&self, id: InstrId) -> Instr {
        Instr {
            id,
            kind: self.instr_kinds[id.index()],
        }
    }

    /// The block containing instruction `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an instruction of this program.
    #[inline]
    pub fn block_of(&self, id: InstrId) -> BlockId {
        self.instr_block[id.index()]
    }

    /// Position of `id` inside its block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an instruction of this program.
    pub fn pos_in_block(&self, id: InstrId) -> usize {
        let bb = self.block_of(id);
        self.blocks[bb.index()]
            .instrs
            .iter()
            .position(|&i| i == id)
            .expect("instr_block out of sync")
    }

    /// Appends an instruction to `block`, returning its stable id.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownBlock`] if `block` does not exist.
    pub fn push_instr(&mut self, block: BlockId, kind: InstrKind) -> Result<InstrId, ProgramError> {
        self.check_block(block)?;
        let pos = self.blocks[block.index()].instrs.len();
        self.insert_instr(block, pos, kind)
    }

    /// Inserts an instruction at `pos` within `block` (0 = block start),
    /// returning its stable id. Existing ids are unaffected; addresses
    /// change only through [`Layout`](crate::Layout) recomputation.
    ///
    /// # Errors
    ///
    /// Returns an error if the block does not exist or `pos` is past the end.
    pub fn insert_instr(
        &mut self,
        block: BlockId,
        pos: usize,
        kind: InstrKind,
    ) -> Result<InstrId, ProgramError> {
        self.check_block(block)?;
        let len = self.blocks[block.index()].instrs.len();
        if pos > len {
            return Err(ProgramError::PositionOutOfRange { block, pos, len });
        }
        if let InstrKind::Prefetch { target } = kind {
            self.check_instr(target)?;
        }
        let id = InstrId(self.instr_kinds.len() as u32);
        self.instr_kinds.push(kind);
        self.instr_block.push(block);
        self.blocks[block.index()].instrs.insert(pos, id);
        Ok(id)
    }

    /// Removes instruction `id`, which must be the newest in the arena —
    /// the exact inverse of the latest [`insert_instr`](Program::insert_instr).
    /// This lets a caller speculate an insertion in place and revert it
    /// without cloning the program. No other instruction may reference
    /// `id` as a prefetch target.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownInstr`] if `id` is not the newest
    /// instruction.
    pub fn remove_newest_instr(&mut self, id: InstrId) -> Result<(), ProgramError> {
        if id.index() + 1 != self.instr_kinds.len() {
            return Err(ProgramError::UnknownInstr(id));
        }
        debug_assert!(
            !self
                .instr_kinds
                .iter()
                .any(|k| matches!(k, InstrKind::Prefetch { target } if *target == id)),
            "removing a prefetch target would dangle"
        );
        let block = self.instr_block[id.index()];
        self.instr_kinds.pop();
        self.instr_block.pop();
        let instrs = &mut self.blocks[block.index()].instrs;
        let pos = instrs
            .iter()
            .position(|&i| i == id)
            .expect("instruction listed in its block");
        instrs.remove(pos);
        Ok(())
    }

    /// Adds a CFG edge `from -> to`.
    ///
    /// Duplicate edges are ignored (the CFG is a simple graph).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownBlock`] for an unknown endpoint.
    pub fn add_edge(
        &mut self,
        from: BlockId,
        to: BlockId,
        kind: EdgeKind,
    ) -> Result<(), ProgramError> {
        self.check_block(from)?;
        self.check_block(to)?;
        if self.succs[from.index()].iter().any(|&(s, _)| s == to) {
            return Ok(());
        }
        self.succs[from.index()].push((to, kind));
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Successors of `block` with their edge kinds.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a block of this program.
    #[inline]
    pub fn succs(&self, block: BlockId) -> &[(BlockId, EdgeKind)] {
        &self.succs[block.index()]
    }

    /// Predecessors of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a block of this program.
    #[inline]
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Blocks with no successors (program exits).
    pub fn exits(&self) -> Vec<BlockId> {
        self.block_ids()
            .filter(|b| self.succs[b.index()].is_empty())
            .collect()
    }

    /// Records the iteration bound of the natural loop headed by `header`.
    ///
    /// The bound counts body executions per entry from outside the loop
    /// (i.e. a `for (i = 0; i < n; i++)` loop has bound `n`).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownBlock`] if `header` does not exist.
    pub fn set_loop_bound(&mut self, header: BlockId, bound: u32) -> Result<(), ProgramError> {
        self.check_block(header)?;
        self.loop_bounds.insert(header, bound);
        Ok(())
    }

    /// The iteration bound recorded for `header`, if any.
    #[inline]
    pub fn loop_bound(&self, header: BlockId) -> Option<u32> {
        self.loop_bounds.get(&header).copied()
    }

    /// All recorded loop bounds, keyed by header.
    #[inline]
    pub fn loop_bounds(&self) -> &BTreeMap<BlockId, u32> {
        &self.loop_bounds
    }

    /// Blocks in code-layout order. [`Layout`](crate::Layout) assigns
    /// addresses by walking this order.
    #[inline]
    pub fn layout_order(&self) -> &[BlockId] {
        &self.layout_order
    }

    /// Total executed-code size in bytes under the current layout.
    pub fn code_bytes(&self) -> u64 {
        self.instr_count() as u64 * crate::INSTR_BYTES
    }

    /// Checks structural invariants: reachability, loop bounds present for
    /// every natural loop, reducibility, and prefetch target validity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::NoEntry);
        }
        // Reachability from entry.
        let order = crate::cfg::reverse_postorder(self);
        let mut reachable = vec![false; self.blocks.len()];
        for &b in &order {
            reachable[b.index()] = true;
        }
        for b in self.block_ids() {
            if !reachable[b.index()] {
                return Err(ValidateError::Unreachable(b));
            }
        }
        // Dead ends: every non-exit block must have successors; exits are
        // allowed anywhere. (Nothing to check: "no successors" *defines* an
        // exit here; instead require at least one exit overall.)
        if self.exits().is_empty() {
            return Err(ValidateError::DeadEnd(self.entry));
        }
        // Loops: every back edge must target a dominating header with bound.
        let dom = crate::dom::Dominators::compute(self);
        let loops = crate::loops::LoopForest::compute(self, &dom)
            .map_err(|e| ValidateError::Irreducible(e.block()))?;
        for l in loops.loops() {
            match self.loop_bound(l.header) {
                None => return Err(ValidateError::MissingLoopBound { header: l.header }),
                Some(0) => return Err(ValidateError::ZeroLoopBound { header: l.header }),
                Some(_) => {}
            }
        }
        // Prefetch targets.
        for (idx, kind) in self.instr_kinds.iter().enumerate() {
            if let InstrKind::Prefetch { target } = kind {
                if target.index() >= self.instr_kinds.len() {
                    return Err(ValidateError::DanglingPrefetch(InstrId(idx as u32)));
                }
            }
        }
        Ok(())
    }

    fn check_block(&self, b: BlockId) -> Result<(), ProgramError> {
        if b.index() < self.blocks.len() {
            Ok(())
        } else {
            Err(ProgramError::UnknownBlock(b))
        }
    }

    fn check_instr(&self, i: InstrId) -> Result<(), ProgramError> {
        if i.index() < self.instr_kinds.len() {
            Ok(())
        } else {
            Err(ProgramError::UnknownInstr(i))
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} ({} blocks, {} instrs)",
            self.name,
            self.block_count(),
            self.instr_count()
        )?;
        for &b in &self.layout_order {
            let bb = self.block(b);
            let succ: Vec<String> = self.succs(b).iter().map(|(s, _)| s.to_string()).collect();
            writeln!(f, "  {b} ({} instrs) -> [{}]", bb.len(), succ.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Program {
        // bb0 -> bb1 -> bb3, bb0 -> bb2 -> bb3
        let mut p = Program::new("diamond");
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let b3 = p.add_block();
        for b in [b0, b1, b2, b3] {
            for t in 0..3 {
                p.push_instr(b, InstrKind::Compute(t)).unwrap();
            }
        }
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b0, b2, EdgeKind::Taken).unwrap();
        p.add_edge(b1, b3, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b2, b3, EdgeKind::Fallthrough).unwrap();
        p
    }

    #[test]
    fn new_program_has_entry() {
        let p = Program::new("p");
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.entry(), BlockId(0));
        assert_eq!(p.instr_count(), 0);
    }

    #[test]
    fn diamond_validates() {
        assert_eq!(diamond().validate(), Ok(()));
    }

    #[test]
    fn ids_are_stable_across_insertion() {
        let mut p = diamond();
        let b1 = BlockId(1);
        let before: Vec<InstrId> = p.block(b1).instrs().to_vec();
        let inserted = p
            .insert_instr(b1, 1, InstrKind::Prefetch { target: before[0] })
            .unwrap();
        let after = p.block(b1).instrs();
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(after[1], inserted);
        assert_eq!(after[0], before[0]);
        assert_eq!(after[2], before[1]);
        assert_eq!(p.block_of(inserted), b1);
        assert_eq!(p.pos_in_block(inserted), 1);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut p = Program::new("p");
        let b0 = p.entry();
        let b1 = p.add_block();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        assert_eq!(p.succs(b0).len(), 1);
        assert_eq!(p.preds(b1).len(), 1);
    }

    #[test]
    fn unreachable_block_is_rejected() {
        let mut p = Program::new("p");
        let b0 = p.entry();
        p.push_instr(b0, InstrKind::Compute(0)).unwrap();
        let orphan = p.add_block();
        assert_eq!(p.validate(), Err(ValidateError::Unreachable(orphan)));
    }

    #[test]
    fn loop_without_bound_is_rejected() {
        let mut p = Program::new("p");
        let b0 = p.entry();
        let body = p.add_block();
        let exit = p.add_block();
        p.add_edge(b0, body, EdgeKind::Fallthrough).unwrap();
        p.add_edge(body, body, EdgeKind::Taken).unwrap();
        p.add_edge(body, exit, EdgeKind::Fallthrough).unwrap();
        assert_eq!(
            p.validate(),
            Err(ValidateError::MissingLoopBound { header: body })
        );
        p.set_loop_bound(body, 10).unwrap();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn position_out_of_range() {
        let mut p = Program::new("p");
        let b0 = p.entry();
        let err = p.insert_instr(b0, 5, InstrKind::Compute(0)).unwrap_err();
        assert!(matches!(err, ProgramError::PositionOutOfRange { .. }));
    }

    #[test]
    fn prefetch_count_counts_only_prefetches() {
        let mut p = diamond();
        assert_eq!(p.prefetch_count(), 0);
        let t = p.block(p.entry()).instrs()[0];
        p.push_instr(p.entry(), InstrKind::Prefetch { target: t })
            .unwrap();
        assert_eq!(p.prefetch_count(), 1);
    }
}
