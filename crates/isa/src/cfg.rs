//! Order computations over the control-flow graph.

use crate::program::{BlockId, Program};

/// Blocks reachable from the entry, in reverse postorder (a topological
/// order when back edges are ignored).
///
/// Reverse postorder is the canonical iteration order for forward dataflow
/// analyses such as the must/may cache analyses in `rtpf-cache`.
pub fn reverse_postorder(p: &Program) -> Vec<BlockId> {
    let mut post = Vec::with_capacity(p.block_count());
    let mut seen = vec![false; p.block_count()];
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(p.entry(), 0)];
    seen[p.entry().index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = p.succs(b);
        if *i < succs.len() {
            let (s, _) = succs[*i];
            *i += 1;
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Postorder of the blocks reachable from the entry.
pub fn postorder(p: &Program) -> Vec<BlockId> {
    let mut o = reverse_postorder(p);
    o.reverse();
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EdgeKind;

    fn chain(n: usize) -> Program {
        let mut p = Program::new("chain");
        let mut prev = p.entry();
        for _ in 1..n {
            let b = p.add_block();
            p.add_edge(prev, b, EdgeKind::Fallthrough).unwrap();
            prev = b;
        }
        p
    }

    #[test]
    fn rpo_of_chain_is_layout_order() {
        let p = chain(5);
        let rpo = reverse_postorder(&p);
        assert_eq!(rpo, (0..5).map(BlockId).collect::<Vec<_>>());
    }

    #[test]
    fn rpo_visits_only_reachable_blocks() {
        let mut p = chain(3);
        p.add_block(); // orphan
        assert_eq!(reverse_postorder(&p).len(), 3);
    }

    #[test]
    fn rpo_places_join_after_both_arms() {
        // diamond: 0 -> {1,2} -> 3
        let mut p = Program::new("d");
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let b3 = p.add_block();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b0, b2, EdgeKind::Taken).unwrap();
        p.add_edge(b1, b3, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b2, b3, EdgeKind::Fallthrough).unwrap();
        let rpo = reverse_postorder(&p);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(b3) > pos(b1));
        assert!(pos(b3) > pos(b2));
        assert_eq!(pos(b0), 0);
    }

    #[test]
    fn rpo_handles_cycles() {
        let mut p = Program::new("l");
        let b0 = p.entry();
        let body = p.add_block();
        let exit = p.add_block();
        p.add_edge(b0, body, EdgeKind::Fallthrough).unwrap();
        p.add_edge(body, body, EdgeKind::Taken).unwrap();
        p.add_edge(body, exit, EdgeKind::Fallthrough).unwrap();
        let rpo = reverse_postorder(&p);
        assert_eq!(rpo.len(), 3);
        assert_eq!(rpo[0], b0);
    }

    #[test]
    fn postorder_is_reverse_of_rpo() {
        let p = chain(4);
        let mut rpo = reverse_postorder(&p);
        rpo.reverse();
        assert_eq!(rpo, postorder(&p));
    }
}
