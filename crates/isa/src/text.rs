//! A small text format for structured programs.
//!
//! The `rtpf` CLI reads task descriptions in this format, making the
//! toolchain usable without writing Rust. The grammar mirrors the
//! [`Shape`](crate::shape::Shape) AST:
//!
//! ```text
//! # a compress-like task
//! program compress-mini
//! code 30
//! loop 20 {
//!     code 10
//!     if 2 { code 16 } else { code 8 }
//!     if 2 { code 12 }
//!     switch 1 { arm { code 4 } arm { code 6 } }
//! }
//! code 14
//! ```
//!
//! * `code N` — `N` straight-line instructions;
//! * `loop B { … }` — a counted loop with bound `B`;
//! * `if C { … } [else { … }]` — a conditional with `C` condition
//!   instructions before the branch;
//! * `switch C { arm { … } … }` — a multi-way branch;
//! * `#` starts a line comment; whitespace is free-form.
//!
//! [`parse`] produces a [`Shape`] (plus the program name), and
//! [`write`] renders a `Shape` back; the two round-trip.

use std::error::Error;
use std::fmt;

use crate::shape::Shape;

/// Parse error with 1-based line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseShapeError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseShapeError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Word(String),
    Number(u32),
    LBrace,
    RBrace,
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> Result<Self, ParseShapeError> {
        let mut toks = Vec::new();
        for (ln, line) in src.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("");
            let mut chars = line.chars().peekable();
            let lineno = ln + 1;
            while let Some(&c) = chars.peek() {
                match c {
                    c if c.is_whitespace() => {
                        chars.next();
                    }
                    '{' => {
                        chars.next();
                        toks.push((lineno, Tok::LBrace));
                    }
                    '}' => {
                        chars.next();
                        toks.push((lineno, Tok::RBrace));
                    }
                    c if c.is_ascii_digit() => {
                        let mut n: u64 = 0;
                        while let Some(&d) = chars.peek() {
                            if let Some(v) = d.to_digit(10) {
                                n = n * 10 + u64::from(v);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        if n > u64::from(u32::MAX) {
                            return Err(ParseShapeError {
                                line: lineno,
                                message: format!("number {n} out of range"),
                            });
                        }
                        toks.push((lineno, Tok::Number(n as u32)));
                    }
                    c if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' => {
                        let mut w = String::new();
                        while let Some(&d) = chars.peek() {
                            if d.is_alphanumeric() || d == '_' || d == '-' || d == '.' {
                                w.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        toks.push((lineno, Tok::Word(w)));
                    }
                    other => {
                        return Err(ParseShapeError {
                            line: lineno,
                            message: format!("unexpected character {other:?}"),
                        })
                    }
                }
            }
        }
        Ok(Lexer { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |&(l, _)| l)
    }

    fn expect_number(&mut self, what: &str) -> Result<u32, ParseShapeError> {
        match self.next() {
            Some((_, Tok::Number(n))) => Ok(n),
            other => Err(ParseShapeError {
                line: other.as_ref().map_or(self.line(), |&(l, _)| l),
                message: format!("expected {what} (a number), found {other:?}"),
            }),
        }
    }

    fn expect_lbrace(&mut self) -> Result<(), ParseShapeError> {
        match self.next() {
            Some((_, Tok::LBrace)) => Ok(()),
            other => Err(ParseShapeError {
                line: other.as_ref().map_or(self.line(), |&(l, _)| l),
                message: format!("expected '{{', found {other:?}"),
            }),
        }
    }
}

/// Parses a program description, returning its name and shape.
///
/// # Errors
///
/// Returns a [`ParseShapeError`] with the offending line on malformed
/// input.
pub fn parse(src: &str) -> Result<(String, Shape), ParseShapeError> {
    let mut lx = Lexer::new(src)?;
    // Optional header: `program NAME`.
    let name = match lx.peek() {
        Some((_, Tok::Word(w))) if w == "program" => {
            lx.next();
            match lx.next() {
                Some((_, Tok::Word(n))) => n,
                other => {
                    return Err(ParseShapeError {
                        line: other.as_ref().map_or(lx.line(), |&(l, _)| l),
                        message: "expected a program name after 'program'".into(),
                    })
                }
            }
        }
        _ => "unnamed".to_string(),
    };
    let body = parse_seq(&mut lx, false)?;
    if let Some((line, tok)) = lx.next() {
        return Err(ParseShapeError {
            line,
            message: format!("trailing input: {tok:?}"),
        });
    }
    Ok((name, body))
}

/// Parses statements until EOF (`in_block = false`) or a closing brace.
fn parse_seq(lx: &mut Lexer, in_block: bool) -> Result<Shape, ParseShapeError> {
    let mut items = Vec::new();
    loop {
        match lx.peek() {
            None => {
                if in_block {
                    return Err(ParseShapeError {
                        line: lx.line(),
                        message: "unclosed '{'".into(),
                    });
                }
                break;
            }
            Some(&(_, Tok::RBrace)) => {
                if in_block {
                    lx.next();
                    break;
                }
                return Err(ParseShapeError {
                    line: lx.line(),
                    message: "unmatched '}'".into(),
                });
            }
            Some(&(line, ref tok)) => {
                let word = match tok {
                    Tok::Word(w) => w.clone(),
                    other => {
                        return Err(ParseShapeError {
                            line,
                            message: format!("expected a statement, found {other:?}"),
                        })
                    }
                };
                lx.next();
                items.push(parse_stmt(lx, &word, line)?);
            }
        }
    }
    Ok(match items.len() {
        1 => items.pop().expect("len checked"),
        _ => Shape::seq(items),
    })
}

fn parse_stmt(lx: &mut Lexer, word: &str, line: usize) -> Result<Shape, ParseShapeError> {
    match word {
        "code" => Ok(Shape::code(lx.expect_number("instruction count")?)),
        "loop" => {
            let bound = lx.expect_number("loop bound")?;
            if bound == 0 {
                return Err(ParseShapeError {
                    line,
                    message: "loop bound must be positive".into(),
                });
            }
            lx.expect_lbrace()?;
            let body = parse_seq(lx, true)?;
            Ok(Shape::loop_(bound, body))
        }
        "if" => {
            let cond = lx.expect_number("condition size")?;
            lx.expect_lbrace()?;
            let then_arm = parse_seq(lx, true)?;
            match lx.peek() {
                Some((_, Tok::Word(w))) if w == "else" => {
                    lx.next();
                    lx.expect_lbrace()?;
                    let else_arm = parse_seq(lx, true)?;
                    Ok(Shape::if_else(cond, then_arm, else_arm))
                }
                _ => Ok(Shape::if_then(cond, then_arm)),
            }
        }
        "switch" => {
            let cond = lx.expect_number("scrutinee size")?;
            lx.expect_lbrace()?;
            let mut arms = Vec::new();
            loop {
                match lx.next() {
                    Some((_, Tok::Word(w))) if w == "arm" => {
                        lx.expect_lbrace()?;
                        arms.push(parse_seq(lx, true)?);
                    }
                    Some((_, Tok::RBrace)) => break,
                    other => {
                        return Err(ParseShapeError {
                            line: other.as_ref().map_or(line, |&(l, _)| l),
                            message: format!("expected 'arm' or '}}', found {other:?}"),
                        })
                    }
                }
            }
            if arms.is_empty() {
                return Err(ParseShapeError {
                    line,
                    message: "switch needs at least one arm".into(),
                });
            }
            Ok(Shape::switch(cond, arms))
        }
        other => Err(ParseShapeError {
            line,
            message: format!("unknown statement {other:?}"),
        }),
    }
}

/// Renders a shape in the text format (inverse of [`parse`]).
pub fn write(name: &str, shape: &Shape) -> String {
    let mut out = format!("program {name}\n");
    write_shape(shape, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_shape(s: &Shape, depth: usize, out: &mut String) {
    match s {
        Shape::Code(n) => {
            indent(depth, out);
            out.push_str(&format!("code {n}\n"));
        }
        Shape::Seq(items) => {
            for i in items {
                write_shape(i, depth, out);
            }
        }
        Shape::IfElse {
            cond,
            then_arm,
            else_arm,
        } => {
            indent(depth, out);
            out.push_str(&format!("if {cond} {{\n"));
            write_shape(then_arm, depth + 1, out);
            indent(depth, out);
            match else_arm {
                Some(e) => {
                    out.push_str("} else {\n");
                    write_shape(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Shape::Loop { bound, body } => {
            indent(depth, out);
            out.push_str(&format!("loop {bound} {{\n"));
            write_shape(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Shape::Switch { cond, arms } => {
            indent(depth, out);
            out.push_str(&format!("switch {cond} {{\n"));
            for arm in arms {
                indent(depth + 1, out);
                out.push_str("arm {\n");
                write_shape(arm, depth + 2, out);
                indent(depth + 1, out);
                out.push_str("}\n");
            }
            indent(depth, out);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a compress-like task
program compress-mini
code 30
loop 20 {
    code 10
    if 2 { code 16 } else { code 8 }
    if 2 { code 12 }
    switch 1 { arm { code 4 } arm { code 6 } }
}
code 14
";

    #[test]
    fn parses_the_sample() {
        let (name, shape) = parse(SAMPLE).expect("parses");
        assert_eq!(name, "compress-mini");
        let p = shape.compile(&name);
        assert!(p.validate().is_ok());
        assert!(p.instr_count() > 80);
    }

    #[test]
    fn roundtrips() {
        let (name, shape) = parse(SAMPLE).expect("parses");
        let text = write(&name, &shape);
        let (name2, shape2) = parse(&text).expect("re-parses");
        assert_eq!(name, name2);
        assert_eq!(shape, shape2);
    }

    #[test]
    fn header_is_optional() {
        let (name, shape) = parse("code 5").expect("parses");
        assert_eq!(name, "unnamed");
        assert_eq!(shape, Shape::code(5));
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("code 5\nloop 0 { code 1 }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("positive"));
    }

    #[test]
    fn rejects_unclosed_brace() {
        let err = parse("loop 3 { code 1").unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn rejects_unknown_statement() {
        let err = parse("quantum 3").unwrap_err();
        assert!(err.message.contains("unknown statement"));
    }

    #[test]
    fn rejects_empty_switch() {
        let err = parse("switch 1 { }").unwrap_err();
        assert!(err.message.contains("at least one arm"));
    }

    #[test]
    fn rejects_garbage_characters() {
        let err = parse("code 5 $").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn comments_and_whitespace_are_free() {
        let (_, a) = parse("code 3 # tail comment\n\n\n  loop 2 { code 1 }").expect("parses");
        let (_, b) = parse("code 3\nloop 2 { code 1 }").expect("parses");
        assert_eq!(a, b);
    }

    #[test]
    fn writes_every_construct() {
        let s = Shape::seq([
            Shape::code(1),
            Shape::if_then(1, Shape::code(2)),
            Shape::switch(2, [Shape::code(3), Shape::code(4)]),
            Shape::loop_(9, Shape::if_else(0, Shape::code(5), Shape::code(6))),
        ]);
        let text = write("all", &s);
        let (_, back) = parse(&text).expect("parses");
        assert_eq!(s, back);
    }
}
