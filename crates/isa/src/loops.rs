//! Natural-loop detection.
//!
//! A *back edge* is a CFG edge `t -> h` where `h` dominates `t`; its natural
//! loop is `h` plus every block that reaches `t` without passing through
//! `h`. The VIVU transformation in `rtpf-wcet` peels each natural loop once,
//! which is why the forest (header nesting) is computed here.

use std::collections::BTreeSet;

use crate::dom::Dominators;
use crate::error::IsaError;
use crate::program::{BlockId, Program};

/// One natural loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of the back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, header included.
    pub body: BTreeSet<BlockId>,
    /// Header of the innermost enclosing loop, if nested.
    pub parent: Option<BlockId>,
}

impl NaturalLoop {
    /// Nesting depth: 1 for an outermost loop, 2 for one nested inside, …
    /// Requires the owning [`LoopForest`] to resolve parents.
    pub fn depth(&self, forest: &LoopForest) -> usize {
        let mut d = 1;
        let mut cur = self.parent;
        while let Some(h) = cur {
            d += 1;
            cur = forest.loop_of(h).and_then(|l| l.parent);
        }
        d
    }
}

/// All natural loops of a program, with nesting resolved.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// `header_of[b]` = header of the innermost loop containing block `b`.
    header_of: Vec<Option<BlockId>>,
}

impl LoopForest {
    /// Detects every natural loop of `p`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::IrreducibleLoop`] naming a block on the cycle if
    /// the CFG contains an irreducible cycle (a cycle entered other than
    /// through a dominating header). Such CFGs never arise from the
    /// structured [`Shape`](crate::shape::Shape) builder; rejecting them
    /// keeps VIVU simple, matching the paper's implicit assumption of
    /// compiler-generated reducible code.
    pub fn compute(p: &Program, dom: &Dominators) -> Result<Self, IsaError> {
        // Collect back edges.
        let mut back: Vec<(BlockId, BlockId)> = Vec::new(); // (latch, header)
        for b in p.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for &(s, _) in p.succs(b) {
                if dom.dominates(s, b) {
                    back.push((b, s));
                }
            }
        }
        // Natural loop of each header = union over its back edges.
        let mut headers: Vec<BlockId> = back.iter().map(|&(_, h)| h).collect();
        headers.sort_unstable();
        headers.dedup();

        let mut loops: Vec<NaturalLoop> = Vec::new();
        for &h in &headers {
            let latches: Vec<BlockId> = back
                .iter()
                .filter(|&&(_, hh)| hh == h)
                .map(|&(l, _)| l)
                .collect();
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(h);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if body.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &pr in p.preds(b) {
                    if !dom.is_reachable(pr) {
                        continue;
                    }
                    if body.insert(pr) {
                        stack.push(pr);
                    }
                }
            }
            loops.push(NaturalLoop {
                header: h,
                latches,
                body,
                parent: None,
            });
        }

        // Reject irreducible cycles: any remaining cycle among blocks not
        // covered by a natural loop. Detect by checking that removing all
        // back edges leaves an acyclic graph.
        if let Some(bad) = find_cycle_without_back_edges(p, &back) {
            return Err(IsaError::IrreducibleLoop { header: bad });
        }

        // Nesting: parent of loop L = smallest loop strictly containing L's
        // header among loops with a different header.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].body.len());
            idx
        };
        for i in 0..loops.len() {
            let h = loops[i].header;
            let mut best: Option<(usize, usize)> = None; // (size, index)
            for &j in &order {
                if j == i {
                    continue;
                }
                if loops[j].body.contains(&h) && loops[j].header != h {
                    let sz = loops[j].body.len();
                    if best.is_none_or(|(bs, _)| sz < bs) {
                        best = Some((sz, j));
                    }
                }
            }
            loops[i].parent = best.map(|(_, j)| loops[j].header);
        }

        // innermost loop per block: assign from the largest loop to the
        // smallest so inner loops overwrite outer ones.
        let mut header_of: Vec<Option<BlockId>> = vec![None; p.block_count()];
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].body.len()));
        for &i in &by_size {
            for &b in &loops[i].body {
                header_of[b.index()] = Some(loops[i].header);
            }
        }

        Ok(LoopForest { loops, header_of })
    }

    /// All loops (unspecified order).
    #[inline]
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The loop headed by `header`, if one exists.
    pub fn loop_of(&self, header: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Header of the innermost loop containing `b`, if any.
    pub fn innermost_header(&self, b: BlockId) -> Option<BlockId> {
        self.header_of.get(b.index()).copied().flatten()
    }

    /// Whether edge `from -> to` is a back edge of some detected loop.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loop_of(to).is_some_and(|l| l.latches.contains(&from))
    }

    /// Maximum loop-nesting depth in the program.
    pub fn max_depth(&self) -> usize {
        self.loops.iter().map(|l| l.depth(self)).max().unwrap_or(0)
    }
}

/// DFS cycle check ignoring the given back edges; returns a block on a
/// remaining (irreducible) cycle, if any.
fn find_cycle_without_back_edges(p: &Program, back: &[(BlockId, BlockId)]) -> Option<BlockId> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let is_back = |f: BlockId, t: BlockId| back.iter().any(|&(l, h)| l == f && h == t);
    let mut mark = vec![Mark::White; p.block_count()];
    // Iterative coloured DFS from the entry.
    let mut stack: Vec<(BlockId, usize)> = vec![(p.entry(), 0)];
    mark[p.entry().index()] = Mark::Grey;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = p.succs(b);
        if *i < succs.len() {
            let (s, _) = succs[*i];
            *i += 1;
            if is_back(b, s) {
                continue;
            }
            match mark[s.index()] {
                Mark::White => {
                    mark[s.index()] = Mark::Grey;
                    stack.push((s, 0));
                }
                Mark::Grey => return Some(s),
                Mark::Black => {}
            }
        } else {
            mark[b.index()] = Mark::Black;
            stack.pop();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EdgeKind;

    fn nested_loops() -> (Program, Vec<BlockId>) {
        // 0 -> 1(outer hdr) -> 2(inner hdr) -> 2, 2 -> 3, 3 -> 1, 3 -> 4
        let mut p = Program::new("nest");
        let b: Vec<BlockId> = (0..5)
            .map(|i| if i == 0 { p.entry() } else { p.add_block() })
            .collect();
        let e = EdgeKind::Fallthrough;
        p.add_edge(b[0], b[1], e).unwrap();
        p.add_edge(b[1], b[2], e).unwrap();
        p.add_edge(b[2], b[2], EdgeKind::Taken).unwrap();
        p.add_edge(b[2], b[3], e).unwrap();
        p.add_edge(b[3], b[1], EdgeKind::Taken).unwrap();
        p.add_edge(b[3], b[4], e).unwrap();
        (p, b)
    }

    #[test]
    fn detects_two_nested_loops() {
        let (p, b) = nested_loops();
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert_eq!(forest.loops().len(), 2);
        let outer = forest.loop_of(b[1]).unwrap();
        let inner = forest.loop_of(b[2]).unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(b[1]));
        assert_eq!(outer.depth(&forest), 1);
        assert_eq!(inner.depth(&forest), 2);
        assert!(outer.body.contains(&b[3]));
        assert_eq!(inner.body.len(), 1);
        assert_eq!(forest.max_depth(), 2);
    }

    #[test]
    fn innermost_header_resolution() {
        let (p, b) = nested_loops();
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert_eq!(forest.innermost_header(b[2]), Some(b[2]));
        assert_eq!(forest.innermost_header(b[3]), Some(b[1]));
        assert_eq!(forest.innermost_header(b[0]), None);
        assert_eq!(forest.innermost_header(b[4]), None);
    }

    #[test]
    fn back_edge_classification() {
        let (p, b) = nested_loops();
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert!(forest.is_back_edge(b[2], b[2]));
        assert!(forest.is_back_edge(b[3], b[1]));
        assert!(!forest.is_back_edge(b[1], b[2]));
    }

    #[test]
    fn irreducible_cycle_is_rejected() {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1: cycle {1,2} with two entries.
        let mut p = Program::new("irr");
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let e = EdgeKind::Fallthrough;
        p.add_edge(b0, b1, e).unwrap();
        p.add_edge(b0, b2, EdgeKind::Taken).unwrap();
        p.add_edge(b1, b2, e).unwrap();
        p.add_edge(b2, b1, EdgeKind::Taken).unwrap();
        let dom = Dominators::compute(&p);
        let err = LoopForest::compute(&p, &dom).unwrap_err();
        let IsaError::IrreducibleLoop { header } = err;
        assert!(header == b1 || header == b2);
        assert!(err.to_string().contains("irreducible"));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut p = Program::new("s");
        let b0 = p.entry();
        let b1 = p.add_block();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert!(forest.loops().is_empty());
        assert_eq!(forest.max_depth(), 0);
    }
}
