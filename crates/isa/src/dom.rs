//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::reverse_postorder;
use crate::program::{BlockId, Program};

/// Immediate-dominator tree of the blocks reachable from the entry.
///
/// Built with the Cooper–Harvey–Kennedy "simple, fast" iterative algorithm,
/// which is near-linear on reducible CFGs of the sizes handled here.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes the dominator tree of `p`.
    pub fn compute(p: &Program) -> Self {
        let rpo = reverse_postorder(p);
        let mut rpo_index = vec![usize::MAX; p.block_count()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; p.block_count()];
        let entry = p.entry();
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &pred in p.preds(b) {
                    if rpo_index[pred.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[pred.index()].is_none() {
                        continue; // not yet processed this round
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => intersect(&idom, cur, pred),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, entry }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b == self.entry || self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EdgeKind;

    /// Classic figure: 0→1, 1→2, 1→3, 2→4, 3→4, 4→1 (loop), 4→5.
    fn looped_diamond() -> (Program, Vec<BlockId>) {
        let mut p = Program::new("ld");
        let b: Vec<BlockId> = (0..6)
            .map(|i| if i == 0 { p.entry() } else { p.add_block() })
            .collect();
        let e = EdgeKind::Fallthrough;
        p.add_edge(b[0], b[1], e).unwrap();
        p.add_edge(b[1], b[2], e).unwrap();
        p.add_edge(b[1], b[3], EdgeKind::Taken).unwrap();
        p.add_edge(b[2], b[4], e).unwrap();
        p.add_edge(b[3], b[4], e).unwrap();
        p.add_edge(b[4], b[1], EdgeKind::Taken).unwrap();
        p.add_edge(b[4], b[5], e).unwrap();
        (p, b)
    }

    #[test]
    fn idoms_of_looped_diamond() {
        let (p, b) = looped_diamond();
        let dom = Dominators::compute(&p);
        assert_eq!(dom.idom(b[0]), None);
        assert_eq!(dom.idom(b[1]), Some(b[0]));
        assert_eq!(dom.idom(b[2]), Some(b[1]));
        assert_eq!(dom.idom(b[3]), Some(b[1]));
        assert_eq!(dom.idom(b[4]), Some(b[1])); // join, not either arm
        assert_eq!(dom.idom(b[5]), Some(b[4]));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (p, b) = looped_diamond();
        let dom = Dominators::compute(&p);
        assert!(dom.dominates(b[2], b[2]));
        assert!(dom.dominates(b[0], b[5]));
        assert!(dom.dominates(b[1], b[4]));
        assert!(!dom.dominates(b[2], b[4]));
        assert!(!dom.dominates(b[5], b[0]));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut p = Program::new("u");
        let orphan = p.add_block();
        let dom = Dominators::compute(&p);
        assert!(!dom.is_reachable(orphan));
        assert_eq!(dom.idom(orphan), None);
    }
}
