//! Structured program construction.
//!
//! [`Shape`] is a small structured-control-flow AST (straight-line code,
//! if/else, bounded loops, switches) that compiles to a reducible
//! [`Program`] with loop bounds attached. `rtpf-suite` uses it to
//! reconstruct the control-flow skeletons of the 37 Mälardalen benchmarks;
//! tests use it to generate arbitrary well-formed programs.

use crate::instr::InstrKind;
use crate::program::{BlockId, EdgeKind, Program};

/// Structured control-flow description that compiles to a [`Program`].
///
/// # Example
///
/// ```
/// use rtpf_isa::shape::Shape;
///
/// // two nested loops around a conditional
/// let s = Shape::loop_(
///     10,
///     Shape::seq([
///         Shape::code(4),
///         Shape::loop_(8, Shape::if_else(1, Shape::code(6), Shape::code(2))),
///     ]),
/// );
/// let p = s.compile("nested");
/// assert!(p.validate().is_ok());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Shape {
    /// `n` straight-line compute instructions.
    Code(u32),
    /// Sub-shapes executed in order.
    Seq(Vec<Shape>),
    /// A two-way conditional: `cond` compute instructions followed by a
    /// branch into either arm, re-joining afterwards.
    IfElse {
        /// Instructions evaluating the condition (≥ 0), plus the branch.
        cond: u32,
        /// Taken when the condition holds.
        then_arm: Box<Shape>,
        /// Taken otherwise; `None` means fall straight to the join.
        else_arm: Option<Box<Shape>>,
    },
    /// A natural loop whose body runs at most `bound` times per entry.
    Loop {
        /// Maximum body executions per entry from outside.
        bound: u32,
        /// Loop body.
        body: Box<Shape>,
    },
    /// A multi-way branch: `cond` compute instructions, then one of the
    /// arms, re-joining afterwards. Models `switch` statements and the
    /// state machines of `nsichneu`/`statemate`.
    Switch {
        /// Instructions evaluating the scrutinee (≥ 0), plus the branch.
        cond: u32,
        /// The arms (at least one).
        arms: Vec<Shape>,
    },
}

impl Shape {
    /// `n` straight-line instructions.
    pub fn code(n: u32) -> Shape {
        Shape::Code(n)
    }

    /// A sequence of shapes.
    pub fn seq(shapes: impl IntoIterator<Item = Shape>) -> Shape {
        Shape::Seq(shapes.into_iter().collect())
    }

    /// An if/else with both arms.
    pub fn if_else(cond: u32, then_arm: Shape, else_arm: Shape) -> Shape {
        Shape::IfElse {
            cond,
            then_arm: Box::new(then_arm),
            else_arm: Some(Box::new(else_arm)),
        }
    }

    /// An if without an else arm.
    pub fn if_then(cond: u32, then_arm: Shape) -> Shape {
        Shape::IfElse {
            cond,
            then_arm: Box::new(then_arm),
            else_arm: None,
        }
    }

    /// A bounded loop.
    pub fn loop_(bound: u32, body: Shape) -> Shape {
        Shape::Loop {
            bound,
            body: Box::new(body),
        }
    }

    /// A multi-way switch.
    pub fn switch(cond: u32, arms: impl IntoIterator<Item = Shape>) -> Shape {
        Shape::Switch {
            cond,
            arms: arms.into_iter().collect(),
        }
    }

    /// Static instruction count of the shape (each loop body counted once;
    /// condition/branch instructions included).
    pub fn static_instrs(&self) -> u64 {
        match self {
            Shape::Code(n) => u64::from(*n),
            Shape::Seq(v) => v.iter().map(Shape::static_instrs).sum(),
            Shape::IfElse {
                cond,
                then_arm,
                else_arm,
            } => {
                u64::from(*cond)
                    + 1
                    + then_arm.static_instrs()
                    + else_arm.as_deref().map_or(0, Shape::static_instrs)
            }
            Shape::Loop { body, .. } => body.static_instrs() + 2,
            Shape::Switch { cond, arms } => {
                u64::from(*cond) + 1 + arms.iter().map(Shape::static_instrs).sum::<u64>()
            }
        }
    }

    /// Compiles the shape into a program named `name`.
    ///
    /// The result is always reducible, has a bound on every loop, and
    /// passes [`Program::validate`].
    ///
    /// # Panics
    ///
    /// Panics if a [`Shape::Switch`] has no arms or a [`Shape::Loop`] has a
    /// zero bound.
    pub fn compile(&self, name: impl Into<String>) -> Program {
        let mut c = Compiler {
            p: Program::new(name),
            tag: 0,
        };
        let entry = c.p.entry();
        let last = c.emit(self, entry);
        // Ensure the final block is a proper exit with at least one instr.
        if c.p.block(last).is_empty() {
            c.push_code(last, 1);
        }
        debug_assert_eq!(c.p.validate(), Ok(()));
        c.p
    }
}

struct Compiler {
    p: Program,
    tag: u16,
}

impl Compiler {
    fn push_code(&mut self, b: BlockId, n: u32) {
        for _ in 0..n {
            let t = self.tag;
            self.tag = self.tag.wrapping_add(1);
            self.p
                .push_instr(b, InstrKind::Compute(t))
                .expect("block exists");
        }
    }

    /// Emits `shape` starting in block `cur`; returns the block where
    /// control continues afterwards.
    fn emit(&mut self, shape: &Shape, cur: BlockId) -> BlockId {
        match shape {
            Shape::Code(n) => {
                self.push_code(cur, *n);
                cur
            }
            Shape::Seq(v) => {
                let mut b = cur;
                for s in v {
                    b = self.emit(s, b);
                }
                b
            }
            Shape::IfElse {
                cond,
                then_arm,
                else_arm,
            } => {
                self.push_code(cur, *cond);
                self.p.push_instr(cur, InstrKind::Branch).expect("block");
                let then_entry = self.p.add_block();
                self.p
                    .add_edge(cur, then_entry, EdgeKind::Fallthrough)
                    .expect("edge");
                let then_exit = self.emit(then_arm, then_entry);
                match else_arm {
                    Some(e) => {
                        let else_entry = self.p.add_block();
                        self.p
                            .add_edge(cur, else_entry, EdgeKind::Taken)
                            .expect("edge");
                        let else_exit = self.emit(e, else_entry);
                        let join = self.p.add_block();
                        self.p
                            .add_edge(then_exit, join, EdgeKind::Taken)
                            .expect("edge");
                        self.p
                            .add_edge(else_exit, join, EdgeKind::Fallthrough)
                            .expect("edge");
                        join
                    }
                    None => {
                        let join = self.p.add_block();
                        self.p.add_edge(cur, join, EdgeKind::Taken).expect("edge");
                        self.p
                            .add_edge(then_exit, join, EdgeKind::Fallthrough)
                            .expect("edge");
                        join
                    }
                }
            }
            Shape::Loop { bound, body } => {
                assert!(*bound > 0, "loop bound must be positive");
                // Dedicated header block with the loop test.
                let header = self.p.add_block();
                self.p
                    .add_edge(cur, header, EdgeKind::Fallthrough)
                    .expect("edge");
                self.push_code(header, 1);
                self.p.push_instr(header, InstrKind::Branch).expect("block");
                let body_entry = self.p.add_block();
                self.p
                    .add_edge(header, body_entry, EdgeKind::Fallthrough)
                    .expect("edge");
                let body_exit = self.emit(body, body_entry);
                // Latch back to the header.
                self.p
                    .add_edge(body_exit, header, EdgeKind::Taken)
                    .expect("edge");
                let exit = self.p.add_block();
                self.p
                    .add_edge(header, exit, EdgeKind::Taken)
                    .expect("edge");
                self.p.set_loop_bound(header, *bound).expect("block");
                exit
            }
            Shape::Switch { cond, arms } => {
                assert!(!arms.is_empty(), "switch needs at least one arm");
                self.push_code(cur, *cond);
                self.p.push_instr(cur, InstrKind::Branch).expect("block");
                let join = {
                    let mut exits = Vec::with_capacity(arms.len());
                    for (k, arm) in arms.iter().enumerate() {
                        let entry = self.p.add_block();
                        let kind = if k == 0 {
                            EdgeKind::Fallthrough
                        } else {
                            EdgeKind::Taken
                        };
                        self.p.add_edge(cur, entry, kind).expect("edge");
                        exits.push(self.emit(arm, entry));
                    }
                    let join = self.p.add_block();
                    for e in exits {
                        self.p.add_edge(e, join, EdgeKind::Taken).expect("edge");
                    }
                    join
                };
                join
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::LoopForest;

    #[test]
    fn straight_line_compiles_to_one_block() {
        let p = Shape::code(10).compile("s");
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.instr_count(), 10);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn if_else_produces_diamond() {
        let p = Shape::if_else(2, Shape::code(5), Shape::code(3)).compile("d");
        assert!(p.validate().is_ok());
        assert_eq!(p.block_count(), 4);
        // cond(2) + branch + 5 + 3 (+1 for the empty exit block)
        assert_eq!(p.instr_count(), 2 + 1 + 5 + 3 + 1);
    }

    #[test]
    fn if_then_joins_condition_to_merge() {
        let p = Shape::if_then(1, Shape::code(4)).compile("t");
        assert!(p.validate().is_ok());
        let entry = p.entry();
        assert_eq!(p.succs(entry).len(), 2);
    }

    #[test]
    fn loop_records_bound_on_header() {
        let p = Shape::loop_(25, Shape::code(6)).compile("l");
        assert!(p.validate().is_ok());
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert_eq!(forest.loops().len(), 1);
        let header = forest.loops()[0].header;
        assert_eq!(p.loop_bound(header), Some(25));
    }

    #[test]
    fn nested_loops_have_correct_depths() {
        let s = Shape::loop_(4, Shape::loop_(5, Shape::code(3)));
        let p = s.compile("n");
        assert!(p.validate().is_ok());
        let dom = Dominators::compute(&p);
        let forest = LoopForest::compute(&p, &dom).unwrap();
        assert_eq!(forest.loops().len(), 2);
        assert_eq!(forest.max_depth(), 2);
    }

    #[test]
    fn switch_fans_out_to_every_arm() {
        let arms = (0..6).map(|_| Shape::code(4)).collect::<Vec<_>>();
        let p = Shape::switch(1, arms).compile("sw");
        assert!(p.validate().is_ok());
        assert_eq!(p.succs(p.entry()).len(), 6);
    }

    #[test]
    fn static_instrs_matches_compiled_count_for_loop_free_shapes() {
        let s = Shape::seq([
            Shape::code(3),
            Shape::if_else(1, Shape::code(2), Shape::code(4)),
        ]);
        let p = s.compile("c");
        // compile() adds one trailing instruction if the exit is empty.
        assert_eq!(p.instr_count() as u64, s.static_instrs() + 1);
    }

    #[test]
    #[should_panic(expected = "loop bound")]
    fn zero_bound_panics() {
        let _ = Shape::loop_(0, Shape::code(1)).compile("z");
    }
}
