//! Error types for program construction and validation.

use std::error::Error;
use std::fmt;

use crate::program::BlockId;

/// Error raised when mutating a [`Program`](crate::Program) with
/// inconsistent arguments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A referenced basic block does not exist.
    UnknownBlock(BlockId),
    /// A referenced instruction does not exist.
    UnknownInstr(crate::InstrId),
    /// An instruction insertion position is past the end of the block.
    PositionOutOfRange {
        /// Block the insertion targeted.
        block: BlockId,
        /// Requested position.
        pos: usize,
        /// Number of instructions currently in the block.
        len: usize,
    },
    /// An edge refers to a successor that is not in the CFG.
    DanglingEdge(BlockId, BlockId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownBlock(b) => write!(f, "unknown basic block {b}"),
            ProgramError::UnknownInstr(i) => write!(f, "unknown instruction {i}"),
            ProgramError::PositionOutOfRange { block, pos, len } => write!(
                f,
                "position {pos} out of range for block {block} of length {len}"
            ),
            ProgramError::DanglingEdge(a, b) => write!(f, "edge {a} -> {b} is dangling"),
        }
    }
}

impl Error for ProgramError {}

/// Structural error raised by CFG analyses in this crate (dominators,
/// loop detection) when a program violates their preconditions.
///
/// Unlike [`ValidateError`] — which reports defects found by the full
/// [`Program::validate`](crate::Program::validate) sweep — an `IsaError`
/// carries enough context for diagnostic rendering at the point the
/// offending analysis runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsaError {
    /// The CFG contains an irreducible cycle: a cycle that can be entered
    /// other than through its dominating header. `header` is a block on
    /// the offending cycle (the first one the detector reached).
    IrreducibleLoop {
        /// A block on the irreducible cycle.
        header: BlockId,
    },
}

impl IsaError {
    /// The block the error is anchored to, for diagnostic spans.
    pub fn block(&self) -> BlockId {
        match *self {
            IsaError::IrreducibleLoop { header } => header,
        }
    }
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::IrreducibleLoop { header } => write!(
                f,
                "irreducible loop: cycle through {header} is entered other \
                 than through a dominating header"
            ),
        }
    }
}

impl Error for IsaError {}

/// Structural defect reported by [`Program::validate`](crate::Program::validate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateError {
    /// The entry block is unreachable or missing.
    NoEntry,
    /// A block other than an exit has no successors.
    DeadEnd(BlockId),
    /// A block is not reachable from the entry.
    Unreachable(BlockId),
    /// A back edge was found whose loop header carries no loop bound.
    MissingLoopBound {
        /// Header of the offending natural loop.
        header: BlockId,
    },
    /// A loop bound of zero was supplied (bounds count total body entries).
    ZeroLoopBound {
        /// Header of the offending natural loop.
        header: BlockId,
    },
    /// An irreducible cycle (cycle without a dominating header) was found.
    Irreducible(BlockId),
    /// A prefetch names a target instruction that is not in the program.
    DanglingPrefetch(crate::InstrId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoEntry => write!(f, "program has no reachable entry block"),
            ValidateError::DeadEnd(b) => {
                write!(f, "non-exit block {b} has no successors")
            }
            ValidateError::Unreachable(b) => write!(f, "block {b} is unreachable from entry"),
            ValidateError::MissingLoopBound { header } => {
                write!(f, "loop headed by {header} has no iteration bound")
            }
            ValidateError::ZeroLoopBound { header } => {
                write!(f, "loop headed by {header} has a zero iteration bound")
            }
            ValidateError::Irreducible(b) => {
                write!(f, "irreducible cycle through block {b}")
            }
            ValidateError::DanglingPrefetch(i) => {
                write!(f, "prefetch targets unknown instruction {i}")
            }
        }
    }
}

impl Error for ValidateError {}
