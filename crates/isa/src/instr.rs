//! Instruction representation.
//!
//! All instructions occupy [`INSTR_BYTES`] bytes, mirroring a fixed-width
//! 32-bit RISC encoding (the paper targets ARMv7 without Thumb). The cache
//! analyses only care about *where* an instruction lives and whether it is a
//! software prefetch, so [`InstrKind`] stays deliberately coarse.

use std::fmt;

/// Size of every instruction in bytes (fixed-width 32-bit encoding).
pub const INSTR_BYTES: u64 = 4;

/// Stable identity of an instruction within a [`Program`](crate::Program).
///
/// Ids are arena indices: they never change once allocated, even when the
/// optimizer inserts prefetch instructions and the code is relocated. Use a
/// [`Layout`](crate::Layout) to map an id to its current byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstrId(pub u32);

impl InstrId {
    /// Arena index of this instruction.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// What an instruction does, as far as the memory analyses care.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrKind {
    /// An ordinary computational instruction (ALU, load/store, move, …).
    ///
    /// The payload is a free-form tag that workload generators may use to
    /// diversify programs; the analyses ignore it.
    Compute(u16),
    /// A control-transfer instruction terminating a basic block.
    ///
    /// Successor blocks are recorded in the CFG, not in the instruction.
    Branch,
    /// A procedure call (modelled as an intra-program control transfer; the
    /// suite inlines callees, so this is informational).
    Call,
    /// A return from a procedure.
    Return,
    /// A software prefetch for the memory block that contains `target`.
    ///
    /// The prefetched *block* is resolved against the current
    /// [`Layout`](crate::Layout) because relocation can move `target` into a
    /// different block. This mirrors how a real prefetch would be emitted
    /// with a label-relative address fixed up at link time.
    Prefetch {
        /// Instruction whose enclosing memory block is prefetched.
        target: InstrId,
    },
}

impl InstrKind {
    /// Whether this instruction is a software prefetch.
    #[inline]
    pub fn is_prefetch(&self) -> bool {
        matches!(self, InstrKind::Prefetch { .. })
    }
}

impl fmt::Display for InstrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrKind::Compute(tag) => write!(f, "compute#{tag}"),
            InstrKind::Branch => write!(f, "branch"),
            InstrKind::Call => write!(f, "call"),
            InstrKind::Return => write!(f, "return"),
            InstrKind::Prefetch { target } => write!(f, "prefetch {target}"),
        }
    }
}

/// A single instruction: a stable id plus its kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Stable identity (arena index).
    pub id: InstrId,
    /// Coarse classification.
    pub kind: InstrKind,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_id_roundtrip() {
        let id = InstrId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "i42");
    }

    #[test]
    fn prefetch_detection() {
        assert!(InstrKind::Prefetch { target: InstrId(0) }.is_prefetch());
        assert!(!InstrKind::Compute(0).is_prefetch());
        assert!(!InstrKind::Branch.is_prefetch());
    }

    #[test]
    fn display_forms() {
        let i = Instr {
            id: InstrId(3),
            kind: InstrKind::Prefetch { target: InstrId(9) },
        };
        assert_eq!(i.to_string(), "i3: prefetch i9");
        assert_eq!(InstrKind::Compute(7).to_string(), "compute#7");
    }
}
