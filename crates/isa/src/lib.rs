//! Program model, control-flow analyses, and code layout for the
//! `unlocked-prefetch` toolchain.
//!
//! This crate substitutes for the GCC/ARMv7 binaries used by the original
//! paper (Wuerges et al., DAC 2013). The prefetch-insertion technique never
//! inspects instruction *semantics*; it only needs
//!
//! * instruction **addresses** (to derive memory-block membership),
//! * **basic-block** structure and the **CFG** (with loop bounds),
//! * the ability to **insert** a prefetch instruction and observe the
//!   resulting **relocation** of the surrounding code.
//!
//! The model therefore uses fixed-width 4-byte instructions whose payload is
//! an opaque [`InstrKind`]. A [`Program`] owns an arena of instructions and
//! basic blocks plus the CFG; [`Layout`] assigns byte addresses;
//! [`shape::Shape`] is a structured AST that compiles to a `Program` and is
//! used by `rtpf-suite` to reconstruct the Mälardalen control-flow skeletons.
//!
//! # Example
//!
//! ```
//! use rtpf_isa::shape::Shape;
//!
//! // for (i in 0..10) { if c { 8 instrs } else { 3 instrs } }
//! let shape = Shape::loop_(10, Shape::if_else(2, Shape::code(8), Shape::code(3)));
//! let program = shape.compile("demo");
//! assert!(program.instr_count() > 10);
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]

pub mod cfg;
pub mod dom;
pub mod error;
pub mod instr;
pub mod layout;
pub mod loops;
pub mod program;
pub mod shape;
pub mod text;

pub use error::{IsaError, ProgramError, ValidateError};
pub use instr::{Instr, InstrId, InstrKind, INSTR_BYTES};
pub use layout::{Layout, MemBlockId};
pub use program::{BasicBlock, BlockId, EdgeKind, Program};
