//! Byte-address assignment and the relocation model.
//!
//! Addresses determine memory-block membership (`addr / block_bytes`), which
//! is everything the cache analyses observe. The paper's optimizer analyses
//! the program *in reverse* and therefore anchors the already-analysed
//! suffix when it inserts a prefetch: the code **before** the insertion
//! point shifts down by one instruction slot while everything after keeps
//! its address (physically realised by linking the final binary at
//! `base - 4 * inserted_count`). [`Layout::anchored`] implements exactly
//! this view; [`Layout::of`] is the ordinary base-anchored layout.

use std::fmt;

use crate::instr::{InstrId, INSTR_BYTES};
use crate::program::Program;

/// Default base address for program text (1 MiB), high enough that the
/// prefix-shift relocation model never underflows.
pub const DEFAULT_BASE: u64 = 0x0010_0000;

/// Identity of a memory block: `address / block_bytes`.
///
/// Memory blocks are the unit of transfer between the level-two memory and
/// the instruction cache.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemBlockId(pub u64);

impl fmt::Display for MemBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A concrete address assignment for every instruction of a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Layout {
    addrs: Vec<u64>,
    base: u64,
}

impl Layout {
    /// Lays the program out contiguously from [`DEFAULT_BASE`], following
    /// [`Program::layout_order`] and instruction order within each block.
    pub fn of(p: &Program) -> Self {
        Self::with_base(p, DEFAULT_BASE)
    }

    /// Lays the program out contiguously from `base`.
    pub fn with_base(p: &Program, base: u64) -> Self {
        let mut addrs = vec![0u64; p.instr_count()];
        let mut cur = base;
        for &b in p.layout_order() {
            for &i in p.block(b).instrs() {
                addrs[i.index()] = cur;
                cur += INSTR_BYTES;
            }
        }
        Layout { addrs, base }
    }

    /// Lays the program out such that `anchor` sits at `anchor_addr`.
    ///
    /// This realises the paper's `relocate_upwards`: after inserting a
    /// prefetch, anchoring the first unmodified downstream instruction keeps
    /// every already-analysed address stable while the upstream code shifts
    /// down by one slot.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is not an instruction of `p`, or if the resulting
    /// base would underflow address zero.
    pub fn anchored(p: &Program, anchor: InstrId, anchor_addr: u64) -> Self {
        let probe = Self::with_base(p, 0);
        let off = probe.addrs[anchor.index()];
        let base = anchor_addr
            .checked_sub(off)
            .expect("anchored layout underflows address zero");
        Self::with_base(p, base)
    }

    /// Builds a layout from an explicit address assignment, one address
    /// per instruction indexed by [`InstrId`](crate::InstrId).
    ///
    /// Intended for tools that audit or replay externally produced
    /// layouts (e.g. from a linker map); nothing is checked here —
    /// [`Layout::of`] remains the canonical contiguous constructor, and
    /// `rtpf-audit` lints arbitrary assignments for overlap and gaps.
    pub fn from_addrs(addrs: Vec<u64>, base: u64) -> Self {
        Layout { addrs, base }
    }

    /// Base address of the text segment.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Address of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` was allocated after this layout was computed.
    #[inline]
    pub fn addr(&self, i: InstrId) -> u64 {
        self.addrs[i.index()]
    }

    /// Memory block containing instruction `i`, for a given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or `i` is unknown to this layout.
    #[inline]
    pub fn block_of(&self, i: InstrId, block_bytes: u32) -> MemBlockId {
        assert!(block_bytes > 0, "block size must be positive");
        MemBlockId(self.addrs[i.index()] / u64::from(block_bytes))
    }

    /// Number of instructions covered by this layout.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the layout covers no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrKind;
    use crate::program::EdgeKind;

    fn two_block_program() -> (Program, Vec<InstrId>) {
        let mut p = Program::new("p");
        let b0 = p.entry();
        let b1 = p.add_block();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(p.push_instr(b0, InstrKind::Compute(0)).unwrap());
        }
        for _ in 0..2 {
            ids.push(p.push_instr(b1, InstrKind::Compute(0)).unwrap());
        }
        (p, ids)
    }

    #[test]
    fn contiguous_four_byte_layout() {
        let (p, ids) = two_block_program();
        let l = Layout::of(&p);
        for (k, &i) in ids.iter().enumerate() {
            assert_eq!(l.addr(i), DEFAULT_BASE + 4 * k as u64);
        }
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn block_mapping_uses_block_bytes() {
        let (p, ids) = two_block_program();
        let l = Layout::with_base(&p, 32);
        // 16-byte blocks: 4 instructions per block.
        assert_eq!(l.block_of(ids[0], 16), MemBlockId(2));
        assert_eq!(l.block_of(ids[3], 16), MemBlockId(2));
        assert_eq!(l.block_of(ids[4], 16), MemBlockId(3));
    }

    #[test]
    fn insertion_with_anchor_shifts_prefix_only() {
        let (mut p, ids) = two_block_program();
        let before = Layout::of(&p);
        // Insert a prefetch between ids[2] (end of bb0) and ids[3].
        let b1 = p.block_of(ids[3]);
        let pf = p
            .insert_instr(b1, 0, InstrKind::Prefetch { target: ids[0] })
            .unwrap();
        // Anchor the first unmodified downstream instruction.
        let after = Layout::anchored(&p, ids[3], before.addr(ids[3]));
        // Suffix unchanged.
        assert_eq!(after.addr(ids[3]), before.addr(ids[3]));
        assert_eq!(after.addr(ids[4]), before.addr(ids[4]));
        // Prefetch occupies the slot just before the anchor.
        assert_eq!(after.addr(pf), before.addr(ids[3]) - 4);
        // Prefix shifted down by exactly one slot.
        for &i in &ids[..3] {
            assert_eq!(after.addr(i), before.addr(i) - 4);
        }
        assert_eq!(after.base(), before.base() - 4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn anchored_underflow_panics() {
        let (p, ids) = two_block_program();
        let _ = Layout::anchored(&p, ids[4], 8);
    }
}
