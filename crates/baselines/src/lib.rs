//! Comparator baselines from the paper's related work (§2).
//!
//! * [`hw`] — hardware prefetching: sequential **next-line** prefetch in
//!   its three classic flavours (*always*, *on-miss*, *tagged*, ref [18]),
//!   the **next-N-line** generalization, **target prefetching** with a
//!   reference prediction table (ref [19]), and **wrong-path** prefetching
//!   (both branch directions, ref [13]);
//! * [`locking`] — **static cache locking** (refs [4, 14]): select the
//!   most WCET-valuable blocks, lock them in, and let everything else
//!   bypass the cache. Fully predictable, but it trades performance (and,
//!   as the paper argues in §2.3, energy at small technology nodes) for
//!   that predictability.
//!
//! # Example
//!
//! ```
//! use rtpf_baselines::hw::{HwScheme, simulate_hw};
//! use rtpf_cache::{CacheConfig, MemTiming};
//! use rtpf_isa::shape::Shape;
//! use rtpf_sim::SimConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Shape::loop_(50, Shape::code(60)).compile("loop");
//! let config = CacheConfig::new(2, 16, 256)?;
//! let r = simulate_hw(&p, config, MemTiming::default(), SimConfig::default(),
//!                     HwScheme::NextLine { n: 1 })?;
//! assert!(r.prefetches_issued > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod hw;
pub mod locking;

pub use hw::{simulate_hw, HwScheme};
pub use locking::{locked_tau_w, select_locked_greedy, select_locked_ilp};
