//! Static cache locking (paper refs [4, 14]).
//!
//! The predictability-first alternative the paper argues against: choose
//! the most valuable memory blocks, lock them into the cache before the
//! task runs, and disable replacement. Every reference is then trivially
//! predictable — a hit iff its block is locked — at the price of missing
//! on everything else, forever. Content selection maximizes the WCET value
//! of the locked set: per cache set, at most `associativity` blocks.

use std::collections::HashMap;

use rtpf_cache::{CacheConfig, MemTiming};
use rtpf_ilp::{Cmp, LinearProgram};
use rtpf_isa::{MemBlockId, Program};
use rtpf_sim::LockedContents;
use rtpf_wcet::{AnalysisError, WcetAnalysis};

/// WCET value of each block: Σ over its references of
/// `(miss − hit) × n^w` — the cycles locking it would save on the WCET
/// path.
fn block_values(a: &WcetAnalysis) -> HashMap<MemBlockId, u64> {
    let timing = a.timing();
    let gain = timing.miss_cycles - timing.hit_cycles;
    let mut values: HashMap<MemBlockId, u64> = HashMap::new();
    for r in a.acfg().refs() {
        let w = a.n_w(r.id) * gain;
        if w > 0 {
            *values.entry(a.mem_block(r.id)).or_default() += w;
        }
    }
    values
}

/// Greedy selection: per cache set, the top-`associativity` blocks by
/// WCET value. (Optimal here, since the per-set choices are independent;
/// [`select_locked_ilp`] cross-checks this.)
///
/// # Errors
///
/// Fails if the program cannot be analysed.
pub fn select_locked_greedy(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
) -> Result<LockedContents, AnalysisError> {
    let a = WcetAnalysis::analyze(p, config, timing)?;
    let values = block_values(&a);
    let mut per_set: HashMap<usize, Vec<(MemBlockId, u64)>> = HashMap::new();
    for (&b, &v) in &values {
        per_set.entry(config.set_of(b)).or_default().push((b, v));
    }
    let mut locked = Vec::new();
    for (_, mut blocks) in per_set {
        blocks.sort_by_key(|&(b, v)| (std::cmp::Reverse(v), b));
        locked.extend(
            blocks
                .into_iter()
                .take(config.assoc() as usize)
                .map(|(b, _)| b),
        );
    }
    Ok(LockedContents::new(locked))
}

/// ILP selection: 0/1 variable per candidate block, per-set capacity
/// constraints, maximize total WCET value. Equivalent to the greedy pick;
/// kept as the reference formulation (and exercised against it in tests).
///
/// # Errors
///
/// Fails if the program cannot be analysed or the ILP is infeasible.
pub fn select_locked_ilp(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
) -> Result<LockedContents, AnalysisError> {
    let a = WcetAnalysis::analyze(p, config, timing)?;
    let values = block_values(&a);
    let blocks: Vec<MemBlockId> = {
        let mut v: Vec<MemBlockId> = values.keys().copied().collect();
        v.sort_unstable();
        v
    };
    if blocks.is_empty() {
        return Ok(LockedContents::default());
    }
    let mut lp = LinearProgram::new(blocks.len());
    for (i, b) in blocks.iter().enumerate() {
        lp.set_objective_coeff(i, values[b] as f64);
        lp.add_constraint(&[(i, 1.0)], Cmp::Le, 1.0);
    }
    // Per-set way capacity.
    let mut per_set: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &b) in blocks.iter().enumerate() {
        per_set.entry(config.set_of(b)).or_default().push(i);
    }
    for (_, vars) in per_set {
        let row: Vec<(usize, f64)> = vars.into_iter().map(|i| (i, 1.0)).collect();
        lp.add_constraint(&row, Cmp::Le, f64::from(config.assoc()));
    }
    let sol = rtpf_ilp::ilp::solve(&lp)
        .optimal()
        .ok_or_else(|| AnalysisError::Ipet("locking ILP infeasible".into()))?;
    let locked = blocks
        .iter()
        .enumerate()
        .filter(|&(i, _)| sol.x[i] > 0.5)
        .map(|(_, &b)| b);
    Ok(LockedContents::new(locked))
}

/// `τ_w` of `p` under statically locked contents: every reference costs a
/// hit iff its block is locked, a miss otherwise (no cache dynamics at
/// all — the appeal of locking).
///
/// # Errors
///
/// Fails if the program cannot be analysed.
pub fn locked_tau_w(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
    contents: &LockedContents,
) -> Result<u64, AnalysisError> {
    // Reuse the analysis for layout/graphs/counts; re-derive per-node
    // weights under locking and re-run IPET (the WCET path may differ).
    let a = WcetAnalysis::analyze(p, config, timing)?;
    let vivu = a.vivu();
    let node_weight: Vec<u64> = (0..vivu.len())
        .map(|i| {
            let n = rtpf_wcet::NodeId(i as u32);
            let sum: u64 = a
                .acfg()
                .refs_of_node(n)
                .iter()
                .map(|&r| timing.access_cycles(contents.contains(a.mem_block(r))))
                .sum();
            sum.saturating_mul(vivu.node(n).mult)
        })
        .collect();
    Ok(rtpf_wcet::ipet::solve_dag(vivu, &node_weight)?.tau_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;
    use rtpf_sim::{SimConfig, Simulator};

    fn program() -> Program {
        Shape::seq([
            Shape::code(20),
            Shape::loop_(50, Shape::code(40)),
            Shape::code(30),
        ])
        .compile("lk")
    }

    #[test]
    fn greedy_locks_the_hot_loop() {
        let p = program();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        let locked = select_locked_greedy(&p, &config, &timing).unwrap();
        assert!(!locked.is_empty());
        // Capacity respected: at most assoc × sets blocks.
        assert!(locked.len() <= (config.assoc() * config.n_sets()) as usize);
    }

    #[test]
    fn ilp_matches_greedy_value() {
        let p = program();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        let g = select_locked_greedy(&p, &config, &timing).unwrap();
        let i = select_locked_ilp(&p, &config, &timing).unwrap();
        let tg = locked_tau_w(&p, &config, &timing, &g).unwrap();
        let ti = locked_tau_w(&p, &config, &timing, &i).unwrap();
        assert_eq!(tg, ti, "greedy and ILP selections must tie");
    }

    #[test]
    fn locking_beats_empty_lock() {
        let p = program();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        let locked = select_locked_greedy(&p, &config, &timing).unwrap();
        let t_locked = locked_tau_w(&p, &config, &timing, &locked).unwrap();
        let t_empty = locked_tau_w(&p, &config, &timing, &LockedContents::default()).unwrap();
        assert!(t_locked < t_empty);
    }

    #[test]
    fn locking_whole_program_when_it_fits_is_unbeatable() {
        // With capacity for every block, locking even avoids cold misses;
        // the unlocked cache can at best match it plus compulsory misses.
        let p = program();
        let config = CacheConfig::new(4, 16, 2048).unwrap();
        let timing = MemTiming::default();
        let a = WcetAnalysis::analyze(&p, &config, &timing).unwrap();
        let locked = select_locked_greedy(&p, &config, &timing).unwrap();
        let t_locked = locked_tau_w(&p, &config, &timing, &locked).unwrap();
        assert!(t_locked <= a.tau_w());
    }

    #[test]
    fn unlocked_analysis_beats_locking_on_an_oversized_hot_loop() {
        // The paper's §2.3 scenario: the hot working set exceeds what can
        // be locked, so the locked cache misses part of the loop on every
        // iteration while LRU adapts.
        let p = Shape::seq([
            Shape::code(20),
            Shape::loop_(50, Shape::code(80)), // 320 B body
            Shape::loop_(50, Shape::code(80)), // second phase, same size
            Shape::code(30),
        ])
        .compile("big");
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let timing = MemTiming::default();
        let a = WcetAnalysis::analyze(&p, &config, &timing).unwrap();
        let locked = select_locked_greedy(&p, &config, &timing).unwrap();
        let t_locked = locked_tau_w(&p, &config, &timing, &locked).unwrap();
        assert!(
            a.tau_w() < t_locked,
            "unlocked {} vs locked {}",
            a.tau_w(),
            t_locked
        );
    }

    #[test]
    fn locked_simulation_is_consistent() {
        let p = program();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        let locked = select_locked_greedy(&p, &config, &timing).unwrap();
        let sim = Simulator::new(
            config,
            timing,
            SimConfig {
                runs: 1,
                seed: 5,
                ..SimConfig::default()
            },
        );
        let locked_run = sim.run_locked(&p, &locked).unwrap();
        let free_run = sim.run(&p).unwrap();
        // The locked loop hits; everything else always misses.
        assert!(locked_run.stats.hits > 0);
        assert!(locked_run.stats.misses >= free_run.stats.misses);
    }
}
