//! Hardware prefetching schemes (paper §2, refs [18, 19, 13]).

use std::collections::{HashMap, HashSet};

use rtpf_cache::{CacheConfig, MemTiming};
use rtpf_isa::{MemBlockId, Program};
use rtpf_sim::{HwPrefetcher, SimConfig, SimError, SimResult, Simulator};

/// Which hardware scheme to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HwScheme {
    /// Next-N-line, issued on every access ("next-line always" for n = 1).
    NextLine {
        /// How many sequential lines to prefetch ahead.
        n: u32,
    },
    /// Next-N-line, issued only on misses.
    NextLineOnMiss {
        /// How many sequential lines to prefetch ahead.
        n: u32,
    },
    /// Next-line issued on the first touch of each line (tag bit).
    NextLineTagged,
    /// Target prefetching: a reference prediction table maps each branch
    /// to its last taken-target block, prefetched on the next encounter.
    Target,
    /// Wrong-path prefetching: the RPT stores both the taken target and
    /// the fall-through block and prefetches both.
    WrongPath,
}

/// Builds a fresh prefetcher for one simulation run.
pub fn build(scheme: HwScheme) -> Box<dyn HwPrefetcher> {
    match scheme {
        HwScheme::NextLine { n } => Box::new(NextLine {
            n,
            on_miss_only: false,
        }),
        HwScheme::NextLineOnMiss { n } => Box::new(NextLine {
            n,
            on_miss_only: true,
        }),
        HwScheme::NextLineTagged => Box::new(Tagged {
            touched: HashSet::new(),
        }),
        HwScheme::Target => Box::new(Rpt {
            table: HashMap::new(),
            wrong_path: false,
        }),
        HwScheme::WrongPath => Box::new(Rpt {
            table: HashMap::new(),
            wrong_path: true,
        }),
    }
}

/// Simulates `p` under the given hardware scheme.
///
/// # Errors
///
/// Propagates simulator errors (invalid program, fetch cap).
pub fn simulate_hw(
    p: &Program,
    config: CacheConfig,
    timing: MemTiming,
    sim: SimConfig,
    scheme: HwScheme,
) -> Result<SimResult, SimError> {
    Simulator::new(config, timing, sim).run_hw(p, || build(scheme))
}

struct NextLine {
    n: u32,
    on_miss_only: bool,
}

impl HwPrefetcher for NextLine {
    fn on_fetch(&mut self, _addr: u64, block: MemBlockId, was_miss: bool) -> Vec<MemBlockId> {
        if self.on_miss_only && !was_miss {
            return Vec::new();
        }
        (1..=u64::from(self.n))
            .map(|k| MemBlockId(block.0 + k))
            .collect()
    }

    fn on_branch(&mut self, _b: u64, _t: MemBlockId, _taken: bool) -> Vec<MemBlockId> {
        Vec::new()
    }
}

struct Tagged {
    touched: HashSet<MemBlockId>,
}

impl HwPrefetcher for Tagged {
    fn on_fetch(&mut self, _addr: u64, block: MemBlockId, _was_miss: bool) -> Vec<MemBlockId> {
        if self.touched.insert(block) {
            vec![MemBlockId(block.0 + 1)]
        } else {
            Vec::new()
        }
    }

    fn on_branch(&mut self, _b: u64, _t: MemBlockId, _taken: bool) -> Vec<MemBlockId> {
        Vec::new()
    }
}

struct Rpt {
    /// branch address → (taken target, fall-through target).
    table: HashMap<u64, (Option<MemBlockId>, Option<MemBlockId>)>,
    wrong_path: bool,
}

impl HwPrefetcher for Rpt {
    fn on_fetch(&mut self, addr: u64, _block: MemBlockId, _was_miss: bool) -> Vec<MemBlockId> {
        // Prediction happens when the (potential) branch is fetched.
        match self.table.get(&addr) {
            Some(&(taken, fall)) => {
                let mut v = Vec::new();
                if let Some(t) = taken {
                    v.push(t);
                }
                if self.wrong_path {
                    if let Some(f) = fall {
                        v.push(f);
                    }
                }
                v
            }
            None => Vec::new(),
        }
    }

    fn on_branch(
        &mut self,
        branch_addr: u64,
        target_block: MemBlockId,
        taken: bool,
    ) -> Vec<MemBlockId> {
        let entry = self.table.entry(branch_addr).or_insert((None, None));
        if taken {
            entry.0 = Some(target_block);
        } else {
            entry.1 = Some(target_block);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn run(scheme: HwScheme) -> SimResult {
        let p = Shape::loop_(40, Shape::code(80)).compile("t");
        simulate_hw(
            &p,
            CacheConfig::new(2, 16, 256).unwrap(),
            MemTiming::default(),
            SimConfig {
                runs: 1,
                seed: 7,
                ..SimConfig::default()
            },
            scheme,
        )
        .unwrap()
    }

    #[test]
    fn next_line_always_prefetches_a_lot() {
        let r = run(HwScheme::NextLine { n: 1 });
        assert!(r.prefetches_issued > 0);
    }

    #[test]
    fn on_miss_issues_fewer_than_always() {
        let always = run(HwScheme::NextLine { n: 1 });
        let on_miss = run(HwScheme::NextLineOnMiss { n: 1 });
        assert!(on_miss.prefetches_issued <= always.prefetches_issued);
    }

    #[test]
    fn next_line_helps_a_streaming_loop() {
        // Body (320 B) exceeds the 256 B cache: sequential prefetch hides
        // part of the refill latency each iteration.
        let base = {
            let p = Shape::loop_(40, Shape::code(80)).compile("t");
            Simulator::new(
                CacheConfig::new(2, 16, 256).unwrap(),
                MemTiming::default(),
                SimConfig {
                    runs: 1,
                    seed: 7,
                    ..SimConfig::default()
                },
            )
            .run(&p)
            .unwrap()
        };
        let pf = run(HwScheme::NextLine { n: 2 });
        assert!(
            pf.stats.cycles < base.stats.cycles,
            "prefetch {} vs base {}",
            pf.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn tagged_prefetches_once_per_line() {
        let r = run(HwScheme::NextLineTagged);
        // Tagged issues at most one prefetch per distinct block touched.
        assert!(r.prefetches_issued > 0);
        let always = run(HwScheme::NextLine { n: 1 });
        assert!(r.prefetches_issued <= always.prefetches_issued);
    }

    #[test]
    fn target_prefetcher_trains_on_branches() {
        let p = Shape::loop_(60, Shape::if_else(2, Shape::code(40), Shape::code(40))).compile("b");
        let r = simulate_hw(
            &p,
            CacheConfig::new(2, 16, 128).unwrap(),
            MemTiming::default(),
            SimConfig {
                runs: 1,
                seed: 3,
                ..SimConfig::default()
            },
            HwScheme::Target,
        )
        .unwrap();
        assert!(r.prefetches_issued > 0, "RPT should fire after training");
    }

    #[test]
    fn wrong_path_issues_at_least_as_many_as_target() {
        let p = Shape::loop_(60, Shape::if_else(2, Shape::code(40), Shape::code(40))).compile("b");
        let mk = |scheme| {
            simulate_hw(
                &p,
                CacheConfig::new(2, 16, 128).unwrap(),
                MemTiming::default(),
                SimConfig {
                    runs: 1,
                    seed: 3,
                    ..SimConfig::default()
                },
                scheme,
            )
            .unwrap()
        };
        let t = mk(HwScheme::Target);
        let w = mk(HwScheme::WrongPath);
        assert!(w.prefetches_issued >= t.prefetches_issued);
    }
}
