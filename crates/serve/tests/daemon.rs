//! End-to-end daemon tests: golden byte-identity against the library
//! path, warm-pass cache behavior, protocol errors, and graceful
//! shutdown.

use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rtpf_cache::CacheConfig;
use rtpf_engine::{
    ArtifactStore, ConfigSpec, ProgramSource, ServiceCore, ServiceOp, ServiceProfile,
    ServiceRequest,
};
use rtpf_serve::http::{request, ClientResponse};
use rtpf_serve::{encode_request, Daemon, DaemonConfig};

const TIMEOUT: Duration = Duration::from_secs(60);

struct Running {
    addr: String,
    core: Arc<ServiceCore>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl Running {
    fn start(config: DaemonConfig) -> Running {
        let daemon = Daemon::bind(config).expect("binds");
        let addr = daemon.local_addr().to_string();
        let core = Arc::clone(daemon.core());
        let thread = thread::spawn(move || daemon.run());
        Running { addr, core, thread }
    }

    fn post(&self, path: &str, body: &str) -> ClientResponse {
        request(self.addr.as_str(), path, Some(body), TIMEOUT).expect("request succeeds")
    }

    fn get(&self, path: &str) -> ClientResponse {
        request(self.addr.as_str(), path, None, TIMEOUT).expect("request succeeds")
    }

    fn shutdown(self) {
        let resp = self.post("/shutdown", "{}");
        assert_eq!(resp.status, 200);
        self.thread
            .join()
            .expect("daemon thread joins")
            .expect("daemon drains cleanly");
    }
}

fn spec_of(c: &CacheConfig) -> String {
    format!("{}:{}:{}", c.assoc(), c.block_bytes(), c.capacity_bytes())
}

fn service_request(op: ServiceOp, program: &str, cache: &str) -> ServiceRequest {
    ServiceRequest {
        op,
        program: ProgramSource::Spec(format!("suite:{program}")),
        config: ConfigSpec {
            cache: cache.to_string(),
            ..ConfigSpec::default()
        },
    }
}

/// The acceptance golden: responses served through the daemon are
/// byte-identical to the library path for suite programs × Table 2
/// configurations, across all four operations.
#[test]
fn daemon_responses_are_byte_identical_to_the_library_path() {
    let server = Running::start(DaemonConfig::default());
    let library = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));

    let table2 = CacheConfig::paper_configs();
    let configs: Vec<String> = ["k1", "k9"]
        .iter()
        .map(|k| {
            let (_, c) = table2
                .iter()
                .find(|(name, _)| name == k)
                .expect("table 2 key");
            spec_of(c)
        })
        .collect();
    for program in ["bs", "fibcall"] {
        for cache in &configs {
            for op in [
                ServiceOp::Analyze,
                ServiceOp::Optimize,
                ServiceOp::Audit,
                ServiceOp::Simulate,
            ] {
                let req = service_request(op, program, cache);
                let wire = server.post(&format!("/{}", op.name()), &encode_request(&req));
                assert_eq!(wire.status, 200, "{program}/{cache}: {}", wire.body);
                let expected = library.handle(&req).expect("library path serves").to_json();
                assert_eq!(
                    wire.body,
                    expected,
                    "{program} × {cache} × {} must be byte-identical",
                    op.name()
                );
            }
        }
    }
    server.shutdown();
}

#[test]
fn warm_requests_hit_the_cache_and_metrics_show_it() {
    let server = Running::start(DaemonConfig::default());
    let body = encode_request(&service_request(ServiceOp::Analyze, "bs", "2:16:512"));

    let cold = server.post("/analyze", &body);
    assert_eq!(cold.status, 200);
    let misses_cold = server.core.store().misses();
    assert!(misses_cold > 0);

    let warm = server.post("/analyze", &body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body, "warm response identical");
    assert_eq!(
        server.core.store().misses(),
        misses_cold,
        "warm request recomputed a stage"
    );

    let metrics = server.get("/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("\"hits\":"), "{}", metrics.body);
    assert!(metrics.body.contains("\"engines\": 1"), "{}", metrics.body);
    server.shutdown();
}

#[test]
fn inline_source_and_profiles_are_served() {
    let server = Running::start(DaemonConfig::default());
    let req = ServiceRequest {
        op: ServiceOp::Simulate,
        program: ProgramSource::Inline {
            name: "tiny".to_string(),
            text: "program tiny\ncode 8\nloop 4 { code 6 }\ncode 2\n".to_string(),
        },
        config: ConfigSpec {
            profile: ServiceProfile::Evaluation,
            runs: Some(1),
            ..ConfigSpec::default()
        },
    };
    let resp = server.post("/simulate", &encode_request(&req));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"program\": \"tiny\""), "{}", resp.body);
    assert!(resp.body.contains("\"acet_cycles\":"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn protocol_errors_use_the_right_status_codes() {
    let server = Running::start(DaemonConfig::default());
    assert_eq!(server.get("/healthz").status, 200);
    assert_eq!(server.get("/nope").status, 404);
    assert_eq!(server.get("/analyze").status, 405);
    assert_eq!(server.post("/metrics", "{}").status, 405);
    assert_eq!(server.post("/analyze", "not json").status, 400);
    assert_eq!(server.post("/analyze", "{}").status, 400);
    let bad_cache = encode_request(&service_request(ServiceOp::Analyze, "bs", "3:16:512"));
    assert_eq!(server.post("/analyze", &bad_cache).status, 400);
    let unknown = encode_request(&service_request(ServiceOp::Analyze, "doom", "2:16:512"));
    assert_eq!(server.post("/analyze", &unknown).status, 500);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let server = Running::start(DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    });
    let body = encode_request(&service_request(ServiceOp::Analyze, "bs", "2:16:512"));
    assert_eq!(server.post("/analyze", &body).status, 200);
    let addr = server.addr.clone();
    server.shutdown();
    assert!(
        request(addr.as_str(), "/healthz", None, Duration::from_secs(2)).is_err(),
        "a drained daemon must not serve new connections"
    );
}
