//! `rtpfd` — the analysis-as-a-service daemon.
//!
//! ```text
//! rtpfd [--addr HOST:PORT] [--workers N] [--queue N]
//!       [--store-dir PATH] [--max-bytes N] [--shards N]
//!       [--port-file PATH]
//! ```
//!
//! Binds (port 0 picks an ephemeral port), optionally writes the bound
//! address to `--port-file` (how CI discovers the port), serves until a
//! `POST /shutdown`, drains, and exits 0. `rtpf serve` is the same
//! entry point behind the main CLI; both delegate to
//! [`rtpf_serve::serve_main`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rtpf_serve::serve_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(m) => {
            eprintln!("rtpfd: {m}");
            ExitCode::FAILURE
        }
    }
}
