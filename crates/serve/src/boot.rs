//! Daemon bootstrap shared by the `rtpfd` binary and `rtpf serve`:
//! flag parsing, bind, port-file publication, and the serve loop.

use crate::{Daemon, DaemonConfig};

/// Flag summary for `--help` and error messages.
pub const SERVE_USAGE: &str = "[--addr HOST:PORT] [--workers N] [--queue N]\n\
     \x20 [--store-dir PATH] [--max-bytes N] [--shards N] [--port-file PATH]";

/// Parses the daemon flag set (everything after the binary/subcommand
/// name). Returns the configuration plus the `--port-file` path.
///
/// # Errors
///
/// A usage-style message for unknown flags, missing values, or
/// unparsable numbers (also for `--help`, carrying the usage text).
pub fn parse_serve_args(args: &[String]) -> Result<(DaemonConfig, Option<String>), String> {
    let mut config = DaemonConfig::default();
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(SERVE_USAGE.to_string());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{SERVE_USAGE}"))?;
        let num = |v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = num(value)? as usize,
            "--queue" => config.queue = num(value)? as usize,
            "--store-dir" => config.store.disk_root = Some(value.into()),
            "--max-bytes" => config.store.max_bytes = Some(num(value)?),
            "--shards" => config.store.shards = num(value)? as usize,
            "--port-file" => port_file = Some(value.clone()),
            _ => return Err(format!("unknown flag {flag}\n{SERVE_USAGE}")),
        }
    }
    Ok((config, port_file))
}

/// Parses `args`, binds, publishes the bound address to the port file
/// (when asked), and serves until a `POST /shutdown` drains the daemon.
/// Status lines go to stderr; the connection loop owns stdout-free.
///
/// # Errors
///
/// Usage problems, bind failures, and I/O failures, pre-rendered for
/// the caller to print and turn into a nonzero exit.
pub fn serve_main(args: &[String]) -> Result<(), String> {
    let (config, port_file) = parse_serve_args(args)?;
    let daemon = Daemon::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = daemon.local_addr();
    if let Some(path) = port_file {
        std::fs::write(&path, addr.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!("rtpfd: serving on {addr}");
    daemon.run().map_err(|e| e.to_string())?;
    eprintln!("rtpfd: drained, bye");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_flag_set() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:7070",
            "--workers",
            "8",
            "--queue",
            "64",
            "--store-dir",
            "/tmp/s",
            "--max-bytes",
            "1048576",
            "--shards",
            "4",
            "--port-file",
            "/tmp/p",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (config, port_file) = parse_serve_args(&args).expect("parses");
        assert_eq!(config.addr, "0.0.0.0:7070");
        assert_eq!((config.workers, config.queue), (8, 64));
        assert_eq!(
            config.store.disk_root.as_deref(),
            Some(std::path::Path::new("/tmp/s"))
        );
        assert_eq!(config.store.max_bytes, Some(1_048_576));
        assert_eq!(config.store.shards, 4);
        assert_eq!(port_file.as_deref(), Some("/tmp/p"));
    }

    #[test]
    fn rejects_bad_flags() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_serve_args(&s(&["--warp"])).is_err());
        assert!(parse_serve_args(&s(&["--workers"])).is_err());
        assert!(parse_serve_args(&s(&["--workers", "many"])).is_err());
    }
}
