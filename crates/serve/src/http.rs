//! Minimal HTTP/1.1 framing over `std::net`, plus the tiny blocking
//! client `loadgen` and the tests drive requests with.
//!
//! The daemon speaks exactly the subset it needs: request line, headers,
//! `Content-Length` bodies (no chunked encoding), `Connection:
//! close`/`keep-alive`, and fixed-size limits that bound what a client
//! can make the server buffer.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Request method, uppercased by the client as sent.
    pub method: String,
    /// Request path (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Reads one request from the connection. `Ok(None)` means the peer
/// closed cleanly before sending another request (normal keep-alive
/// teardown).
///
/// # Errors
///
/// Malformed framing or a request exceeding the size limits.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line without path"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line without version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut head_bytes = line.len();
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive unless the client opts out.
    let mut keep_alive = !version.ends_with("1.0");
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(bad("request body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    }))
}

/// Writes one response with the given status and JSON body, announcing
/// whether the server will keep the connection open.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One client response: status code and body text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Blocking one-shot request (`Connection: close`): connects, sends,
/// reads the full response, disconnects. `body = None` sends a GET.
///
/// # Errors
///
/// Connection, I/O, or response-framing failures.
pub fn request(
    addr: impl ToSocketAddrs,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let (method, payload) = match body {
        Some(b) => ("POST", b),
        None => ("GET", ""),
    };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: rtpfd\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?,
                );
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| bad("non-utf8 body"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse { status, body })
}
