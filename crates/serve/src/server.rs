//! The daemon: a bounded worker pool draining a backpressure queue of
//! accepted connections, serving the [`ServiceCore`] over HTTP/1.1+JSON.
//!
//! Threading model (std-only; the build is offline, so no async
//! runtime): the caller's thread accepts connections and pushes them
//! onto a bounded queue; `workers` threads pop connections and serve
//! requests on them. A full queue answers `503` immediately — load
//! sheds at the door instead of queueing unboundedly. Keep-alive
//! connections are released (with `connection: close`) whenever other
//! connections are waiting, so a handful of chatty clients cannot
//! starve the pool.
//!
//! Graceful shutdown: `POST /shutdown` acknowledges, flips the shutdown
//! flag, and self-connects to unblock the acceptor; the acceptor stops
//! accepting and closes the queue; workers drain every queued
//! connection, finish in-flight requests, and exit; [`Daemon::run`]
//! joins them and returns. Nothing accepted is dropped unanswered.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use rtpf_engine::{ArtifactStore, ServiceCore, ServiceError, StoreConfig};

use crate::http::{read_request, write_response, Request};
use crate::request::decode_request;

/// Daemon configuration (the `rtpfd` flags).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bound of the accepted-connection queue (beyond the workers'
    /// in-flight connections); a full queue answers `503`.
    pub queue: usize,
    /// Artifact-store tier configuration (shards, byte budget, disk
    /// root).
    pub store: StoreConfig,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 1024,
            store: StoreConfig::default(),
        }
    }
}

/// Bounded connection queue with a closed state (see the module docs).
struct ConnQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a connection; `Err` returns it when the queue is full
    /// (the caller sheds it with `503`) or closed.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed || s.conns.len() >= self.cap {
            return Err(conn);
        }
        s.conns.push_back(conn);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed *and* drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(conn) = s.conns.pop_front() {
                return Some(conn);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue wait");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.state.lock().expect("queue lock").conns.is_empty()
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").conns.len()
    }
}

/// A bound daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    core: Arc<ServiceCore>,
    listener: TcpListener,
    local_addr: SocketAddr,
    config: DaemonConfig,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds the listener and builds the shared service core.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = Arc::new(ArtifactStore::with_config(config.store.clone()));
        Ok(Daemon {
            core: Arc::new(ServiceCore::new(store)),
            listener,
            local_addr,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the ephemeral port after `bind` on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service core (tests reach through this).
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Serves until a `POST /shutdown` arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (worker panics are contained
    /// per connection and do not abort the daemon).
    pub fn run(self) -> io::Result<()> {
        let queue = Arc::new(ConnQueue::new(self.config.queue));
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let core = Arc::clone(&self.core);
                let shutdown = Arc::clone(&self.shutdown);
                let addr = self.local_addr;
                thread::Builder::new()
                    .name(format!("rtpfd-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &core, &shutdown, addr))
                    .expect("spawns worker")
            })
            .collect();

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake connection (or any racer) is dropped unserved;
                // it carried no request.
                break;
            }
            let conn = match conn {
                Ok(c) => c,
                // Transient accept errors (peer vanished between SYN and
                // accept) must not take the daemon down.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    queue.close();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            };
            if let Err(mut shed) = queue.push(conn) {
                let _ = write_response(&mut shed, 503, "{\"error\": \"queue full\"}", false);
            }
        }
        queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn worker_loop(
    queue: &ConnQueue,
    core: &Arc<ServiceCore>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    while let Some(conn) = queue.pop() {
        // A panic while serving one connection (a pipeline bug on one
        // input) must not shrink the pool for every other client.
        let result = catch_unwind(AssertUnwindSafe(|| {
            serve_connection(conn, queue, core, shutdown, addr);
        }));
        if result.is_err() && !shutdown.load(Ordering::SeqCst) {
            // The connection died with the panic; the pool carries on.
        }
    }
}

fn serve_connection(
    conn: TcpStream,
    queue: &ConnQueue,
    core: &Arc<ServiceCore>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let mut reader = match conn.try_clone() {
        Ok(c) => BufReader::new(c),
        Err(_) => return,
    };
    let mut writer = conn;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            // Clean keep-alive teardown by the peer.
            Ok(None) => return,
            Err(e) => {
                let body = format!("{{\"error\": \"{}\"}}", e.to_string().replace('"', "'"));
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
        };
        // Yield the connection whenever others wait (or we are
        // draining): tell the client and close after this response.
        let keep = req.keep_alive && queue.is_empty() && !shutdown.load(Ordering::SeqCst);
        let (status, body) = route(&req, core, queue, shutdown, addr);
        if write_response(&mut writer, status, &body, keep).is_err() || !keep {
            return;
        }
    }
}

fn route(
    req: &Request,
    core: &Arc<ServiceCore>,
    queue: &ConnQueue,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\": \"ok\"}".to_string()),
        ("GET", "/metrics") => {
            let m = core.store().metrics();
            (
                200,
                format!(
                    "{{\"store\": {}, \"engines\": {}, \"queue_depth\": {}}}",
                    m.to_json(),
                    core.engine_count(),
                    queue.depth()
                ),
            )
        }
        ("POST", "/shutdown") => {
            if !shutdown.swap(true, Ordering::SeqCst) {
                // First shutdown request: wake the acceptor out of
                // `accept` with a throwaway connection.
                let _ = TcpStream::connect(addr);
            }
            (200, "{\"status\": \"draining\"}".to_string())
        }
        ("POST", "/analyze" | "/optimize" | "/audit" | "/simulate") => {
            let op = &req.path[1..];
            match decode_request(op, &req.body) {
                Ok(service_req) => match core.handle(&service_req) {
                    Ok(resp) => (200, resp.to_json()),
                    Err(e @ ServiceError::BadRequest(_)) => (400, error_body(&e)),
                    Err(e @ ServiceError::Engine(_)) => (500, error_body(&e)),
                },
                Err(m) => (400, error_body(&m)),
            }
        }
        ("GET", "/analyze" | "/optimize" | "/audit" | "/simulate")
        | ("POST", "/healthz" | "/metrics") => {
            (405, "{\"error\": \"method not allowed\"}".to_string())
        }
        _ => (404, "{\"error\": \"no such endpoint\"}".to_string()),
    }
}

fn error_body(e: &impl std::fmt::Display) -> String {
    let msg = e
        .to_string()
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("{{\"error\": \"{msg}\"}}")
}
