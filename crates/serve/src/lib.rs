//! rtpf-serve: the analysis-as-a-service tier.
//!
//! The `rtpfd` daemon mounts the engine's [`ServiceCore`] — one shared,
//! sharded, single-flight [`ArtifactStore`] plus per-configuration
//! engines — behind a hand-rolled std-only HTTP/1.1+JSON server (the
//! build is offline: no tokio, no serde; the server is built the way
//! `bench_sweep` builds its JSON). Endpoints:
//!
//! | endpoint    | method | body                                  |
//! |-------------|--------|---------------------------------------|
//! | `/analyze`  | POST   | program + config → WCET analysis      |
//! | `/optimize` | POST   | program + config → verified insertion |
//! | `/audit`    | POST   | program + config → lints + soundness  |
//! | `/simulate` | POST   | program + config → seeded ACET        |
//! | `/metrics`  | GET    | store/engine/queue counters           |
//! | `/healthz`  | GET    | liveness                              |
//! | `/shutdown` | POST   | graceful drain                        |
//!
//! Responses are byte-identical to the library path (see
//! `ServiceResponse::to_json`); the golden tests in `tests/` pin that,
//! and `loadgen` (in `crates/bench`) proves exactly-once compute under
//! concurrent mixed load via the `/metrics` counters.
//!
//! DESIGN.md §15 documents the architecture: store shards, single-flight
//! protocol, LRU byte bounds, the on-disk lease, and the drain sequence.
//!
//! [`ServiceCore`]: rtpf_engine::ServiceCore
//! [`ArtifactStore`]: rtpf_engine::ArtifactStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod http;
pub mod json;
pub mod request;
mod server;

pub use boot::{parse_serve_args, serve_main, SERVE_USAGE};
pub use request::{decode_request, encode_request};
pub use server::{Daemon, DaemonConfig};
