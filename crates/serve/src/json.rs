//! A minimal JSON value parser for the daemon's request bodies.
//!
//! The build is offline (no serde); this is the read-side counterpart of
//! the hand-rolled JSON the workspace already *writes* (`bench_sweep`,
//! `StoreMetrics::to_json`, `ServiceResponse::to_json`). It parses the
//! full JSON grammar — objects, arrays, strings with escapes (including
//! `\uXXXX`), numbers, booleans, null — into a [`Value`] tree with the
//! few typed accessors request decoding needs.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

/// Parse error with byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(s: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: the low half must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err(format!("bad escape \\{}", esc as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(
            r#"{"op": "analyze", "n": -2.5e1, "flags": [true, false, null],
                "config": {"cache": "2:16:512"}}"#,
        )
        .expect("parses");
        assert_eq!(v.get("op").and_then(Value::as_str), Some("analyze"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-25.0));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("cache"))
                .and_then(Value::as_str),
            Some("2:16:512")
        );
        let Some(Value::Arr(flags)) = v.get("flags") else {
            panic!("array expected");
        };
        assert_eq!(flags.len(), 3);
    }

    #[test]
    fn unescapes_strings() {
        let v = Value::parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,]",
            "123x",
            "{\"a\":1} extra",
            "\"\\q\"",
            "nul",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::parse("7").expect("parses").as_u64(), Some(7));
        assert_eq!(Value::parse("7.5").expect("parses").as_u64(), None);
        assert_eq!(Value::parse("-7").expect("parses").as_u64(), None);
    }
}
