//! Wire-format decoding: a JSON request body into the engine's typed
//! [`ServiceRequest`].
//!
//! The body shape (every field of `config` optional):
//!
//! ```json
//! {
//!   "program": "suite:bs",
//!   "source": {"name": "tiny", "text": "program tiny\ncode 8\n"},
//!   "config": {
//!     "cache": "2:16:512:lru",
//!     "l2": "8:32:16384",
//!     "profile": "evaluation",
//!     "penalty": 10, "runs": 3, "seed": 77
//!   }
//! }
//! ```
//!
//! Exactly one of `program` (a `suite:NAME` spec or server-readable
//! path) and `source` (inline text) must be present. The operation comes
//! from the endpoint path, not the body.

use rtpf_engine::{
    ConfigSpec, ProgramSource, ServiceError, ServiceOp, ServiceProfile, ServiceRequest,
};

use crate::json::Value;

/// Decodes one endpoint's request body.
///
/// # Errors
///
/// [`ServiceError::BadRequest`] naming the malformed field.
pub fn decode_request(op: &str, body: &[u8]) -> Result<ServiceRequest, ServiceError> {
    let bad = |m: String| ServiceError::BadRequest(m);
    let op = ServiceOp::parse(op).ok_or_else(|| bad(format!("unknown operation {op:?}")))?;
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not utf-8".to_string()))?;
    let doc = Value::parse(text).map_err(|e| bad(e.to_string()))?;
    if !matches!(doc, Value::Obj(_)) {
        return Err(bad("request body must be a JSON object".to_string()));
    }

    let program = match (doc.get("program"), doc.get("source")) {
        (Some(spec), None) => ProgramSource::Spec(
            spec.as_str()
                .ok_or_else(|| bad("\"program\" must be a string".to_string()))?
                .to_string(),
        ),
        (None, Some(src)) => {
            let name = src
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("\"source.name\" must be a string".to_string()))?;
            let text = src
                .get("text")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("\"source.text\" must be a string".to_string()))?;
            ProgramSource::Inline {
                name: name.to_string(),
                text: text.to_string(),
            }
        }
        (Some(_), Some(_)) => {
            return Err(bad(
                "give either \"program\" or \"source\", not both".to_string()
            ))
        }
        (None, None) => return Err(bad("missing \"program\" (or inline \"source\")".to_string())),
    };

    let mut config = ConfigSpec::default();
    if let Some(c) = doc.get("config") {
        if !matches!(c, Value::Obj(_)) {
            return Err(bad("\"config\" must be an object".to_string()));
        }
        if let Some(v) = c.get("cache") {
            config.cache = v
                .as_str()
                .ok_or_else(|| bad("\"config.cache\" must be a string".to_string()))?
                .to_string();
        }
        if let Some(v) = c.get("l2") {
            config.l2 = Some(
                v.as_str()
                    .ok_or_else(|| bad("\"config.l2\" must be a string".to_string()))?
                    .to_string(),
            );
        }
        if let Some(v) = c.get("profile") {
            let name = v
                .as_str()
                .ok_or_else(|| bad("\"config.profile\" must be a string".to_string()))?;
            config.profile = ServiceProfile::parse(name)
                .ok_or_else(|| bad(format!("unknown profile {name:?}")))?;
        }
        if let Some(v) = c.get("penalty") {
            config.penalty = Some(
                v.as_u64()
                    .ok_or_else(|| bad("\"config.penalty\" must be an integer".to_string()))?,
            );
        }
        if let Some(v) = c.get("runs") {
            let runs = v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad("\"config.runs\" must be a u32".to_string()))?;
            config.runs = Some(runs);
        }
        if let Some(v) = c.get("seed") {
            config.seed = Some(
                v.as_u64()
                    .ok_or_else(|| bad("\"config.seed\" must be an integer".to_string()))?,
            );
        }
    }

    Ok(ServiceRequest {
        op,
        program,
        config,
    })
}

/// Renders a [`ServiceRequest`] as a request body — the client half of
/// the wire format, used by `loadgen` and the golden tests.
pub fn encode_request(req: &ServiceRequest) -> String {
    let escape = |s: &str| {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\r', "\\r")
            .replace('\t', "\\t")
    };
    let program = match &req.program {
        ProgramSource::Spec(spec) => format!("\"program\": \"{}\"", escape(spec)),
        ProgramSource::Inline { name, text } => format!(
            "\"source\": {{\"name\": \"{}\", \"text\": \"{}\"}}",
            escape(name),
            escape(text)
        ),
    };
    let mut config = format!(
        "\"cache\": \"{}\", \"profile\": \"{}\"",
        escape(&req.config.cache),
        req.config.profile.name()
    );
    if let Some(l2) = &req.config.l2 {
        config.push_str(&format!(", \"l2\": \"{}\"", escape(l2)));
    }
    if let Some(p) = req.config.penalty {
        config.push_str(&format!(", \"penalty\": {p}"));
    }
    if let Some(r) = req.config.runs {
        config.push_str(&format!(", \"runs\": {r}"));
    }
    if let Some(s) = req.config.seed {
        config.push_str(&format!(", \"seed\": {s}"));
    }
    format!("{{{program}, \"config\": {{{config}}}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_request() {
        let body = br#"{"program": "suite:bs",
            "config": {"cache": "4:16:2048:plru", "l2": "8:32:16384",
                       "profile": "evaluation", "penalty": 12, "runs": 2, "seed": 9}}"#;
        let req = decode_request("optimize", body).expect("decodes");
        assert_eq!(req.op, ServiceOp::Optimize);
        assert_eq!(req.program, ProgramSource::Spec("suite:bs".to_string()));
        assert_eq!(req.config.cache, "4:16:2048:plru");
        assert_eq!(req.config.l2.as_deref(), Some("8:32:16384"));
        assert_eq!(req.config.profile, ServiceProfile::Evaluation);
        assert_eq!(
            (req.config.penalty, req.config.runs, req.config.seed),
            (Some(12), Some(2), Some(9))
        );
    }

    #[test]
    fn encode_and_decode_roundtrip() {
        let req = ServiceRequest {
            op: ServiceOp::Audit,
            program: ProgramSource::Inline {
                name: "tiny".to_string(),
                text: "program tiny\ncode 8\nloop 4 { code 6 }\n".to_string(),
            },
            config: ConfigSpec {
                cache: "2:16:512".to_string(),
                l2: Some("4:16:8192:fifo".to_string()),
                profile: ServiceProfile::Sweep,
                penalty: Some(10),
                runs: None,
                seed: Some(3),
            },
        };
        let decoded = decode_request("audit", encode_request(&req).as_bytes()).expect("decodes");
        assert_eq!(decoded, req);
    }

    #[test]
    fn rejects_malformed_bodies() {
        for (op, body) in [
            ("analyze", &b"not json"[..]),
            ("analyze", b"[]"),
            ("analyze", b"{}"),
            ("analyze", br#"{"program": 7}"#),
            (
                "analyze",
                br#"{"program": "suite:bs", "source": {"name": "x", "text": "y"}}"#,
            ),
            (
                "analyze",
                br#"{"program": "suite:bs", "config": {"profile": "warp"}}"#,
            ),
            (
                "analyze",
                br#"{"program": "suite:bs", "config": {"runs": -1}}"#,
            ),
            ("teleport", b"{}"),
        ] {
            assert!(
                decode_request(op, body).is_err(),
                "{op} {:?} must be rejected",
                String::from_utf8_lossy(body)
            );
        }
    }
}
