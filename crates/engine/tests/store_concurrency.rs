//! Concurrency hammer for the sharded, single-flight [`ArtifactStore`].
//!
//! N threads issue mixed `get` / `put` / `get_or_compute` traffic over a
//! small overlapping key space and the test asserts the store's core
//! service-tier guarantees: each key's computation runs **exactly once**
//! (single-flight), every successful `get_or_compute` is exactly one hit
//! or one miss (`hits + misses` reconciles with the operation count), and
//! a byte-bounded tier never exceeds its budget while keeping its
//! accounting consistent under eviction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use rtpf_engine::{ArtifactKey, ArtifactStore, EngineError, Fingerprint, Stage, StoreConfig};

fn key(n: u64) -> ArtifactKey {
    ArtifactKey::new(Stage::Unit, &[Fingerprint(n, !n)])
}

#[test]
fn overlapping_get_or_compute_computes_each_key_exactly_once() {
    const THREADS: usize = 16;
    const KEYS: u64 = 7;
    const ROUNDS: u64 = 50;

    let store = Arc::new(ArtifactStore::in_memory());
    let computed: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let computed = Arc::clone(&computed);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                for round in 0..ROUNDS {
                    // Walk the key space in a thread-dependent order so
                    // every key sees concurrent callers.
                    let k = (round + t as u64) % KEYS;
                    let v = store
                        .get_or_compute(key(k), || {
                            computed[k as usize].fetch_add(1, Ordering::Relaxed);
                            Ok(k * 1000)
                        })
                        .expect("computes");
                    assert_eq!(*v, k * 1000);
                    ops += 1;
                    // Uncounted reads must not disturb the reconciliation.
                    if let Some(v) = store.get::<u64>(key(k)) {
                        assert_eq!(*v, k * 1000);
                    }
                }
                ops
            })
        })
        .collect();
    let total_ops: u64 = workers.into_iter().map(|w| w.join().expect("joins")).sum();

    for (k, count) in computed.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "key {k} must be computed exactly once (single-flight)"
        );
    }
    let m = store.metrics();
    assert_eq!(
        m.hits + m.misses,
        total_ops,
        "every successful get_or_compute is exactly one hit or miss"
    );
    assert_eq!(m.misses, KEYS, "one miss per distinct key");
    assert_eq!(m.hits, total_ops - KEYS);
    assert_eq!(m.entries, KEYS);
    assert_eq!(m.evictions, 0);
}

#[test]
fn coalesced_followers_share_one_slow_computation() {
    const WAITERS: usize = 8;
    let store = Arc::new(ArtifactStore::in_memory());
    let computed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(WAITERS));

    let workers: Vec<_> = (0..WAITERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let computed = Arc::clone(&computed);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let v = store
                    .get_or_compute(key(1), || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight open long enough that the other
                        // threads arrive while it is still in flight.
                        thread::sleep(std::time::Duration::from_millis(50));
                        Ok(77u64)
                    })
                    .expect("computes");
                assert_eq!(*v, 77);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("joins");
    }

    assert_eq!(computed.load(Ordering::Relaxed), 1, "one leader computes");
    let m = store.metrics();
    assert_eq!(m.misses, 1);
    assert_eq!(m.hits, WAITERS as u64 - 1);
    assert!(
        m.coalesced >= 1,
        "at least one caller must have parked on the in-flight leader"
    );
    assert!(m.coalesce_wait_ns > 0);
}

#[test]
fn leader_errors_propagate_to_coalesced_followers() {
    const WAITERS: usize = 6;
    let store = Arc::new(ArtifactStore::in_memory());
    let attempts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(WAITERS));

    let workers: Vec<_> = (0..WAITERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let attempts = Arc::clone(&attempts);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                store.get_or_compute::<u64>(key(2), || {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(std::time::Duration::from_millis(30));
                    Err(EngineError::Store {
                        path: "k2".into(),
                        error: "deliberate".into(),
                    })
                })
            })
        })
        .collect();
    let mut errors = 0;
    for w in workers {
        assert!(
            w.join().expect("joins").is_err(),
            "all callers see the error"
        );
        errors += 1;
    }
    assert_eq!(errors, WAITERS);
    // Failures are never cached: once the flights drain, callers retry.
    assert!(attempts.load(Ordering::Relaxed) >= 1);
    assert!(store.get::<u64>(key(2)).is_none());
    let v = store
        .get_or_compute(key(2), || Ok(11u64))
        .expect("recovers");
    assert_eq!(*v, 11);
}

#[test]
fn a_panicking_leader_does_not_wedge_followers() {
    let store = Arc::new(ArtifactStore::in_memory());
    let barrier = Arc::new(Barrier::new(2));

    let leader = {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = store.get_or_compute::<u64>(key(4), || {
                    barrier.wait();
                    thread::sleep(std::time::Duration::from_millis(30));
                    panic!("leader dies mid-compute");
                });
            }));
        })
    };
    let follower = {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            barrier.wait();
            // Arrives while the doomed leader is in flight; must retry as
            // a fresh leader rather than wait forever.
            let v = store
                .get_or_compute(key(4), || Ok(13u64))
                .expect("retries after poison");
            assert_eq!(*v, 13);
        })
    };
    leader.join().expect("leader thread joins");
    follower.join().expect("follower must not deadlock");
    assert_eq!(store.get::<u64>(key(4)).as_deref(), Some(&13));
}

#[test]
fn bounded_tier_stays_within_budget_under_mixed_hammer() {
    const THREADS: usize = 8;
    const KEYS: u64 = 64;
    const ROUNDS: u64 = 200;
    // Each u64 entry costs 8 + 96 overhead = 104 bytes; budget holds
    // only a fraction of the key space so eviction runs constantly.
    const BUDGET: u64 = 16 * 104;

    let store = Arc::new(ArtifactStore::with_config(StoreConfig {
        shards: 4,
        max_bytes: Some(BUDGET),
        disk_root: None,
    }));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut goc_ops = 0u64;
                for round in 0..ROUNDS {
                    let k = (round * 7 + t as u64 * 13) % KEYS;
                    match (round + t as u64) % 3 {
                        0 => {
                            store.put(key(k), k);
                        }
                        1 => {
                            if let Some(v) = store.get::<u64>(key(k)) {
                                assert_eq!(*v, k);
                            }
                        }
                        _ => {
                            let v = store.get_or_compute(key(k), || Ok(k)).expect("computes");
                            assert_eq!(*v, k);
                            goc_ops += 1;
                        }
                    }
                }
                goc_ops
            })
        })
        .collect();
    let goc_ops: u64 = workers.into_iter().map(|w| w.join().expect("joins")).sum();

    let m = store.metrics();
    assert!(
        m.bytes_in_use <= BUDGET,
        "tier over budget: {} > {BUDGET}",
        m.bytes_in_use
    );
    assert_eq!(
        m.bytes_in_use,
        m.entries * 104,
        "byte accounting reconciles with the entry count"
    );
    assert!(m.evictions > 0, "the hammer must have forced evictions");
    assert_eq!(m.evicted_bytes, m.evictions * 104);
    assert_eq!(
        m.hits + m.misses,
        goc_ops,
        "every get_or_compute call lands in exactly one of hits/misses"
    );
}

#[test]
fn concurrent_disk_writers_never_leave_torn_state() {
    const WRITERS: usize = 8;
    let dir = std::env::temp_dir().join(format!("rtpf-disk-hammer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ArtifactStore::with_disk(&dir));
    let barrier = Arc::new(Barrier::new(WRITERS));

    let workers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // All writers race the same name with *different* keys;
                // the lease serializes them.
                let k = key(w as u64);
                let payload = format!("payload-{w}");
                store
                    .disk_put("contended.csv", k, &payload)
                    .expect("writes");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("joins");
    }

    // Whichever writer landed last, the surviving pair must be
    // *consistent*: the sidecar names exactly the key whose payload the
    // artifact holds. (Identify the winner from the sidecar first — a
    // probe with the wrong key would trigger stale-cleanup and delete
    // the evidence.)
    let recorded = std::fs::read_to_string(dir.join("contended.csv.hash")).expect("sidecar");
    let winner = (0..WRITERS)
        .find(|&w| key(w as u64).content.hex() == recorded)
        .expect("sidecar names one writer's key");
    assert_eq!(
        store
            .disk_get("contended.csv", key(winner as u64))
            .as_deref(),
        Some(format!("payload-{winner}").as_str()),
        "the surviving artifact matches its sidecar's key"
    );
    let lock = dir.join("contended.csv.lock");
    assert!(!lock.exists(), "no lease residue after all writers drain");
    let _ = std::fs::remove_dir_all(&dir);
}
