//! Property tests for the content-addressed artifact store: fingerprints
//! must be stable (same inputs → same key, in this process and the next)
//! and a cache hit must return exactly what a fresh recompute would,
//! across sampled suite programs × Table 2 configurations.

use proptest::prelude::*;

use rtpf_cache::CacheConfig;
use rtpf_engine::{program_fingerprint, Engine, EngineConfig, Fingerprint};

/// Small suite programs — cheap enough to push through the full pipeline
/// under a debug build.
const SMALL: &[&str] = &["fibcall", "fac", "recursion", "sqrt", "icall", "ns", "bs"];

fn nth_config(ki: usize) -> CacheConfig {
    CacheConfig::paper_configs().swap_remove(ki).1
}

/// Anchors the hash *function* across builds and processes: if these
/// pinned values change, every on-disk artifact silently invalidates —
/// which is sound (the store recomputes) but deserves a deliberate
/// stage-version bump instead of an accidental hasher change.
#[test]
fn fingerprints_are_pinned_across_processes() {
    let b = rtpf_suite::by_name("bs").expect("known");
    let p = program_fingerprint(&b.program);
    assert_eq!(Fingerprint::from_hex(&p.hex()), Some(p));

    let cfg = EngineConfig::evaluation(nth_config(7)); // k8
    let all = [
        p,
        cfg.analysis_fingerprint(),
        cfg.sim_fingerprint(),
        cfg.optimize_fingerprint(),
        cfg.fingerprint(),
    ];
    // Recomputing from an independently constructed catalog/config must
    // reproduce the same values.
    let b2 = rtpf_suite::by_name("bs").expect("known");
    let cfg2 = EngineConfig::evaluation(nth_config(7));
    assert_eq!(program_fingerprint(&b2.program), all[0]);
    assert_eq!(cfg2.fingerprint(), all[4]);
    // Pinned golden values (computed once; see doc comment). Re-pinned
    // when the refinement knobs entered the analysis inputs, and again
    // when the hierarchy serialization (L2 presence byte) did: every
    // config fingerprint moved (L1-only included), with L1-only outputs
    // unchanged.
    assert_eq!(all[0].hex(), "48b4144fb19efa1faddf8890773c646d");
    assert_eq!(all[4].hex(), "23ba542589b6cd3988b15940931de4b7");
}

#[test]
fn table2_config_fingerprints_are_distinct() {
    let fps: Vec<Fingerprint> = CacheConfig::paper_configs()
        .into_iter()
        .map(|(_, c)| EngineConfig::evaluation(c).fingerprint())
        .collect();
    for i in 0..fps.len() {
        for j in 0..i {
            assert_ne!(fps[i], fps[j], "configs {j} and {i} collide");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn program_fingerprints_are_stable_across_catalog_loads(pi in 0usize..37) {
        let a = program_fingerprint(&rtpf_suite::catalog().swap_remove(pi).program);
        let b = program_fingerprint(&rtpf_suite::catalog().swap_remove(pi).program);
        prop_assert_eq!(a, b);
        prop_assert_eq!(Fingerprint::from_hex(&a.hex()), Some(a));
    }

    #[test]
    fn analysis_cache_hit_equals_fresh_recompute(
        si in 0usize..SMALL.len(),
        ki in 0usize..36,
    ) {
        let b = rtpf_suite::by_name(SMALL[si]).expect("known");
        let cfg = EngineConfig::evaluation(nth_config(ki));

        let warm = Engine::new(cfg.clone());
        let first = warm.analysis(&b.program).expect("analyzes");
        let hit = warm.analysis(&b.program).expect("analyzes");
        prop_assert!(std::sync::Arc::ptr_eq(&first, &hit), "second call must be a store hit");

        let fresh = Engine::new(cfg).analysis(&b.program).expect("analyzes");
        prop_assert_eq!(hit.tau_w(), fresh.tau_w());
        prop_assert_eq!(hit.classification_counts(), fresh.classification_counts());
        prop_assert_eq!(hit.wcet_accesses(), fresh.wcet_accesses());
        prop_assert_eq!(hit.wcet_misses(), fresh.wcet_misses());
    }

    #[test]
    fn unit_cache_hit_equals_fresh_recompute(
        si in 0usize..3,
        ki in 0usize..36,
    ) {
        let name = ["fibcall", "sqrt", "fac"][si];
        let b = rtpf_suite::by_name(name).expect("known");
        let cfg = EngineConfig::evaluation(nth_config(ki));

        let warm = Engine::new(cfg.clone());
        let first = warm.unit(name, "k", &b.program).expect("evaluates");
        let hit = warm.unit(name, "k", &b.program).expect("evaluates");
        prop_assert!(std::sync::Arc::ptr_eq(&first, &hit), "second call must be a store hit");

        let fresh = Engine::new(cfg).unit(name, "k", &b.program).expect("evaluates");
        prop_assert_eq!(&*hit, &*fresh);
    }
}
