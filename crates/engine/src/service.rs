//! The request-level service core: typed requests in, typed
//! JSON-serializable responses out.
//!
//! [`ServiceCore`] is the engine tier the `rtpfd` daemon (and any other
//! embedder) mounts on a worker pool: one shared [`ArtifactStore`] plus a
//! cache of [`Engine`]s keyed by configuration fingerprint, so every
//! worker serving the same configuration shares one engine and all
//! configurations share one artifact space. `handle` is synchronous and
//! thread-safe; concurrency comes from calling it on many threads — the
//! store's sharding and single-flight make that cheap and
//! exactly-once.
//!
//! Responses are rendered by `to_json` as a **pure function of the
//! underlying artifacts** (field order fixed, floats via Rust's
//! shortest-roundtrip `Display`), so a response served through the
//! daemon is byte-identical to one rendered from a library-path artifact
//! with the same fingerprint — the golden tests in `crates/serve` pin
//! exactly that.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use rtpf_audit::{DiagnosticSink, SoundnessOptions};
use rtpf_cache::CacheConfig;
use rtpf_isa::Program;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::fingerprint::{Fingerprint, FpHasher};
use crate::pipeline::{parse_text, Engine};
use crate::store::{ArtifactKey, ArtifactStore, Stage};

/// The operation a request asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceOp {
    /// WCET analysis: τ_w, classification counts, miss bound.
    Analyze,
    /// Verified optimization: prefetch insertion plus the independent
    /// Theorem 1 re-proof.
    Optimize,
    /// IR lints plus the abstract-vs-concrete soundness cross-check.
    Audit,
    /// Seeded trace simulation: ACET, miss rate, prefetch counters.
    Simulate,
}

impl ServiceOp {
    /// The operation's wire name (also its endpoint path segment).
    pub fn name(self) -> &'static str {
        match self {
            ServiceOp::Analyze => "analyze",
            ServiceOp::Optimize => "optimize",
            ServiceOp::Audit => "audit",
            ServiceOp::Simulate => "simulate",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ServiceOp> {
        match s {
            "analyze" => Some(ServiceOp::Analyze),
            "optimize" => Some(ServiceOp::Optimize),
            "audit" => Some(ServiceOp::Audit),
            "simulate" => Some(ServiceOp::Simulate),
            _ => None,
        }
    }
}

/// The program a request targets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramSource {
    /// A `suite:NAME` spec or a file path readable by the server.
    Spec(String),
    /// Inline program text, cached by content like a loaded file.
    Inline {
        /// Display name attached to diagnostics and responses.
        name: String,
        /// The `.rtpf` program text.
        text: String,
    },
}

/// The engine profile a request runs under (the same three profiles the
/// CLI and experiment front ends use).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ServiceProfile {
    /// Few-runs interactive defaults.
    #[default]
    Interactive,
    /// The paper-evaluation profile (worst-like behavior, pinned seed).
    Evaluation,
    /// The CLI sweep profile.
    Sweep,
}

impl ServiceProfile {
    /// The profile's wire name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceProfile::Interactive => "interactive",
            ServiceProfile::Evaluation => "evaluation",
            ServiceProfile::Sweep => "sweep",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ServiceProfile> {
        match s {
            "interactive" => Some(ServiceProfile::Interactive),
            "evaluation" => Some(ServiceProfile::Evaluation),
            "sweep" => Some(ServiceProfile::Sweep),
            _ => None,
        }
    }
}

/// Configuration half of a request: geometry specs plus a few overrides,
/// resolved to a full [`EngineConfig`] by [`resolve`](ConfigSpec::resolve).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigSpec {
    /// L1 geometry, `a:b:c[:policy]` (see [`CacheConfig::parse_spec`]).
    pub cache: String,
    /// Optional L2 geometry in the same format.
    pub l2: Option<String>,
    /// Engine profile.
    pub profile: ServiceProfile,
    /// Memory penalty override (cycles).
    pub penalty: Option<u64>,
    /// Simulation run-count override.
    pub runs: Option<u32>,
    /// Simulation seed override.
    pub seed: Option<u64>,
}

impl Default for ConfigSpec {
    fn default() -> ConfigSpec {
        ConfigSpec {
            cache: "2:16:512".to_string(),
            l2: None,
            profile: ServiceProfile::default(),
            penalty: None,
            runs: None,
            seed: None,
        }
    }
}

impl ConfigSpec {
    /// Resolves the spec to the engine configuration it describes.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadRequest`] for malformed geometry specs
    /// or an invalid hierarchy.
    pub fn resolve(&self) -> Result<EngineConfig, ServiceError> {
        let bad = |e: &dyn fmt::Display| ServiceError::BadRequest(e.to_string());
        let cache = CacheConfig::parse_spec(&self.cache).map_err(|e| bad(&e))?;
        let mut cfg = match self.profile {
            ServiceProfile::Interactive => EngineConfig::interactive(cache),
            ServiceProfile::Evaluation => EngineConfig::evaluation(cache),
            ServiceProfile::Sweep => EngineConfig::cli_sweep(cache),
        };
        if let Some(l2) = &self.l2 {
            let l2 = CacheConfig::parse_spec(l2).map_err(|e| bad(&e))?;
            cfg = cfg.with_l2(l2).map_err(|e| bad(&e))?;
        }
        if let Some(p) = self.penalty {
            cfg = cfg.with_penalty(p);
        }
        if let Some(r) = self.runs {
            cfg = cfg.with_runs(r);
        }
        if let Some(s) = self.seed {
            cfg = cfg.with_seed(s);
        }
        Ok(cfg)
    }
}

/// One complete service request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServiceRequest {
    /// What to compute.
    pub op: ServiceOp,
    /// Over which program.
    pub program: ProgramSource,
    /// Under which configuration.
    pub config: ConfigSpec,
}

/// Service-tier failure: either the request itself was malformed or the
/// pipeline failed.
#[derive(Clone, PartialEq, Debug)]
pub enum ServiceError {
    /// The request could not be interpreted (HTTP 400 territory).
    BadRequest(String),
    /// A pipeline stage failed (HTTP 500 territory).
    Engine(EngineError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> ServiceError {
        ServiceError::Engine(e)
    }
}

/// Response of an `analyze` request.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnalyzeResponse {
    /// WCET bound τ_w (cycles).
    pub tau_w: u64,
    /// Instruction-fetch misses on the WCET path.
    pub wcet_misses: u64,
    /// Instruction fetches on the WCET path.
    pub wcet_accesses: u64,
    /// References classified always-hit.
    pub always_hit: usize,
    /// References classified always-miss.
    pub always_miss: usize,
    /// References left unclassified.
    pub unclassified: usize,
}

/// Response of an `optimize` request (the verified optimization).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OptimizeResponse {
    /// Prefetches inserted.
    pub inserted: u32,
    /// Optimizer rounds run.
    pub rounds: u32,
    /// τ_w before optimization.
    pub wcet_before: u64,
    /// τ_w after optimization.
    pub wcet_after: u64,
    /// WCET-path misses before.
    pub misses_before: u64,
    /// WCET-path misses after.
    pub misses_after: u64,
    /// Candidates the optimizer examined.
    pub candidates_seen: u64,
    /// Candidates rejected by the incremental verifier.
    pub rejected_by_verifier: u64,
    /// Independent Theorem 1 re-proof: prefetch-equivalence.
    pub equivalent: bool,
    /// Independent Theorem 1 re-proof: τ_w non-increase.
    pub wcet_preserved: bool,
}

/// Response of an `audit` request.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AuditResponse {
    /// Deny-severity findings.
    pub denials: usize,
    /// Warn-severity findings.
    pub warnings: usize,
    /// Note-severity findings.
    pub notes: usize,
    /// References in the ACFG.
    pub refs_total: usize,
    /// References executed by at least one audit walk.
    pub refs_observed: usize,
    /// Genuinely unsound classifications found (must be 0).
    pub unsound: usize,
    /// Precision of the classification on observed paths.
    pub precision_score: f64,
}

/// Response of a `simulate` request.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimulateResponse {
    /// Simulation runs aggregated.
    pub runs: u32,
    /// Mean cycles per run (the ACET estimate).
    pub acet_cycles: f64,
    /// Instruction-fetch miss rate.
    pub miss_rate: f64,
    /// Mean instructions executed per run.
    pub instr_executed: f64,
    /// Prefetches issued across all runs.
    pub prefetches_issued: u64,
    /// Prefetches that were subsequently useful.
    pub prefetch_useful: u64,
}

/// The operation-specific payload of a [`ServiceResponse`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ResponseBody {
    /// `analyze` payload.
    Analyze(AnalyzeResponse),
    /// `optimize` payload.
    Optimize(OptimizeResponse),
    /// `audit` payload.
    Audit(AuditResponse),
    /// `simulate` payload.
    Simulate(SimulateResponse),
}

/// A complete service response: request echo plus the typed payload.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceResponse {
    /// The operation served.
    pub op: ServiceOp,
    /// Resolved program name.
    pub program: String,
    /// Full configuration fingerprint (hex) — the artifact space the
    /// response was served from.
    pub config_fingerprint: String,
    /// Operation payload.
    pub body: ResponseBody,
}

impl ServiceResponse {
    /// Deterministic JSON rendering: fixed field order, floats through
    /// Rust's shortest-roundtrip `Display`. Byte-identical across the
    /// daemon and library paths for the same artifacts.
    pub fn to_json(&self) -> String {
        let body = match &self.body {
            ResponseBody::Analyze(a) => format!(
                "{{\"tau_w\": {}, \"wcet_misses\": {}, \"wcet_accesses\": {}, \
                 \"always_hit\": {}, \"always_miss\": {}, \"unclassified\": {}}}",
                a.tau_w,
                a.wcet_misses,
                a.wcet_accesses,
                a.always_hit,
                a.always_miss,
                a.unclassified
            ),
            ResponseBody::Optimize(o) => format!(
                "{{\"inserted\": {}, \"rounds\": {}, \"wcet_before\": {}, \"wcet_after\": {}, \
                 \"misses_before\": {}, \"misses_after\": {}, \"candidates_seen\": {}, \
                 \"rejected_by_verifier\": {}, \"equivalent\": {}, \"wcet_preserved\": {}}}",
                o.inserted,
                o.rounds,
                o.wcet_before,
                o.wcet_after,
                o.misses_before,
                o.misses_after,
                o.candidates_seen,
                o.rejected_by_verifier,
                o.equivalent,
                o.wcet_preserved
            ),
            ResponseBody::Audit(a) => format!(
                "{{\"denials\": {}, \"warnings\": {}, \"notes\": {}, \"refs_total\": {}, \
                 \"refs_observed\": {}, \"unsound\": {}, \"precision_score\": {}}}",
                a.denials,
                a.warnings,
                a.notes,
                a.refs_total,
                a.refs_observed,
                a.unsound,
                a.precision_score
            ),
            ResponseBody::Simulate(s) => format!(
                "{{\"runs\": {}, \"acet_cycles\": {}, \"miss_rate\": {}, \
                 \"instr_executed\": {}, \"prefetches_issued\": {}, \"prefetch_useful\": {}}}",
                s.runs,
                s.acet_cycles,
                s.miss_rate,
                s.instr_executed,
                s.prefetches_issued,
                s.prefetch_useful
            ),
        };
        format!(
            "{{\"op\": \"{}\", \"program\": \"{}\", \"config\": \"{}\", \"result\": {body}}}",
            self.op.name(),
            json_escape(&self.program),
            self.config_fingerprint
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The shared, thread-safe engine tier behind the daemon: one artifact
/// store, one [`Engine`] per distinct configuration fingerprint.
#[derive(Debug)]
pub struct ServiceCore {
    store: Arc<ArtifactStore>,
    engines: Mutex<HashMap<Fingerprint, Arc<Engine>>>,
}

impl ServiceCore {
    /// A core over the given (usually shared) store.
    pub fn new(store: Arc<ArtifactStore>) -> ServiceCore {
        ServiceCore {
            store,
            engines: Mutex::new(HashMap::new()),
        }
    }

    /// The shared artifact store (the `/metrics` endpoint reads it).
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The engine serving `config`, created on first use. Engines are
    /// cached by full configuration fingerprint, so every request under
    /// the same configuration shares one engine (and all engines share
    /// the one store — keys embed the fingerprint and never collide).
    pub fn engine_for(&self, config: EngineConfig) -> Arc<Engine> {
        let fp = config.fingerprint();
        let mut engines = self.engines.lock().expect("engines lock");
        Arc::clone(
            engines
                .entry(fp)
                .or_insert_with(|| Arc::new(Engine::with_store(config, Arc::clone(&self.store)))),
        )
    }

    /// Number of distinct configurations currently materialized.
    pub fn engine_count(&self) -> usize {
        self.engines.lock().expect("engines lock").len()
    }

    fn load(
        &self,
        engine: &Engine,
        source: &ProgramSource,
    ) -> Result<(String, Arc<Program>), ServiceError> {
        match source {
            ProgramSource::Spec(spec) => Ok(engine.load(spec)?),
            ProgramSource::Inline { name, text } => {
                let mut h = FpHasher::new();
                h.write_str(text);
                let key = ArtifactKey::new(Stage::Parse, &[h.finish()]);
                let named = engine
                    .store()
                    .get_or_compute(key, || parse_text(name, text))?;
                Ok((named.0.clone(), Arc::new(named.1.clone())))
            }
        }
    }

    /// Serves one request. Synchronous and thread-safe; all caching is
    /// the store's business (memoized stages, single-flight
    /// deduplication).
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] for uninterpretable requests,
    /// [`ServiceError::Engine`] for pipeline failures.
    pub fn handle(&self, req: &ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let config = req.config.resolve()?;
        let config_fingerprint = config.fingerprint().hex();
        let engine = self.engine_for(config);
        let (program, p) = self.load(&engine, &req.program)?;
        let body = match req.op {
            ServiceOp::Analyze => {
                let a = engine.analysis(&p)?;
                let (always_hit, always_miss, unclassified) = a.classification_counts();
                ResponseBody::Analyze(AnalyzeResponse {
                    tau_w: a.tau_w(),
                    wcet_misses: a.wcet_misses(),
                    wcet_accesses: a.wcet_accesses(),
                    always_hit,
                    always_miss,
                    unclassified,
                })
            }
            ServiceOp::Optimize => {
                let (r, theorem) = engine.verified(&p)?;
                ResponseBody::Optimize(OptimizeResponse {
                    inserted: r.report.inserted,
                    rounds: r.report.rounds,
                    wcet_before: r.report.wcet_before,
                    wcet_after: r.report.wcet_after,
                    misses_before: r.report.misses_before,
                    misses_after: r.report.misses_after,
                    candidates_seen: r.report.candidates_seen,
                    rejected_by_verifier: r.report.rejected_by_verifier,
                    equivalent: theorem.equivalent,
                    wcet_preserved: theorem.wcet_preserved,
                })
            }
            ServiceOp::Audit => {
                let mut sink = DiagnosticSink::new(engine.config().severity().clone());
                engine.audit_ir(&p, &mut sink);
                // The service audit cross-checks the *cached* analysis
                // artifact (`independent = false`): its job is auditing
                // what the service is actually serving. The CLI's
                // store-bypassing audit remains the independent referee.
                let summary =
                    engine.audit_soundness(&p, &mut sink, &SoundnessOptions::default(), false)?;
                let (denials, warnings, notes) = sink.counts();
                ResponseBody::Audit(AuditResponse {
                    denials,
                    warnings,
                    notes,
                    refs_total: summary.refs_total,
                    refs_observed: summary.refs_observed,
                    unsound: summary.unsound,
                    precision_score: summary.precision_score,
                })
            }
            ServiceOp::Simulate => {
                let s = engine.simulated(&p)?;
                ResponseBody::Simulate(SimulateResponse {
                    runs: s.runs,
                    acet_cycles: s.acet_cycles(),
                    miss_rate: s.miss_rate(),
                    instr_executed: s.mean_instr_executed(),
                    prefetches_issued: s.prefetches_issued,
                    prefetch_useful: s.prefetch_useful,
                })
            }
        };
        Ok(ServiceResponse {
            op: req.op,
            program,
            config_fingerprint,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(op: ServiceOp) -> ServiceRequest {
        ServiceRequest {
            op,
            program: ProgramSource::Spec("suite:bs".to_string()),
            config: ConfigSpec::default(),
        }
    }

    #[test]
    fn responses_match_the_library_path_exactly() {
        let core = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));
        let resp = core.handle(&request(ServiceOp::Analyze)).expect("serves");

        let cfg = ConfigSpec::default().resolve().expect("resolves");
        let engine = Engine::new(cfg);
        let (_, p) = engine.load("suite:bs").expect("loads");
        let a = engine.analysis(&p).expect("analyzes");
        let ResponseBody::Analyze(got) = resp.body else {
            panic!("analyze response expected");
        };
        assert_eq!(got.tau_w, a.tau_w());
        assert_eq!(got.wcet_misses, a.wcet_misses());
        assert_eq!(resp.program, "bs");
        assert!(resp.to_json().contains("\"op\": \"analyze\""));
    }

    #[test]
    fn engines_are_cached_per_configuration() {
        let core = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));
        core.handle(&request(ServiceOp::Analyze)).expect("serves");
        core.handle(&request(ServiceOp::Simulate)).expect("serves");
        assert_eq!(core.engine_count(), 1, "same config, one engine");
        let mut other = request(ServiceOp::Analyze);
        other.config.cache = "4:16:2048".to_string();
        core.handle(&other).expect("serves");
        assert_eq!(core.engine_count(), 2);
    }

    #[test]
    fn warm_requests_are_fully_cache_hit() {
        let core = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));
        for op in [ServiceOp::Analyze, ServiceOp::Optimize, ServiceOp::Simulate] {
            core.handle(&request(op)).expect("serves");
        }
        let misses_cold = core.store().misses();
        assert!(misses_cold > 0);
        for op in [ServiceOp::Analyze, ServiceOp::Optimize, ServiceOp::Simulate] {
            core.handle(&request(op)).expect("serves");
        }
        assert_eq!(
            core.store().misses(),
            misses_cold,
            "warm pass must not recompute any stage"
        );
    }

    #[test]
    fn inline_programs_are_cached_by_content() {
        let core = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));
        let text = "program tiny\ncode 8\nloop 4 { code 6 }\ncode 2\n";
        let req = ServiceRequest {
            op: ServiceOp::Analyze,
            program: ProgramSource::Inline {
                name: "tiny".to_string(),
                text: text.to_string(),
            },
            config: ConfigSpec::default(),
        };
        let r1 = core.handle(&req).expect("serves");
        let misses = core.store().misses();
        let r2 = core.handle(&req).expect("serves");
        assert_eq!(r1, r2);
        assert_eq!(core.store().misses(), misses, "second pass fully cached");
    }

    #[test]
    fn bad_requests_are_rejected_without_engine_errors() {
        let core = ServiceCore::new(Arc::new(ArtifactStore::in_memory()));
        let mut req = request(ServiceOp::Analyze);
        req.config.cache = "3:16:512".to_string();
        assert!(matches!(
            core.handle(&req),
            Err(ServiceError::BadRequest(_))
        ));
        let mut req = request(ServiceOp::Analyze);
        req.config.l2 = Some("junk".to_string());
        assert!(matches!(
            core.handle(&req),
            Err(ServiceError::BadRequest(_))
        ));
        let mut req = request(ServiceOp::Analyze);
        req.program = ProgramSource::Spec("suite:doom".to_string());
        assert!(matches!(core.handle(&req), Err(ServiceError::Engine(_))));
    }
}
