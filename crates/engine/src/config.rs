//! [`EngineConfig`]: the single source of truth for every knob the
//! pipeline consumes.
//!
//! Before the engine existed, each front end hand-rolled its own copies of
//! the cache geometry, [`MemTiming`], [`SimConfig`], and
//! [`OptimizeParams`] plumbing — and drifted. Now exactly one type owns
//! them; front ends pick a *profile* constructor and override the few
//! flags their user exposed:
//!
//! * [`EngineConfig::interactive`] — the `rtpf` CLI defaults;
//! * [`EngineConfig::cli_sweep`] — `rtpf sweep` / `rtpf audit --optimize`
//!   (few rounds, small single-verification budget);
//! * [`EngineConfig::evaluation`] — the paper-evaluation harness profile
//!   (WCET-like traces, adaptive optimizer budget, Condition-3 gating).
//!
//! The derived views ([`timing`](EngineConfig::timing),
//! [`sim_config`](EngineConfig::sim_config),
//! [`optimize_params`](EngineConfig::optimize_params)) are the only
//! sanctioned way to materialize those structs outside this crate.

use rtpf_audit::SeverityConfig;
pub use rtpf_cache::ConfigError;
use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming, RefineConfig};
use rtpf_energy::{EnergyModel, Technology};
use rtpf_sim::{BranchBehavior, SimConfig};

use rtpf_core::OptimizeParams;

use crate::fingerprint::{Fingerprint, FpHasher};

/// How the optimizer budget is chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptimizePolicy {
    /// Fixed budget, independent of program size.
    Fixed {
        /// Maximum optimize–verify rounds.
        max_rounds: u32,
        /// One-at-a-time verification attempts per round.
        max_singles_per_round: u32,
        /// Hard cap on inserted prefetches.
        max_prefetches: u32,
    },
    /// The evaluation harness policy: the verification budget adapts to
    /// program size, because each one-at-a-time verification costs a full
    /// WCET analysis (which dominates on the giant generated programs).
    Adaptive,
}

/// Every knob of the analysis pipeline, in one place.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    cache: CacheConfig,
    /// Optional unified L2 behind the L1; validated against the L1 by
    /// [`with_l2`](EngineConfig::with_l2), the only way to set it.
    l2: Option<CacheConfig>,
    /// Explicit miss-penalty override; `None` derives timing from the
    /// 45 nm energy model, like every profile does by default.
    penalty: Option<u64>,
    behavior: BranchBehavior,
    sim_seed: u64,
    sim_runs: u32,
    max_fetches: u64,
    policy: OptimizePolicy,
    check_effectiveness: bool,
    /// Exact per-set FIFO/PLRU refinement behind the classify fixpoint
    /// (DESIGN.md §12). On by default in every profile; a no-op under LRU,
    /// so LRU artifacts are bit-identical with it on or off.
    refine: RefineConfig,
    /// Result-invariant execution strategy knobs (identical outputs per
    /// `OptimizeParams` docs), excluded from the artifact fingerprint.
    incremental: bool,
    verify_workers: usize,
    /// Worker threads for the classify fixpoint (SCC-DAG scheduling) and
    /// the per-set refinement fan-out; `0` = one per core. Result-invariant
    /// like `verify_workers` (DESIGN.md §13), so excluded from the
    /// fingerprint.
    threads: usize,
    severity: SeverityConfig,
}

impl EngineConfig {
    /// The only sanctioned route from raw `(assoc, block, capacity)`
    /// numbers to a [`CacheConfig`] outside the cache crate itself.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid geometries.
    pub fn geometry(assoc: u32, block: u32, capacity: u32) -> Result<CacheConfig, ConfigError> {
        CacheConfig::new(assoc, block, capacity)
    }

    /// The interactive CLI profile (`rtpf analyze/optimize/simulate`).
    pub fn interactive(cache: CacheConfig) -> EngineConfig {
        EngineConfig {
            cache,
            l2: None,
            penalty: None,
            behavior: BranchBehavior::default(),
            sim_seed: 0xC0FF_EE00,
            sim_runs: 3,
            max_fetches: 8_000_000,
            policy: OptimizePolicy::Fixed {
                max_rounds: 25,
                max_singles_per_round: 48,
                max_prefetches: 512,
            },
            check_effectiveness: true,
            refine: RefineConfig::on(),
            incremental: true,
            verify_workers: 0,
            threads: 0,
            severity: SeverityConfig::new(),
        }
    }

    /// The `rtpf sweep` / `rtpf audit --optimize` profile: a small fixed
    /// budget so all 36 configurations stay interactive.
    pub fn cli_sweep(cache: CacheConfig) -> EngineConfig {
        EngineConfig {
            policy: OptimizePolicy::Fixed {
                max_rounds: 4,
                max_singles_per_round: 8,
                max_prefetches: 512,
            },
            ..EngineConfig::interactive(cache)
        }
    }

    /// The paper-evaluation profile used by the 37 × 36 sweep: WCET-like
    /// traces (the Mälardalen programs are single-path by design), a fixed
    /// evaluation seed, and the adaptive optimizer budget.
    pub fn evaluation(cache: CacheConfig) -> EngineConfig {
        EngineConfig {
            behavior: BranchBehavior::WorstLike,
            sim_seed: 0x5EED_2013,
            sim_runs: 2,
            max_fetches: 4_000_000,
            policy: OptimizePolicy::Adaptive,
            ..EngineConfig::interactive(cache)
        }
    }

    /// Overrides the miss penalty (otherwise derived from the energy
    /// model).
    pub fn with_penalty(mut self, penalty: u64) -> EngineConfig {
        self.penalty = Some(penalty);
        self
    }

    /// Adds a unified L2 behind the L1, validating the hierarchy (the L2
    /// must be strictly larger and share the L1's block size).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError::HierarchyInvalid`] for non-monotone
    /// hierarchies.
    pub fn with_l2(mut self, l2: CacheConfig) -> Result<EngineConfig, ConfigError> {
        HierarchyConfig::two_level(self.cache, l2)?;
        self.l2 = Some(l2);
        Ok(self)
    }

    /// The L2 geometry, when configured.
    pub fn l2(&self) -> Option<&CacheConfig> {
        self.l2.as_ref()
    }

    /// The full cache hierarchy every stage analyses, optimizes,
    /// simulates, and prices.
    pub fn hierarchy(&self) -> HierarchyConfig {
        match self.l2 {
            Some(l2) => HierarchyConfig::two_level(self.cache, l2).expect("validated by with_l2"),
            None => HierarchyConfig::l1_only(self.cache),
        }
    }

    /// Overrides the simulated branch behaviour.
    pub fn with_behavior(mut self, behavior: BranchBehavior) -> EngineConfig {
        self.behavior = behavior;
        self
    }

    /// Overrides the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> EngineConfig {
        self.sim_seed = seed;
        self
    }

    /// Overrides the number of averaged simulation runs.
    pub fn with_runs(mut self, runs: u32) -> EngineConfig {
        self.sim_runs = runs;
        self
    }

    /// Overrides the maximum optimize–verify rounds (switching an
    /// [`Adaptive`](OptimizePolicy::Adaptive) policy to fixed budgets is a
    /// deliberate non-goal: round overrides are a CLI affordance).
    pub fn with_rounds(mut self, rounds: u32) -> EngineConfig {
        if let OptimizePolicy::Fixed { max_rounds, .. } = &mut self.policy {
            *max_rounds = rounds;
        }
        self
    }

    /// Overrides the one-at-a-time verification budget per round (fixed
    /// policy only, like [`with_rounds`](EngineConfig::with_rounds)).
    pub fn with_singles(mut self, singles: u32) -> EngineConfig {
        if let OptimizePolicy::Fixed {
            max_singles_per_round,
            ..
        } = &mut self.policy
        {
            *max_singles_per_round = singles;
        }
        self
    }

    /// Disables the effectiveness condition (Definition 10) — the WCET-only
    /// ablation of prior work.
    pub fn with_check_effectiveness(mut self, check: bool) -> EngineConfig {
        self.check_effectiveness = check;
        self
    }

    /// Forces from-scratch (non-incremental) candidate verification.
    pub fn with_incremental(mut self, incremental: bool) -> EngineConfig {
        self.incremental = incremental;
        self
    }

    /// Sets the verification worker count (`0` = one per core).
    pub fn with_verify_workers(mut self, workers: usize) -> EngineConfig {
        self.verify_workers = workers;
        self
    }

    /// Sets the analysis worker-thread count (`0` = one per core). Threads
    /// drive the classify fixpoint's SCC-DAG scheduler and the per-set
    /// refinement fan-out; outputs are byte-identical at any count
    /// (DESIGN.md §13).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// The analysis worker-thread count with `0` resolved to one per core.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Sets the audit severity policy.
    pub fn with_severity(mut self, severity: SeverityConfig) -> EngineConfig {
        self.severity = severity;
        self
    }

    /// Sets the exact FIFO/PLRU refinement stage configuration.
    pub fn with_refine(mut self, refine: RefineConfig) -> EngineConfig {
        self.refine = refine;
        self
    }

    /// The exact FIFO/PLRU refinement stage configuration.
    pub fn refine(&self) -> RefineConfig {
        self.refine
    }

    /// Cache geometry.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// The same knobs over a different geometry — how the Figure-5
    /// shrunk-capacity probes derive their sub-engine configuration, so
    /// probe artifacts are keyed (and cached) exactly like first-class
    /// stages. Any explicit `penalty` override is dropped: probe timing
    /// has always been derived from the energy model of the *shrunken*
    /// geometry, never inherited from the full-size one. Any configured L2
    /// is kept: the probes shrink the L1 while the rest of the hierarchy
    /// stays fixed (shrinking keeps the hierarchy monotone).
    pub(crate) fn with_cache(mut self, cache: CacheConfig) -> EngineConfig {
        self.cache = cache;
        self.penalty = None;
        self
    }

    /// The audit severity policy.
    pub fn severity(&self) -> &SeverityConfig {
        &self.severity
    }

    /// Memory timing: the explicit penalty override when present,
    /// otherwise the 45 nm energy model's timing for this hierarchy. With
    /// an L2 configured, the L2 service time is always derived from the
    /// energy model (there is no override knob for it).
    pub fn timing(&self) -> MemTiming {
        let derived = EnergyModel::for_hierarchy(&self.hierarchy(), Technology::Nm45).timing();
        match self.penalty {
            Some(p) => {
                let t = MemTiming::with_miss_penalty(p);
                match derived.l2_hit_cycles {
                    Some(l2) => t.with_l2_hit(l2),
                    None => t,
                }
            }
            None => derived,
        }
    }

    /// Simulation parameters.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            behavior: self.behavior,
            seed: self.sim_seed,
            runs: self.sim_runs,
            max_fetches: self.max_fetches,
        }
    }

    /// Optimizer parameters for a program of `instr_count` instructions
    /// (the count only matters under the adaptive policy).
    pub fn optimize_params(&self, instr_count: usize) -> OptimizeParams {
        let base = OptimizeParams {
            timing: self.timing(),
            check_effectiveness: self.check_effectiveness,
            incremental: self.incremental,
            verify_workers: self.verify_workers,
            refine: self.refine,
            ..OptimizeParams::default()
        };
        match self.policy {
            OptimizePolicy::Fixed {
                max_rounds,
                max_singles_per_round,
                max_prefetches,
            } => OptimizeParams {
                max_rounds,
                max_singles_per_round,
                max_prefetches,
                ..base
            },
            OptimizePolicy::Adaptive => {
                let big = instr_count >= 1000;
                OptimizeParams {
                    max_rounds: if big { 8 } else { 20 },
                    max_prefetches: 256,
                    max_singles_per_round: if big { 12 } else { 48 },
                    ..base
                }
            }
        }
    }

    fn write_analysis_inputs(&self, h: &mut FpHasher) {
        h.write_u32(self.cache.assoc());
        h.write_u32(self.cache.block_bytes());
        h.write_u32(self.cache.capacity_bytes());
        // The replacement policy shapes every classification and concrete
        // walk, so it is part of the analysis fingerprint (and therefore
        // of every downstream stage key): the store can never serve an
        // LRU artifact for a FIFO/PLRU request or vice versa.
        h.write_u8(self.cache.policy().tag());
        let t = self.timing();
        h.write_u64(t.hit_cycles);
        h.write_u64(t.miss_cycles);
        h.write_u64(t.prefetch_latency);
        // The refinement stage rewrites classifications, so both knobs are
        // analysis inputs. Hashed unconditionally (even for LRU, where the
        // stage is a no-op) to keep the key derivation policy-oblivious;
        // the Analyze stage version bump already re-keyed every artifact.
        h.write_u8(u8::from(self.refine.enabled));
        h.write_u32(self.refine.max_states);
        // The hierarchy below the L1: per-level classifications, τ_w, and
        // the concrete walks all change with it, so its presence, geometry,
        // policy, and service time key every analysis-derived artifact.
        match &self.l2 {
            None => h.write_u8(0),
            Some(l2) => {
                h.write_u8(1);
                h.write_u32(l2.assoc());
                h.write_u32(l2.block_bytes());
                h.write_u32(l2.capacity_bytes());
                h.write_u8(l2.policy().tag());
                h.write_u64(t.l2_hit_cycles.unwrap_or(0));
            }
        }
    }

    fn write_sim_inputs(&self, h: &mut FpHasher) {
        h.write_u8(match self.behavior {
            BranchBehavior::WorstLike => 0,
            BranchBehavior::Random => 1,
        });
        h.write_u64(self.sim_seed);
        h.write_u32(self.sim_runs);
        h.write_u64(self.max_fetches);
    }

    fn write_optimize_inputs(&self, h: &mut FpHasher) {
        match self.policy {
            OptimizePolicy::Fixed {
                max_rounds,
                max_singles_per_round,
                max_prefetches,
            } => {
                h.write_u8(0);
                h.write_u32(max_rounds);
                h.write_u32(max_singles_per_round);
                h.write_u32(max_prefetches);
            }
            OptimizePolicy::Adaptive => h.write_u8(1),
        }
        h.write_u8(u8::from(self.check_effectiveness));
    }

    /// Content hash of the knobs an analysis artifact depends on: cache
    /// geometry and memory timing. Simulation and optimizer knobs are
    /// deliberately absent so e.g. changing the simulation seed does not
    /// invalidate cached analyses.
    pub fn analysis_fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        self.write_analysis_inputs(&mut h);
        h.finish()
    }

    /// Content hash of the knobs a simulation artifact depends on.
    pub fn sim_fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        self.write_analysis_inputs(&mut h);
        self.write_sim_inputs(&mut h);
        h.finish()
    }

    /// Content hash of the knobs an optimization artifact depends on.
    pub fn optimize_fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        self.write_analysis_inputs(&mut h);
        self.write_optimize_inputs(&mut h);
        h.finish()
    }

    /// Content hash of everything that can influence a computed artifact.
    ///
    /// `incremental`, `verify_workers`, and `threads` are excluded: all are
    /// proven result-invariant (see `OptimizeParams` and DESIGN.md §13), so keying on them would
    /// only invalidate caches spuriously. The severity policy is excluded
    /// because it shapes *reporting* of diagnostics, which are never
    /// cached.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        self.write_analysis_inputs(&mut h);
        self.write_sim_inputs(&mut h);
        self.write_optimize_inputs(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k8() -> CacheConfig {
        EngineConfig::geometry(2, 16, 512).expect("valid")
    }

    #[test]
    fn profiles_reproduce_the_legacy_knobs() {
        let cli = EngineConfig::interactive(k8());
        let sim = cli.sim_config();
        assert_eq!(sim.seed, 0xC0FF_EE00);
        assert_eq!(sim.runs, 3);
        assert_eq!(sim.max_fetches, 8_000_000);
        assert_eq!(cli.optimize_params(100).max_rounds, 25);

        let eval = EngineConfig::evaluation(k8());
        let sim = eval.sim_config();
        assert_eq!(sim.behavior, BranchBehavior::WorstLike);
        assert_eq!(sim.seed, 0x5EED_2013);
        assert_eq!(sim.runs, 2);
        let small = eval.optimize_params(999);
        assert_eq!(
            (
                small.max_rounds,
                small.max_singles_per_round,
                small.max_prefetches
            ),
            (20, 48, 256)
        );
        let big = eval.optimize_params(1000);
        assert_eq!((big.max_rounds, big.max_singles_per_round), (8, 12));

        let sweep = EngineConfig::cli_sweep(k8());
        let p = sweep.optimize_params(10_000);
        assert_eq!((p.max_rounds, p.max_singles_per_round), (4, 8));
    }

    #[test]
    fn every_stage_fingerprint_separates_policies() {
        use rtpf_cache::ReplacementPolicy;
        // The policy must move the analysis fingerprint (the root of every
        // stage key), so a warm store for one policy can never answer
        // another policy's request.
        let lru = EngineConfig::evaluation(k8());
        for p in [ReplacementPolicy::Fifo, ReplacementPolicy::Plru] {
            let other = EngineConfig::evaluation(k8().with_policy(p).expect("valid"));
            assert_ne!(lru.analysis_fingerprint(), other.analysis_fingerprint());
            assert_ne!(lru.sim_fingerprint(), other.sim_fingerprint());
            assert_ne!(lru.optimize_fingerprint(), other.optimize_fingerprint());
            assert_ne!(lru.fingerprint(), other.fingerprint());
        }
        let fifo =
            EngineConfig::evaluation(k8().with_policy(ReplacementPolicy::Fifo).expect("valid"));
        let plru =
            EngineConfig::evaluation(k8().with_policy(ReplacementPolicy::Plru).expect("valid"));
        assert_ne!(fifo.fingerprint(), plru.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_result_invariant_knobs() {
        let base = EngineConfig::evaluation(k8());
        let same = base
            .clone()
            .with_incremental(false)
            .with_verify_workers(1)
            .with_threads(3);
        assert_eq!(base.fingerprint(), same.fingerprint());
        assert!(same.resolved_threads() == 3);
        assert!(base.resolved_threads() >= 1);
        let diff = base.clone().with_seed(1);
        assert_ne!(base.fingerprint(), diff.fingerprint());
        let diff = base.clone().with_penalty(99);
        assert_ne!(base.fingerprint(), diff.fingerprint());
        let diff = base.clone().with_check_effectiveness(false);
        assert_ne!(base.fingerprint(), diff.fingerprint());
    }

    #[test]
    fn l2_moves_every_stage_fingerprint() {
        let l2 = EngineConfig::geometry(4, 16, 8192).expect("valid");
        let base = EngineConfig::evaluation(k8());
        let two = base.clone().with_l2(l2).expect("valid hierarchy");
        assert_eq!(two.l2(), Some(&l2));
        assert!(two.hierarchy().is_multi_level());
        assert!(!base.hierarchy().is_multi_level());
        assert_ne!(base.analysis_fingerprint(), two.analysis_fingerprint());
        assert_ne!(base.sim_fingerprint(), two.sim_fingerprint());
        assert_ne!(base.optimize_fingerprint(), two.optimize_fingerprint());
        assert_ne!(base.fingerprint(), two.fingerprint());
        // Different L2 geometries key differently too.
        let bigger = base
            .clone()
            .with_l2(EngineConfig::geometry(4, 16, 16384).expect("valid"))
            .expect("valid hierarchy");
        assert_ne!(two.analysis_fingerprint(), bigger.analysis_fingerprint());
        // The derived timing gains the L2 service time.
        assert!(two.timing().l2_hit_cycles.is_some());
        assert_eq!(base.timing().l2_hit_cycles, None);
        // A penalty override keeps the derived L2 service time.
        let pen = two.clone().with_penalty(40);
        assert!(pen.timing().l2_hit_cycles.is_some());
        assert_eq!(pen.timing().miss_cycles, 41);
    }

    #[test]
    fn with_l2_rejects_non_monotone_hierarchies() {
        use rtpf_cache::HierarchyViolation;
        let base = EngineConfig::evaluation(k8());
        let same = EngineConfig::geometry(2, 16, 512).expect("valid");
        assert!(matches!(
            base.clone().with_l2(same),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::CapacityNotLarger
            ))
        ));
        let other_block = EngineConfig::geometry(2, 32, 8192).expect("valid");
        assert!(matches!(
            base.clone().with_l2(other_block),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::BlockMismatch
            ))
        ));
    }

    #[test]
    fn refine_knobs_move_the_analysis_fingerprint() {
        use rtpf_cache::RefineConfig;
        let base = EngineConfig::evaluation(k8());
        assert_eq!(base.refine(), RefineConfig::on());
        let off = base.clone().with_refine(RefineConfig::off());
        assert_ne!(base.analysis_fingerprint(), off.analysis_fingerprint());
        assert_ne!(base.fingerprint(), off.fingerprint());
        let bigger = base.clone().with_refine(RefineConfig {
            enabled: true,
            max_states: 256,
        });
        assert_ne!(base.analysis_fingerprint(), bigger.analysis_fingerprint());
    }
}
