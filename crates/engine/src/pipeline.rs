//! The [`Engine`]: typed pipeline stages over the artifact store.
//!
//! Each stage is a pure function from artifact values to an artifact
//! value; the engine's job is routing — compute the stage's key, consult
//! the [`ArtifactStore`], run the stage on a miss, record its wall-clock
//! in the shared [`AnalysisProfile`]. One `Engine` wraps one
//! [`EngineConfig`]; engines for different configurations can share a
//! store (keys embed the configuration fingerprint, so they never
//! collide).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use rtpf_audit::{DiagnosticSink, SoundnessOptions, SoundnessSummary, TransformSummary};
use rtpf_core::{check_hierarchy, OptimizeResult, Optimizer, TheoremReport};
use rtpf_energy::{EnergyBreakdown, EnergyModel, Technology};
use rtpf_isa::Program;
use rtpf_sim::{SimResult, Simulator};
use rtpf_wcet::{AnalysisProfile, WcetAnalysis};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::fingerprint::{program_fingerprint, Fingerprint, FpHasher};
use crate::store::{ArtifactKey, ArtifactStore, Stage};
use crate::unit::UnitResult;

/// An optimization that passed the paper's Condition 3 gate (or the
/// original program if it did not).
#[derive(Clone, Debug)]
pub struct Gated {
    /// The optimization result actually shipped.
    pub opt: Arc<OptimizeResult>,
    /// Simulation of the original program.
    pub sim_orig: Arc<SimResult>,
    /// Simulation of the shipped program.
    pub sim_opt: Arc<SimResult>,
}

/// The staged analysis pipeline for one configuration.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    store: Arc<ArtifactStore>,
    profile: Mutex<AnalysisProfile>,
}

impl Engine {
    /// An engine with a fresh private in-memory store.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_store(config, Arc::new(ArtifactStore::in_memory()))
    }

    /// An engine attached to a shared store.
    pub fn with_store(config: EngineConfig, store: Arc<ArtifactStore>) -> Engine {
        Engine {
            config,
            store,
            profile: Mutex::new(AnalysisProfile::default()),
        }
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The attached artifact store.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Aggregated per-phase/per-stage profile of every stage this engine
    /// executed, with the store's hit/miss counters folded in.
    pub fn profile(&self) -> AnalysisProfile {
        let mut p = *self.profile.lock().expect("profile lock");
        p.store_hits = self.store.hits();
        p.store_misses = self.store.misses();
        p
    }

    fn absorb(&self, p: &AnalysisProfile) {
        self.profile.lock().expect("profile lock").add(p);
    }

    /// Parse stage: loads `path` or `suite:NAME` into a validated program.
    ///
    /// File programs are cached by text content; suite programs are
    /// compiled skeletons and load directly.
    ///
    /// # Errors
    ///
    /// Fails when the file is unreadable/malformed or the suite name
    /// unknown.
    pub fn load(&self, spec: &str) -> Result<(String, Arc<Program>), EngineError> {
        if spec.starts_with("suite:") {
            return load_program(spec).map(|(name, p)| (name, Arc::new(p)));
        }
        let src = std::fs::read_to_string(spec).map_err(|e| EngineError::Read {
            path: spec.to_string(),
            error: e.to_string(),
        })?;
        let mut h = FpHasher::new();
        h.write_str(&src);
        let key = ArtifactKey::new(Stage::Parse, &[h.finish()]);
        let named: Arc<(String, Program)> =
            self.store.get_or_compute(key, || parse_text(spec, &src))?;
        Ok((named.0.clone(), Arc::new(named.1.clone())))
    }

    /// Stage keys take the *program* fingerprint precomputed: public stage
    /// entries hash the program exactly once and thread the fingerprint
    /// through every internal `_with_fp` hop, so a unit no longer re-walks
    /// the program per artifact lookup it makes.
    fn key_for(&self, stage: Stage, cfg_fp: Fingerprint, pfp: Fingerprint) -> ArtifactKey {
        ArtifactKey::new(stage, &[cfg_fp, pfp])
    }

    /// Analyze stage: CFG/loops/layout, VIVU, classification, and IPET in
    /// one artifact (a full [`WcetAnalysis`]).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Analysis`].
    pub fn analysis(&self, p: &Program) -> Result<Arc<WcetAnalysis>, EngineError> {
        let key = self.key_for(
            Stage::Analyze,
            self.config.analysis_fingerprint(),
            program_fingerprint(p),
        );
        self.store.get_or_compute(key, || self.compute_analysis(p))
    }

    /// Analyze stage with cache bypass: always recomputes, never consults
    /// or populates the store. The audit passes use this so their verdict
    /// is independent of potentially poisoned artifacts.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Analysis`].
    pub fn analysis_independent(&self, p: &Program) -> Result<WcetAnalysis, EngineError> {
        self.compute_analysis(p)
    }

    /// Analyze stage under an explicit (anchored) layout. The layout is
    /// part of the artifact key — the same program at different addresses
    /// is a different analysis. Used by the Figure-5 shrunk-capacity
    /// probes, which must analyse the optimized binary at the optimizer's
    /// anchored addresses rather than a fresh `Layout::of`.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Analysis`].
    fn analysis_at_layout(
        &self,
        p: &Program,
        pfp: Fingerprint,
        layout: &rtpf_isa::Layout,
    ) -> Result<Arc<WcetAnalysis>, EngineError> {
        let mut h = FpHasher::new();
        h.write_fp(self.config.analysis_fingerprint());
        h.write_fp(pfp);
        h.write_u64(layout.base());
        for i in 0..layout.len() {
            h.write_u64(layout.addr(rtpf_isa::InstrId(i as u32)));
        }
        let key = ArtifactKey::new(Stage::Analyze, &[h.finish()]);
        self.store.get_or_compute(key, || {
            let a = WcetAnalysis::analyze_hierarchy(
                p,
                layout.clone(),
                &self.config.hierarchy(),
                &self.config.timing(),
                self.config.refine(),
                self.config.resolved_threads(),
            )
            .map_err(EngineError::Analysis)?;
            self.absorb(a.profile());
            Ok(a)
        })
    }

    fn compute_analysis(&self, p: &Program) -> Result<WcetAnalysis, EngineError> {
        let a = WcetAnalysis::analyze_hierarchy(
            p,
            rtpf_isa::Layout::of(p),
            &self.config.hierarchy(),
            &self.config.timing(),
            self.config.refine(),
            self.config.resolved_threads(),
        )
        .map_err(EngineError::Analysis)?;
        self.absorb(a.profile());
        Ok(a)
    }

    /// Optimize stage: WCET-safe prefetch insertion (Theorem 1 by
    /// construction).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Optimize`].
    pub fn optimized(&self, p: &Program) -> Result<Arc<OptimizeResult>, EngineError> {
        self.optimize_artifact(p, program_fingerprint(p), None)
    }

    /// Optimize stage with a round override (`Some(0)` is the no-op
    /// optimization the Condition-3 gate falls back to).
    fn optimize_artifact(
        &self,
        p: &Program,
        pfp: Fingerprint,
        rounds_override: Option<u32>,
    ) -> Result<Arc<OptimizeResult>, EngineError> {
        let mut h = FpHasher::new();
        h.write_fp(self.config.optimize_fingerprint());
        h.write_fp(pfp);
        match rounds_override {
            None => h.write_u8(0),
            Some(r) => {
                h.write_u8(1);
                h.write_u32(r);
            }
        }
        let key = ArtifactKey::new(Stage::Optimize, &[h.finish()]);
        self.store.get_or_compute(key, || {
            let t0 = Instant::now();
            let mut params = self.config.optimize_params(p.instr_count());
            if let Some(r) = rounds_override {
                params.max_rounds = r;
            }
            let r = Optimizer::new_hierarchy(self.config.hierarchy(), params)
                .run(p)
                .map_err(EngineError::Optimize)?;
            let mut prof = r.report.profile;
            prof.optimize_ns = t0.elapsed().as_nanos() as u64;
            self.absorb(&prof);
            Ok(r)
        })
    }

    /// Verify stage: the independent Theorem 1 re-proof over the optimize
    /// artifact ([`check`] re-analyses both programs from scratch).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Optimize`] / [`EngineError::Verify`].
    pub fn verified(
        &self,
        p: &Program,
    ) -> Result<(Arc<OptimizeResult>, TheoremReport), EngineError> {
        let pfp = program_fingerprint(p);
        let r = self.optimize_artifact(p, pfp, None)?;
        let key = self.key_for(Stage::Verify, self.config.optimize_fingerprint(), pfp);
        let report = self.store.get_or_compute(key, || {
            let t0 = Instant::now();
            let rep = check_hierarchy(
                p,
                &r.program,
                r.analysis_after.layout().clone(),
                &self.config.hierarchy(),
                &self.config.timing(),
            )
            .map_err(EngineError::Verify)?;
            self.absorb(&AnalysisProfile {
                verify_ns: t0.elapsed().as_nanos() as u64,
                ..AnalysisProfile::default()
            });
            Ok(rep)
        })?;
        Ok((r, *report))
    }

    /// Simulate stage: seeded trace simulation under this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::Simulate`].
    pub fn simulated(&self, p: &Program) -> Result<Arc<SimResult>, EngineError> {
        self.simulated_with_fp(p, program_fingerprint(p))
    }

    fn simulated_with_fp(
        &self,
        p: &Program,
        pfp: Fingerprint,
    ) -> Result<Arc<SimResult>, EngineError> {
        let key = self.key_for(Stage::Simulate, self.config.sim_fingerprint(), pfp);
        self.store.get_or_compute(key, || {
            let t0 = Instant::now();
            let run = Simulator::new_hierarchy(
                self.config.hierarchy(),
                self.config.timing(),
                self.config.sim_config(),
            )
            .run(p)
            .map_err(EngineError::Simulate)?;
            self.absorb(&AnalysisProfile {
                simulate_ns: t0.elapsed().as_nanos() as u64,
                ..AnalysisProfile::default()
            });
            Ok(run)
        })
    }

    /// Energy stage: memory-system energy of a simulated run for both
    /// technology nodes `(45 nm, 32 nm)`.
    pub fn energies(&self, run: &SimResult) -> [EnergyBreakdown; 2] {
        let t0 = Instant::now();
        let stats = run.mean_stats();
        let hierarchy = self.config.hierarchy();
        let out = [
            EnergyModel::for_hierarchy(&hierarchy, Technology::Nm45).energy_of(&stats),
            EnergyModel::for_hierarchy(&hierarchy, Technology::Nm32).energy_of(&stats),
        ];
        self.absorb(&AnalysisProfile {
            energy_ns: t0.elapsed().as_nanos() as u64,
            ..AnalysisProfile::default()
        });
        out
    }

    /// Optimizes under the paper's three conditions. The optimizer
    /// enforces Condition 1 (WCET non-increase) and Condition 2 (miss
    /// reduction on the WCET path); this stage enforces **Condition 3**
    /// (the measured ACET — and with it the static-dominated energy — must
    /// not increase): when no improvement is observed, the original
    /// (prefetch-equivalent) binary ships unchanged.
    ///
    /// # Errors
    ///
    /// Propagates optimize/simulate stage failures.
    pub fn gated_optimize(&self, p: &Program) -> Result<Gated, EngineError> {
        self.gated_optimize_with_fp(p, program_fingerprint(p))
    }

    fn gated_optimize_with_fp(&self, p: &Program, pfp: Fingerprint) -> Result<Gated, EngineError> {
        let e45 = EnergyModel::for_hierarchy(&self.config.hierarchy(), Technology::Nm45);
        let energy = |run: &SimResult| e45.energy_of(&run.mean_stats()).total_nj();
        let mut opt = self.optimize_artifact(p, pfp, None)?;
        let sim_orig = self.simulated_with_fp(p, pfp)?;
        // The optimized binary is a different program; its fingerprint is
        // hashed once here (not per stage the gate consults).
        let mut sim_opt =
            self.simulated_with_fp(&opt.program, program_fingerprint(&opt.program))?;
        let regressed = sim_opt.acet_cycles() > sim_orig.acet_cycles() * 1.001
            || energy(&sim_opt) > energy(&sim_orig) * 1.0005;
        if regressed {
            opt = self.optimize_artifact(p, pfp, Some(0))?;
            sim_opt = Arc::clone(&sim_orig);
        }
        Ok(Gated {
            opt,
            sim_orig,
            sim_opt,
        })
    }

    /// Unit stage: one `(program, configuration)` evaluation row — gated
    /// optimization, both simulations, both technologies' energies, and
    /// the Figure-5 half/quarter-capacity probes.
    ///
    /// # Errors
    ///
    /// Propagates optimize/simulate stage failures.
    pub fn unit(&self, name: &str, k: &str, p: &Program) -> Result<Arc<UnitResult>, EngineError> {
        let pfp = program_fingerprint(p);
        let mut h = FpHasher::new();
        h.write_fp(self.config.fingerprint());
        h.write_fp(pfp);
        h.write_str(name);
        h.write_str(k);
        let key = ArtifactKey::new(Stage::Unit, &[h.finish()]);
        self.store
            .get_or_compute(key, || self.compute_unit(name, k, p, pfp))
    }

    fn compute_unit(
        &self,
        name: &str,
        k: &str,
        p: &Program,
        pfp: Fingerprint,
    ) -> Result<UnitResult, EngineError> {
        let config = *self.config.cache();
        let Gated {
            opt,
            sim_orig,
            sim_opt,
        } = self.gated_optimize_with_fp(p, pfp)?;

        let e_orig = self.energies(&sim_orig).map(|e| e.total_nj());
        let e_opt = self.energies(&sim_opt).map(|e| e.total_nj());

        // Figure 5: the optimized binary on half / quarter capacity. Each
        // probe runs through a sub-engine for the shrunken geometry that
        // shares this engine's store, so its analysis and simulation are
        // first-class, content-addressed artifacts (keyed by the shrunken
        // configuration and — for the analysis — the optimizer's anchored
        // layout) instead of raw recomputations.
        let opt_fp = program_fingerprint(&opt.program);
        let shrunk = |divisor: u32| -> Option<[f64; 4]> {
            let small = config.shrink(divisor).ok()?;
            let sub = Engine::with_store(
                self.config.clone().with_cache(small),
                Arc::clone(&self.store),
            );
            // Probe energies price the shrunken L1 under the unchanged
            // rest of the hierarchy.
            let sub_hierarchy = sub.config.hierarchy();
            let m45 = EnergyModel::for_hierarchy(&sub_hierarchy, Technology::Nm45);
            let m32 = EnergyModel::for_hierarchy(&sub_hierarchy, Technology::Nm32);
            let wcet = sub
                .analysis_at_layout(&opt.program, opt_fp, opt.analysis_after.layout())
                .ok()?
                .tau_w();
            let sim = sub.simulated_with_fp(&opt.program, opt_fp).ok()?;
            let probe_profile = *sub.profile.lock().expect("probe profile lock");
            self.absorb(&probe_profile);
            Some([
                wcet as f64,
                sim.acet_cycles(),
                m45.energy_of(&sim.mean_stats()).total_nj(),
                m32.energy_of(&sim.mean_stats()).total_nj(),
            ])
        };

        // The probe stage wall-clock (both divisors, hits and misses
        // alike) lands in `probe_ns` — a stage counter overlapping the
        // phase fields the sub-engines already absorbed above.
        let t_probe = Instant::now();
        let half = shrunk(2);
        let quarter = shrunk(4);
        self.absorb(&AnalysisProfile {
            probe_ns: t_probe.elapsed().as_nanos() as u64,
            ..AnalysisProfile::default()
        });

        Ok(UnitResult {
            program: name.to_string(),
            k: k.to_string(),
            assoc: config.assoc(),
            block: config.block_bytes(),
            capacity: config.capacity_bytes(),
            inserted: opt.report.inserted,
            wcet_orig: opt.report.wcet_before,
            wcet_opt: opt.report.wcet_after,
            acet_orig: sim_orig.acet_cycles(),
            acet_opt: sim_opt.acet_cycles(),
            missrate_orig: sim_orig.miss_rate(),
            missrate_opt: sim_opt.miss_rate(),
            instr_orig: sim_orig.mean_instr_executed(),
            instr_opt: sim_opt.mean_instr_executed(),
            energy_orig: e_orig,
            energy_opt: e_opt,
            half,
            quarter,
        })
    }

    /// IR lint pass over the program (total: runs on invalid programs).
    pub fn audit_ir(&self, p: &Program, sink: &mut DiagnosticSink) {
        rtpf_audit::audit_ir(p, sink);
    }

    /// Soundness audit: the abstract classification cross-checked against
    /// concrete walks. With `independent` the analysis artifact is
    /// force-recomputed with cache bypass, so a poisoned store cannot
    /// influence the verdict; otherwise the cached artifact is pulled.
    ///
    /// # Errors
    ///
    /// Fails when the program cannot be analysed at all.
    pub fn audit_soundness(
        &self,
        p: &Program,
        sink: &mut DiagnosticSink,
        opts: &SoundnessOptions,
        independent: bool,
    ) -> Result<SoundnessSummary, EngineError> {
        let summary = if independent {
            let a = self.analysis_independent(p)?;
            rtpf_audit::audit_soundness_artifact(p, &a, sink, opts)
        } else {
            let a = self.analysis(p)?;
            rtpf_audit::audit_soundness_artifact(p, &a, sink, opts)
        };
        Ok(summary)
    }

    /// Transform audit: re-derives the paper's joint criterion and
    /// Theorem 1 over the engine's optimize artifact.
    ///
    /// # Errors
    ///
    /// Propagates optimize failures and analysis failures inside the
    /// audit.
    pub fn audit_transform(
        &self,
        p: &Program,
        sink: &mut DiagnosticSink,
    ) -> Result<TransformSummary, EngineError> {
        let r = self.optimized(p)?;
        rtpf_audit::audit_transform(p, &r.program, &r.analysis_after, sink)
            .map_err(EngineError::Analysis)
    }
}

pub(crate) fn parse_text(path: &str, src: &str) -> Result<(String, Program), EngineError> {
    let (name, shape) = rtpf_isa::text::parse(src).map_err(|e| EngineError::Parse {
        path: path.to_string(),
        error: e.to_string(),
    })?;
    let p = shape.compile(name.clone());
    Ok((name, p))
}

/// The free-function form of [`Engine::load`] for callers without an
/// engine (no Parse-artifact caching).
///
/// # Errors
///
/// Fails when the file is unreadable/malformed or the suite name unknown.
pub fn load_program(spec: &str) -> Result<(String, Program), EngineError> {
    if let Some(name) = spec.strip_prefix("suite:") {
        let b =
            rtpf_suite::by_name(name).ok_or_else(|| EngineError::UnknownSuite(name.to_string()))?;
        return Ok((b.name.to_string(), b.program));
    }
    let src = std::fs::read_to_string(spec).map_err(|e| EngineError::Read {
        path: spec.to_string(),
        error: e.to_string(),
    })?;
    parse_text(spec, &src)
}

/// Key of the full-sweep on-disk artifact: content hash over every
/// `(program, configuration)` pair of the grid, in order.
///
/// Grids repeat the same handful of programs across many configurations,
/// so program fingerprints are memoized by reference identity — the hash
/// input is unchanged, each distinct program is just walked once instead
/// of once per configuration.
pub fn sweep_key<'a>(
    units: impl IntoIterator<Item = (&'a Program, &'a EngineConfig)>,
) -> ArtifactKey {
    let mut memo: Vec<(*const Program, Fingerprint)> = Vec::new();
    let mut h = FpHasher::new();
    h.write_u32(Stage::Unit.version());
    for (p, cfg) in units {
        let key = std::ptr::from_ref(p);
        let pfp = match memo.iter().find(|(q, _)| *q == key) {
            Some(&(_, fp)) => fp,
            None => {
                let fp = program_fingerprint(p);
                memo.push((key, fp));
                fp
            }
        };
        h.write_fp(pfp);
        h.write_fp(cfg.fingerprint());
    }
    ArtifactKey::new(Stage::Sweep, &[h.finish()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let cache = EngineConfig::geometry(2, 16, 512).expect("valid");
        Engine::new(EngineConfig::interactive(cache))
    }

    fn program() -> Program {
        rtpf_suite::by_name("bs").expect("suite program").program
    }

    #[test]
    fn analysis_artifact_is_cached_and_identical() {
        let e = engine();
        let p = program();
        let a1 = e.analysis(&p).expect("analyzes");
        let a2 = e.analysis(&p).expect("analyzes");
        assert!(Arc::ptr_eq(&a1, &a2), "second lookup served from store");
        assert_eq!(e.store().hits(), 1);
        let fresh = e.analysis_independent(&p).expect("analyzes");
        assert_eq!(fresh.tau_w(), a1.tau_w());
        assert_eq!(e.store().hits(), 1, "bypass does not touch the store");
    }

    #[test]
    fn verify_stage_proves_theorem_one() {
        let e = engine();
        let p = program();
        let (r, theorem) = e.verified(&p).expect("verifies");
        assert!(theorem.equivalent);
        assert!(theorem.wcet_preserved);
        assert_eq!(theorem.tau_after, r.report.wcet_after);
    }

    #[test]
    fn stage_profile_accumulates_wall_clock() {
        let e = engine();
        let p = program();
        let run = e.simulated(&p).expect("simulates");
        let _ = e.energies(&run);
        let _ = e.optimized(&p).expect("optimizes");
        let prof = e.profile();
        assert!(prof.simulate_ns > 0);
        assert!(prof.optimize_ns > 0);
        assert_eq!(prof.store_misses, e.store().misses());
    }

    #[test]
    fn two_level_engine_runs_the_whole_pipeline() {
        let l1 = EngineConfig::geometry(2, 16, 512).expect("valid");
        let l2 = EngineConfig::geometry(4, 16, 8192).expect("valid");
        let cfg = EngineConfig::interactive(l1)
            .with_l2(l2)
            .expect("valid hierarchy");
        let single = Engine::new(EngineConfig::interactive(l1));
        let e = Engine::new(cfg);
        let p = program();

        let a = e.analysis(&p).expect("analyzes");
        let a1 = single.analysis(&p).expect("analyzes");
        assert!(a.tau_w() <= a1.tau_w(), "an L2 can only absorb misses");

        let (r, theorem) = e.verified(&p).expect("verifies");
        assert!(theorem.holds(), "{theorem:?}");
        assert!(r.report.wcet_after <= r.report.wcet_before);

        let run = e.simulated(&p).expect("simulates");
        assert_eq!(
            run.stats.l2_accesses,
            run.stats.misses + run.prefetches_issued
        );
        let [e45, e32] = e.energies(&run);
        assert!(e45.l2_static_nj > 0.0);
        assert!(e32.l2_static_nj > 0.0);

        // The single-level engine's artifacts never collide with the
        // two-level ones in a shared store.
        let run1 = single.simulated(&p).expect("simulates");
        assert!(run1.stats.l2_accesses == 0);
        let [s45, _] = single.energies(&run1);
        assert_eq!(s45.l2_static_nj, 0.0);

        let unit = e.unit("bs", "k9", &p).expect("unit");
        assert!(unit.half.is_some(), "half-capacity probe runs under L2");
    }

    #[test]
    fn load_rejects_unknown_suite_and_missing_files() {
        let e = engine();
        assert!(matches!(
            e.load("suite:doom"),
            Err(EngineError::UnknownSuite(_))
        ));
        assert!(matches!(
            e.load("/definitely/not/here.rtpf"),
            Err(EngineError::Read { .. })
        ));
        let (name, p) = e.load("suite:bs").expect("loads");
        assert_eq!(name, "bs");
        assert!(p.instr_count() > 0);
    }
}
