//! Structured engine errors.
//!
//! Every stage failure carries the typed source error plus which stage
//! raised it, so front ends can match on structure instead of scraping
//! formatted strings. The `Display` renderings intentionally reproduce the
//! messages the CLI printed before the engine existed.

use std::error::Error;
use std::fmt;

use rtpf_cache::ConfigError;
use rtpf_isa::IsaError;
use rtpf_sim::SimError;
use rtpf_wcet::AnalysisError;

/// A failure in the engine pipeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// Invalid cache geometry.
    Geometry(ConfigError),
    /// A program file could not be read.
    Read {
        /// The path (or spec) that failed.
        path: String,
        /// The I/O error rendering.
        error: String,
    },
    /// A program file could not be parsed.
    Parse {
        /// The path that failed.
        path: String,
        /// The parser's rendering of the defect.
        error: String,
    },
    /// `suite:NAME` named an unknown benchmark.
    UnknownSuite(String),
    /// The WCET analysis stage failed.
    Analysis(AnalysisError),
    /// The optimize stage failed.
    Optimize(AnalysisError),
    /// The verify stage (Theorem 1 re-proof) failed to run.
    Verify(AnalysisError),
    /// The simulate stage failed.
    Simulate(SimError),
    /// A structural CFG defect outside an analysis run.
    Isa(IsaError),
    /// An on-disk artifact could not be written.
    Store {
        /// The artifact path.
        path: String,
        /// The I/O error rendering.
        error: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Geometry(e) => write!(f, "invalid cache geometry: {e}"),
            EngineError::Read { path, error } => write!(f, "cannot read {path}: {error}"),
            EngineError::Parse { path, error } => write!(f, "{path}: {error}"),
            EngineError::UnknownSuite(name) => {
                write!(f, "unknown suite program {name} (try `rtpf suite`)")
            }
            EngineError::Analysis(e) => write!(f, "analysis failed: {e}"),
            EngineError::Optimize(e) => write!(f, "optimization failed: {e}"),
            EngineError::Verify(e) => write!(f, "verification failed: {e}"),
            EngineError::Simulate(e) => write!(f, "simulation failed: {e}"),
            EngineError::Isa(e) => write!(f, "{e}"),
            EngineError::Store { path, error } => {
                write!(f, "cannot persist artifact {path}: {error}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Geometry(e) => Some(e),
            EngineError::Analysis(e) | EngineError::Optimize(e) | EngineError::Verify(e) => Some(e),
            EngineError::Simulate(e) => Some(e),
            EngineError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Geometry(e)
    }
}

impl From<IsaError> for EngineError {
    fn from(e: IsaError) -> Self {
        EngineError::Isa(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Simulate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_preserve_legacy_cli_messages() {
        let e = EngineError::UnknownSuite("doom".into());
        assert_eq!(
            e.to_string(),
            "unknown suite program doom (try `rtpf suite`)"
        );
        let e = EngineError::Read {
            path: "x.rtpf".into(),
            error: "gone".into(),
        };
        assert_eq!(e.to_string(), "cannot read x.rtpf: gone");
        let e = EngineError::Analysis(AnalysisError::Ipet("cyclic".into()));
        assert!(e.to_string().starts_with("analysis failed:"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
