//! Stable 128-bit content hashing for artifact keys.
//!
//! The artifact store keys every cached value by *content*: the program,
//! the [`EngineConfig`](crate::EngineConfig), and the stage version all
//! feed a [`Fingerprint`]. The hash must be stable across processes and
//! runs (it is persisted next to on-disk artifacts), so it is built from
//! two independent multiply-xor streams with fixed constants rather than
//! `std`'s randomized `DefaultHasher`.

use rtpf_isa::{EdgeKind, InstrKind, Program};

/// A 128-bit content hash, rendered as 32 hex characters on disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// Lowercase hex rendering (32 characters), the on-disk format.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses the [`hex`](Fingerprint::hex) rendering back.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let a = u64::from_str_radix(&s[..16], 16).ok()?;
        let b = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint(a, b))
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental fingerprint builder: FNV-1a and a Murmur-style stream,
/// mixed per byte. Not cryptographic — collision resistance only needs to
/// beat accidental reuse of a stale artifact.
#[derive(Clone, Debug)]
pub struct FpHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const MUR_OFFSET: u64 = 0x6c62_272e_07bb_0142;
const MUR_PRIME: u64 = 0xc6a4_a793_5bd1_e995;

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher::new()
    }
}

impl FpHasher {
    /// Fresh hasher with the fixed offset bases.
    pub fn new() -> FpHasher {
        FpHasher {
            a: FNV_OFFSET,
            b: MUR_OFFSET,
        }
    }

    /// Absorbs one byte into both streams.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(v))
            .wrapping_mul(MUR_PRIME)
            .rotate_left(17);
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &v in bytes {
            self.write_u8(v);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (prefixing prevents ambiguity
    /// between `"ab" + "c"` and `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a previously computed fingerprint.
    pub fn write_fp(&mut self, fp: Fingerprint) {
        self.write_u64(fp.0);
        self.write_u64(fp.1);
    }

    /// Final avalanche and extraction.
    pub fn finish(&self) -> Fingerprint {
        let mix = |mut x: u64| {
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            x ^ (x >> 33)
        };
        Fingerprint(mix(self.a ^ self.b.rotate_left(32)), mix(self.b ^ self.a))
    }
}

/// Content hash of a program: name, CFG shape, instruction stream, loop
/// bounds, and layout order — everything the analyses can observe. Two
/// structurally identical programs hash identically; any edit (an extra
/// prefetch, a changed bound, a reordered block) changes the hash.
///
/// The program is serialized into one contiguous byte buffer which is
/// absorbed in a single [`FpHasher::write_bytes`] pass. Both hash streams
/// are byte-serial, so this produces the same fingerprint as the old
/// field-at-a-time writes — persisted artifact keys stay valid — while
/// keeping the serializer a straight-line memory walk.
pub fn program_fingerprint(p: &Program) -> Fingerprint {
    // Rough upper bound: ~9 bytes per instruction plus block/edge framing.
    let mut buf = Vec::with_capacity(64 + 16 * p.instr_count());
    write_program_bytes(p, &mut buf);
    let mut h = FpHasher::new();
    h.write_bytes(&buf);
    h.finish()
}

/// Serializes everything [`program_fingerprint`] observes into `buf`,
/// using the same framing as the incremental `FpHasher` writers
/// (`write_str` = u64 length prefix + bytes, integers little-endian).
fn write_program_bytes(p: &Program, buf: &mut Vec<u8>) {
    let push_u64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
    let push_u32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
    push_u64(buf, p.name().len() as u64);
    buf.extend_from_slice(p.name().as_bytes());
    push_u64(buf, p.entry().index() as u64);
    push_u64(buf, p.block_count() as u64);
    for b in p.block_ids() {
        let block = p.block(b);
        push_u64(buf, b.index() as u64);
        push_u64(buf, block.len() as u64);
        for &i in block.instrs() {
            match p.instr(i).kind {
                InstrKind::Compute(tag) => {
                    buf.push(0);
                    push_u32(buf, u32::from(tag));
                }
                InstrKind::Branch => buf.push(1),
                InstrKind::Call => buf.push(2),
                InstrKind::Return => buf.push(3),
                InstrKind::Prefetch { target } => {
                    buf.push(4);
                    push_u32(buf, target.0);
                }
            }
        }
        for &(succ, kind) in p.succs(b) {
            push_u64(buf, succ.index() as u64);
            buf.push(match kind {
                EdgeKind::Fallthrough => 0,
                EdgeKind::Taken => 1,
            });
        }
    }
    for (&header, &bound) in p.loop_bounds() {
        push_u64(buf, header.index() as u64);
        push_u32(buf, bound);
    }
    for &b in p.layout_order() {
        push_u64(buf, b.index() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn demo() -> Program {
        Shape::seq([
            Shape::code(10),
            Shape::loop_(5, Shape::if_else(2, Shape::code(6), Shape::code(4))),
        ])
        .compile("demo")
    }

    #[test]
    fn batched_buffer_matches_incremental_field_writes() {
        // The pre-batching implementation hashed field by field. Replay
        // those writes here and check the contiguous-buffer path produces
        // the identical fingerprint, so persisted artifact keys survive.
        let p = demo();
        let mut h = FpHasher::new();
        h.write_str(p.name());
        h.write_u64(p.entry().index() as u64);
        h.write_u64(p.block_count() as u64);
        for b in p.block_ids() {
            let block = p.block(b);
            h.write_u64(b.index() as u64);
            h.write_u64(block.len() as u64);
            for &i in block.instrs() {
                match p.instr(i).kind {
                    InstrKind::Compute(tag) => {
                        h.write_u8(0);
                        h.write_u32(u32::from(tag));
                    }
                    InstrKind::Branch => h.write_u8(1),
                    InstrKind::Call => h.write_u8(2),
                    InstrKind::Return => h.write_u8(3),
                    InstrKind::Prefetch { target } => {
                        h.write_u8(4);
                        h.write_u32(target.0);
                    }
                }
            }
            for &(succ, kind) in p.succs(b) {
                h.write_u64(succ.index() as u64);
                h.write_u8(match kind {
                    EdgeKind::Fallthrough => 0,
                    EdgeKind::Taken => 1,
                });
            }
        }
        for (&header, &bound) in p.loop_bounds() {
            h.write_u64(header.index() as u64);
            h.write_u32(bound);
        }
        for &b in p.layout_order() {
            h.write_u64(b.index() as u64);
        }
        assert_eq!(h.finish(), program_fingerprint(&p));
    }

    #[test]
    fn fingerprint_is_stable_and_roundtrips_hex() {
        let p = demo();
        let f1 = program_fingerprint(&p);
        let f2 = program_fingerprint(&p);
        assert_eq!(f1, f2);
        assert_eq!(Fingerprint::from_hex(&f1.hex()), Some(f1));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }

    #[test]
    fn structural_edits_change_the_fingerprint() {
        let p = demo();
        let base = program_fingerprint(&p);
        let renamed = Shape::seq([
            Shape::code(10),
            Shape::loop_(5, Shape::if_else(2, Shape::code(6), Shape::code(4))),
        ])
        .compile("demo2");
        assert_ne!(base, program_fingerprint(&renamed));
        let rebound = Shape::seq([
            Shape::code(10),
            Shape::loop_(6, Shape::if_else(2, Shape::code(6), Shape::code(4))),
        ])
        .compile("demo");
        assert_ne!(base, program_fingerprint(&rebound));
        let resized = Shape::seq([
            Shape::code(11),
            Shape::loop_(5, Shape::if_else(2, Shape::code(6), Shape::code(4))),
        ])
        .compile("demo");
        assert_ne!(base, program_fingerprint(&resized));
    }
}
