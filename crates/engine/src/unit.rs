//! The evaluation *unit* artifact and its CSV serialization.
//!
//! One unit is the paper's `(program, cache configuration)` evaluation
//! cell: optimize under the three conditions, simulate original and
//! optimized binaries, derive both technologies' energies, and probe the
//! optimized binary on half/quarter capacity (Figure 5). The CSV schema is
//! the on-disk serialization of the sweep artifact; its column order is
//! stable because figure binaries and checked-in results depend on it.

use rtpf_cache::CacheConfig;

/// Metrics of one `(program, configuration)` unit (both technologies).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitResult {
    /// Benchmark name (Table 1).
    pub program: String,
    /// Configuration id (`k1`..`k36`, Table 2).
    pub k: String,
    /// Cache geometry.
    pub assoc: u32,
    /// Block size in bytes.
    pub block: u32,
    /// Capacity in bytes.
    pub capacity: u32,
    /// Inserted prefetches.
    pub inserted: u32,
    /// `τ_w` of the original / optimized program.
    pub wcet_orig: u64,
    /// `τ_w` of the optimized program.
    pub wcet_opt: u64,
    /// Simulated ACET cycles (memory contribution), original / optimized.
    pub acet_orig: f64,
    /// Simulated ACET cycles of the optimized program.
    pub acet_opt: f64,
    /// Simulated miss rate of the original program.
    pub missrate_orig: f64,
    /// Simulated miss rate of the optimized program (prefetch-satisfied
    /// fetches count as hits, as in the paper's Figure 4).
    pub missrate_opt: f64,
    /// Executed instructions per run, original / optimized (Figure 8).
    pub instr_orig: f64,
    /// Executed instructions per run of the optimized program.
    pub instr_opt: f64,
    /// Memory-system energy (nJ), per technology, original then optimized.
    pub energy_orig: [f64; 2],
    /// Energy of the optimized program per technology.
    pub energy_opt: [f64; 2],
    /// Figure 5: optimized program run on capacity/2 — `(wcet, acet,
    /// energy45, energy32)`; `None` when the shrunken geometry is invalid.
    pub half: Option<[f64; 4]>,
    /// Figure 5: optimized program run on capacity/4.
    pub quarter: Option<[f64; 4]>,
}

impl UnitResult {
    /// Energy ratio optimized/original for a technology index
    /// (0 = 45 nm, 1 = 32 nm).
    pub fn energy_ratio(&self, tech: usize) -> f64 {
        self.energy_opt[tech] / self.energy_orig[tech]
    }

    /// ACET ratio optimized/original.
    pub fn acet_ratio(&self) -> f64 {
        self.acet_opt / self.acet_orig
    }

    /// WCET ratio optimized/original (Inequation 12).
    pub fn wcet_ratio(&self) -> f64 {
        self.wcet_opt as f64 / self.wcet_orig as f64
    }

    /// Executed-instruction ratio (Figure 8).
    pub fn instr_ratio(&self) -> f64 {
        self.instr_opt / self.instr_orig
    }

    /// Reconstructs the cache geometry of this row.
    ///
    /// # Errors
    ///
    /// Propagates [`rtpf_cache::ConfigError`] for rows holding an invalid
    /// geometry (possible only for hand-edited CSVs).
    pub fn config(&self) -> Result<CacheConfig, rtpf_cache::ConfigError> {
        CacheConfig::new(self.assoc, self.block, self.capacity)
    }
}

/// Column order of the CSV serialization.
pub const COLUMNS: &str = "program,k,assoc,block,capacity,inserted,wcet_orig,wcet_opt,\
acet_orig,acet_opt,missrate_orig,missrate_opt,instr_orig,instr_opt,\
e45_orig,e45_opt,e32_orig,e32_opt,\
half_wcet,half_acet,half_e45,half_e32,quarter_wcet,quarter_acet,quarter_e45,quarter_e32";

/// Serializes results (stable column order, `nan` for absent Figure-5
/// entries).
pub fn to_csv(rows: &[UnitResult]) -> String {
    let mut s = String::from(COLUMNS);
    s.push('\n');
    for r in rows {
        let opt4 = |o: &Option<[f64; 4]>| -> String {
            match o {
                Some(v) => format!("{},{},{},{}", v[0], v[1], v[2], v[3]),
                None => "nan,nan,nan,nan".to_string(),
            }
        };
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.program,
            r.k,
            r.assoc,
            r.block,
            r.capacity,
            r.inserted,
            r.wcet_orig,
            r.wcet_opt,
            r.acet_orig,
            r.acet_opt,
            r.missrate_orig,
            r.missrate_opt,
            r.instr_orig,
            r.instr_opt,
            r.energy_orig[0],
            r.energy_opt[0],
            r.energy_orig[1],
            r.energy_opt[1],
            opt4(&r.half),
            opt4(&r.quarter),
        ));
    }
    s
}

/// Parses the CSV serialization back.
///
/// # Errors
///
/// Returns a description of the first malformed row instead of panicking;
/// callers treat that as a missing artifact and recompute.
pub fn parse_csv(text: &str) -> Result<Vec<UnitResult>, String> {
    fn num<T: std::str::FromStr>(f: &[&str], i: usize, ln: usize) -> Result<T, String> {
        f[i].parse()
            .map_err(|_| format!("line {ln}: field {} ({:?}) is not a number", i + 1, f[i]))
    }
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let ln = idx + 1;
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 26 {
            return Err(format!("line {ln}: expected 26 fields, got {}", f.len()));
        }
        let opt4 = |i: usize| -> Result<Option<[f64; 4]>, String> {
            let mut v = [0.0f64; 4];
            for (j, slot) in v.iter_mut().enumerate() {
                *slot = num(&f, i + j, ln)?;
            }
            Ok(if v[0].is_nan() { None } else { Some(v) })
        };
        rows.push(UnitResult {
            program: f[0].to_string(),
            k: f[1].to_string(),
            assoc: num(&f, 2, ln)?,
            block: num(&f, 3, ln)?,
            capacity: num(&f, 4, ln)?,
            inserted: num(&f, 5, ln)?,
            wcet_orig: num(&f, 6, ln)?,
            wcet_opt: num(&f, 7, ln)?,
            acet_orig: num(&f, 8, ln)?,
            acet_opt: num(&f, 9, ln)?,
            missrate_orig: num(&f, 10, ln)?,
            missrate_opt: num(&f, 11, ln)?,
            instr_orig: num(&f, 12, ln)?,
            instr_opt: num(&f, 13, ln)?,
            energy_orig: [num(&f, 14, ln)?, num(&f, 16, ln)?],
            energy_opt: [num(&f, 15, ln)?, num(&f, 17, ln)?],
            half: opt4(18)?,
            quarter: opt4(22)?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> UnitResult {
        UnitResult {
            program: "bs".into(),
            k: "k1".into(),
            assoc: 1,
            block: 16,
            capacity: 256,
            inserted: 2,
            wcet_orig: 100,
            wcet_opt: 90,
            acet_orig: 50.5,
            acet_opt: 48.25,
            missrate_orig: 0.25,
            missrate_opt: 0.125,
            instr_orig: 300.0,
            instr_opt: 302.0,
            energy_orig: [10.0, 9.0],
            energy_opt: [8.0, 7.5],
            half: Some([1.0, 2.0, 3.0, 4.0]),
            quarter: None,
        }
    }

    #[test]
    fn csv_roundtrip_preserves_rows() {
        let r = row();
        let text = to_csv(std::slice::from_ref(&r));
        let back = parse_csv(&text).expect("roundtrip parses");
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn parse_csv_reports_malformed_rows_instead_of_panicking() {
        let short = format!("{COLUMNS}\nbs,k1,2,16\n");
        assert!(parse_csv(&short)
            .unwrap_err()
            .contains("expected 26 fields"));
        let bad = format!(
            "{COLUMNS}\nbs,k1,2,16,256,oops,1,1,1,1,0,0,1,1,1,1,1,1,\
             nan,nan,nan,nan,nan,nan,nan,nan\n"
        );
        assert!(parse_csv(&bad).unwrap_err().contains("not a number"));
        assert!(parse_csv(&format!("{COLUMNS}\n")).unwrap().is_empty());
    }
}
