//! The content-addressed artifact store.
//!
//! Every pipeline product — a parsed program, a WCET analysis, an
//! optimization, a simulation, an evaluation row — is an *artifact*
//! addressed by [`ArtifactKey`]: the producing [`Stage`] (with its
//! version) plus a [`Fingerprint`] of everything the stage's output
//! depends on (program content and the relevant
//! [`EngineConfig`](crate::EngineConfig) knobs). Identical keys mean
//! identical values, so a lookup can replace a recomputation anywhere.
//!
//! Two layers:
//!
//! * **in-memory** — a concurrent map of `Arc`ed values shared by every
//!   [`Engine`](crate::Engine) attached to the store (the grid scheduler's
//!   workers all hit the same map);
//! * **on-disk** — text artifacts stored as `<name>` plus a `<name>.hash`
//!   sidecar holding the key's hex fingerprint. An artifact whose sidecar
//!   is missing or names a different key is *stale* and treated as absent
//!   — this replaces the old row-count-only acceptance of
//!   `results/sweep.csv`, which silently reused caches written by older
//!   code versions.

use std::any::Any;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::EngineError;
use crate::fingerprint::{Fingerprint, FpHasher};

/// The typed stages of the pipeline.
///
/// `Parse → Analyze → Optimize → Verify → Simulate → Energy → Unit →
/// Sweep`. The structure/VIVU/classify/IPET phases live *inside* the
/// `Analyze` artifact (a [`WcetAnalysis`](rtpf_wcet::WcetAnalysis) carries
/// all four products and its own per-phase profile); they version together
/// because each is consumed exactly once by the next.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// Program text → validated [`Program`](rtpf_isa::Program).
    Parse,
    /// CFG/loops/layout + VIVU + classify + IPET → `WcetAnalysis`.
    Analyze,
    /// Prefetch insertion → `OptimizeResult`.
    Optimize,
    /// Independent Theorem 1 re-proof → `TheoremReport`.
    Verify,
    /// Trace simulation → `SimResult`.
    Simulate,
    /// Energy accounting → `EnergyBreakdown` per technology.
    Energy,
    /// One `(program, configuration)` evaluation row → `UnitResult`.
    Unit,
    /// The full evaluation grid → CSV text (on-disk layer).
    Sweep,
}

impl Stage {
    /// Stage version, part of every key. **Bump when the stage's
    /// algorithm changes observably** so stale on-disk artifacts are
    /// discarded instead of silently reused.
    pub fn version(self) -> u32 {
        // Latest bump: the multi-level hierarchy (DESIGN.md §14). Every
        // stage that consumes the cache configuration now consumes a
        // hierarchy — per-level classifications feed τ_w and the
        // optimizer, the simulator walks both levels, and the energy
        // breakdown grew L2 terms — so all of them re-key.
        match self {
            Stage::Parse => 1,
            Stage::Analyze => 3,
            Stage::Optimize => 3,
            Stage::Verify => 1,
            Stage::Simulate => 2,
            Stage::Energy => 2,
            Stage::Unit => 3,
            Stage::Sweep => 3,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Stage::Parse => 0,
            Stage::Analyze => 1,
            Stage::Optimize => 2,
            Stage::Verify => 3,
            Stage::Simulate => 4,
            Stage::Energy => 5,
            Stage::Unit => 6,
            Stage::Sweep => 7,
        }
    }
}

/// Content address of one artifact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Producing stage.
    pub stage: Stage,
    /// Hash over the stage version and every input fingerprint.
    pub content: Fingerprint,
}

impl ArtifactKey {
    /// Builds a key from the stage and its input fingerprints.
    pub fn new(stage: Stage, inputs: &[Fingerprint]) -> ArtifactKey {
        let mut h = FpHasher::new();
        h.write_u8(stage.tag());
        h.write_u32(stage.version());
        for &fp in inputs {
            h.write_fp(fp);
        }
        ArtifactKey {
            stage,
            content: h.finish(),
        }
    }
}

/// The shared artifact store (see the module docs for the two layers).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    mem: Mutex<HashMap<ArtifactKey, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_root: Option<PathBuf>,
}

impl ArtifactStore {
    /// A store with only the in-memory layer.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// A store whose on-disk layer lives under `root`.
    pub fn with_disk(root: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            disk_root: Some(root.into()),
            ..ArtifactStore::default()
        }
    }

    /// In-memory lookups answered from the map.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// In-memory lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Typed in-memory lookup.
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let map = self.mem.lock().expect("store lock");
        map.get(&key)
            .and_then(|v| Arc::clone(v).downcast::<T>().ok())
    }

    /// Inserts a value, returning its shared handle.
    pub fn put<T: Send + Sync + 'static>(&self, key: ArtifactKey, value: T) -> Arc<T> {
        let v = Arc::new(value);
        let mut map = self.mem.lock().expect("store lock");
        map.insert(key, Arc::clone(&v) as Arc<dyn Any + Send + Sync>);
        v
    }

    /// The memoizing fetch every stage goes through: returns the cached
    /// artifact when the key is present, otherwise computes, stores, and
    /// returns it. `compute` runs outside the map lock, so long stages do
    /// not serialize unrelated lookups (two threads may race to compute
    /// the same key; both produce the identical value, and one insert
    /// wins).
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is stored on failure.
    pub fn get_or_compute<T: Send + Sync + 'static>(
        &self,
        key: ArtifactKey,
        compute: impl FnOnce() -> Result<T, EngineError>,
    ) -> Result<Arc<T>, EngineError> {
        if let Some(v) = self.get::<T>(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute()?;
        Ok(self.put(key, v))
    }

    /// Path of an on-disk artifact, when the disk layer is configured.
    pub fn disk_path(&self, name: &str) -> Option<PathBuf> {
        self.disk_root.as_ref().map(|r| r.join(name))
    }

    /// Reads the on-disk artifact `name` **iff** its `.hash` sidecar names
    /// exactly `key`. A missing, unreadable, or mismatching sidecar means
    /// the artifact is stale (produced by other inputs or an older stage
    /// version) and yields `None`.
    pub fn disk_get(&self, name: &str, key: ArtifactKey) -> Option<String> {
        let path = self.disk_path(name)?;
        let sidecar = sidecar_path(&path);
        let recorded = Fingerprint::from_hex(&fs::read_to_string(sidecar).ok()?)?;
        if recorded != key.content {
            return None;
        }
        fs::read_to_string(path).ok()
    }

    /// Writes the on-disk artifact `name` and its `.hash` sidecar.
    ///
    /// # Errors
    ///
    /// Fails when the disk layer is absent or the filesystem write fails.
    pub fn disk_put(&self, name: &str, key: ArtifactKey, text: &str) -> Result<(), EngineError> {
        let path = self.disk_path(name).ok_or_else(|| EngineError::Store {
            path: name.to_string(),
            error: "store has no on-disk layer".to_string(),
        })?;
        let io = |e: std::io::Error| EngineError::Store {
            path: path.display().to_string(),
            error: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(io)?;
        }
        fs::write(&path, text).map_err(io)?;
        fs::write(sidecar_path(&path), key.content.hex()).map_err(io)?;
        Ok(())
    }
}

fn sidecar_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".hash");
    PathBuf::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ArtifactKey {
        ArtifactKey::new(Stage::Unit, &[Fingerprint(n, n ^ 1)])
    }

    #[test]
    fn memory_layer_hits_after_put() {
        let store = ArtifactStore::in_memory();
        let k = key(1);
        assert!(store.get::<u64>(k).is_none());
        let v = store.get_or_compute(k, || Ok(42u64)).expect("computes");
        assert_eq!(*v, 42);
        let again = store.get_or_compute(k, || Ok(7u64)).expect("cached");
        assert_eq!(*again, 42, "cached value served, compute not re-run");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        // A different key (or the same content under another stage) misses.
        assert!(store.get::<u64>(key(2)).is_none());
        let other = ArtifactKey::new(Stage::Simulate, &[Fingerprint(1, 0)]);
        assert!(store.get::<u64>(other).is_none());
    }

    #[test]
    fn disk_layer_rejects_stale_or_missing_hash() {
        let dir = std::env::temp_dir().join(format!("rtpf-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_disk(&dir);
        let k = key(3);
        assert!(store.disk_get("a.csv", k).is_none());
        store.disk_put("a.csv", k, "payload").expect("writes");
        assert_eq!(store.disk_get("a.csv", k).as_deref(), Some("payload"));
        // Another key — stale artifact must be treated as absent.
        assert!(store.disk_get("a.csv", key(4)).is_none());
        // Corrupt the sidecar: artifact becomes stale.
        fs::write(dir.join("a.csv.hash"), "not-a-hash").expect("writes");
        assert!(store.disk_get("a.csv", k).is_none());
        // Remove the sidecar entirely: same.
        fs::remove_file(dir.join("a.csv.hash")).expect("removes");
        assert!(store.disk_get("a.csv", k).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
