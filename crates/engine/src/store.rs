//! The content-addressed artifact store.
//!
//! Every pipeline product — a parsed program, a WCET analysis, an
//! optimization, a simulation, an evaluation row — is an *artifact*
//! addressed by [`ArtifactKey`]: the producing [`Stage`] (with its
//! version) plus a [`Fingerprint`] of everything the stage's output
//! depends on (program content and the relevant
//! [`EngineConfig`](crate::EngineConfig) knobs). Identical keys mean
//! identical values, so a lookup can replace a recomputation anywhere.
//!
//! Two layers, both safe for concurrent use by many engines and — since
//! the store became the service tier behind `rtpfd` — many requests:
//!
//! * **in-memory** — a *sharded* map of `Arc`ed values (key-hash selects
//!   the shard, so unrelated lookups never contend on one lock), with an
//!   optional LRU-bounded byte budget (see [`StoreConfig::max_bytes`])
//!   and *single-flight* deduplication in
//!   [`get_or_compute`](ArtifactStore::get_or_compute): identical
//!   in-flight keys coalesce onto one computation instead of racing to
//!   redo it;
//! * **on-disk** — text artifacts stored as `<name>` plus a `<name>.hash`
//!   sidecar holding the key's hex fingerprint. Writes go through a
//!   `<name>.lock` lease and a write-to-temp + rename protocol (the
//!   sidecar lands only after the artifact is durable), so concurrent
//!   writers and crashes leave *stale-but-detectable* state, never a torn
//!   artifact under a fresh hash. An artifact whose sidecar is missing or
//!   names a different key is *stale*: it is treated as absent **and
//!   deleted**, so stale bytes cannot accumulate under live names.
//!
//! Every counter the layers maintain is surfaced as a typed
//! [`StoreMetrics`] snapshot (the `rtpfd` `/metrics` endpoint serves its
//! JSON rendering). The in-memory invariant the counters keep: every
//! *successful* [`get_or_compute`](ArtifactStore::get_or_compute) call is
//! exactly one `hit` or one `miss`, and `coalesced` counts the subset of
//! hits that waited on another caller's in-flight computation.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rtpf_core::{OptimizeResult, TheoremReport};
use rtpf_isa::Program;
use rtpf_sim::SimResult;
use rtpf_wcet::WcetAnalysis;

use crate::error::EngineError;
use crate::fingerprint::{Fingerprint, FpHasher};
use crate::unit::UnitResult;

/// The typed stages of the pipeline.
///
/// `Parse → Analyze → Optimize → Verify → Simulate → Energy → Unit →
/// Sweep`. The structure/VIVU/classify/IPET phases live *inside* the
/// `Analyze` artifact (a [`WcetAnalysis`](rtpf_wcet::WcetAnalysis) carries
/// all four products and its own per-phase profile); they version together
/// because each is consumed exactly once by the next.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// Program text → validated [`Program`](rtpf_isa::Program).
    Parse,
    /// CFG/loops/layout + VIVU + classify + IPET → `WcetAnalysis`.
    Analyze,
    /// Prefetch insertion → `OptimizeResult`.
    Optimize,
    /// Independent Theorem 1 re-proof → `TheoremReport`.
    Verify,
    /// Trace simulation → `SimResult`.
    Simulate,
    /// Energy accounting → `EnergyBreakdown` per technology.
    Energy,
    /// One `(program, configuration)` evaluation row → `UnitResult`.
    Unit,
    /// The full evaluation grid → CSV text (on-disk layer).
    Sweep,
}

impl Stage {
    /// Stage version, part of every key. **Bump when the stage's
    /// algorithm changes observably** so stale on-disk artifacts are
    /// discarded instead of silently reused.
    pub fn version(self) -> u32 {
        // Latest bump: the multi-level hierarchy (DESIGN.md §14). Every
        // stage that consumes the cache configuration now consumes a
        // hierarchy — per-level classifications feed τ_w and the
        // optimizer, the simulator walks both levels, and the energy
        // breakdown grew L2 terms — so all of them re-key. (The service
        // tier refactor of DESIGN.md §15 changed *how* artifacts are
        // stored, not what any stage computes, so it bumped nothing.)
        match self {
            Stage::Parse => 1,
            Stage::Analyze => 3,
            Stage::Optimize => 3,
            Stage::Verify => 1,
            Stage::Simulate => 2,
            Stage::Energy => 2,
            Stage::Unit => 3,
            Stage::Sweep => 3,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Stage::Parse => 0,
            Stage::Analyze => 1,
            Stage::Optimize => 2,
            Stage::Verify => 3,
            Stage::Simulate => 4,
            Stage::Energy => 5,
            Stage::Unit => 6,
            Stage::Sweep => 7,
        }
    }
}

/// Content address of one artifact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Producing stage.
    pub stage: Stage,
    /// Hash over the stage version and every input fingerprint.
    pub content: Fingerprint,
}

impl ArtifactKey {
    /// Builds a key from the stage and its input fingerprints.
    pub fn new(stage: Stage, inputs: &[Fingerprint]) -> ArtifactKey {
        let mut h = FpHasher::new();
        h.write_u8(stage.tag());
        h.write_u32(stage.version());
        for &fp in inputs {
            h.write_fp(fp);
        }
        ArtifactKey {
            stage,
            content: h.finish(),
        }
    }
}

/// Approximate resident size of an artifact value, used for the hot
/// tier's byte accounting.
///
/// Estimates are deliberately coarse — they only have to make the byte
/// budget *meaningful* (an eviction decision between a full
/// `OptimizeResult` and a `u64` should weigh them differently), not
/// account every allocation. The default is the shallow `size_of`;
/// artifact types carrying dominant heap blocks override it with a
/// heuristic proportional to program size.
pub trait Weigh: Send + Sync + 'static {
    /// Approximate bytes this value keeps resident.
    fn weight_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// Per-instruction footprint heuristic for analysis-sized artifacts: the
/// VIVU graph, classifications, and per-reference tables all scale with
/// the instruction count times the (small, bounded) context depth.
const ANALYSIS_BYTES_PER_INSTR: usize = 192;
/// Per-instruction footprint of a compiled [`Program`] (instruction
/// stream + CFG arenas + layout order).
const PROGRAM_BYTES_PER_INSTR: usize = 48;

impl Weigh for u64 {}
impl Weigh for TheoremReport {}
impl Weigh for UnitResult {}

impl Weigh for String {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl Weigh for (String, Program) {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.0.capacity()
            + self.1.instr_count() * PROGRAM_BYTES_PER_INSTR
    }
}

impl Weigh for WcetAnalysis {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.layout().len() * ANALYSIS_BYTES_PER_INSTR
    }
}

impl Weigh for OptimizeResult {
    fn weight_bytes(&self) -> usize {
        // The optimized program plus both before/after analyses.
        std::mem::size_of::<Self>()
            + self.program.instr_count() * PROGRAM_BYTES_PER_INSTR
            + self.analysis_before.weight_bytes()
            + self.analysis_after.weight_bytes()
    }
}

impl Weigh for SimResult {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Configuration of the store's in-memory tier.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Independent map partitions. More shards mean less lock contention
    /// between unrelated lookups; the key hash picks the shard.
    pub shards: usize,
    /// Byte budget of the hot tier, `None` = unbounded. When set, the
    /// least-recently-used artifacts are evicted (per shard, each shard
    /// owning an equal slice of the budget) until the tier fits; the
    /// most-recently-touched entry of a shard is never evicted, so a
    /// single oversized artifact still caches.
    pub max_bytes: Option<u64>,
    /// Root of the on-disk layer, `None` = in-memory only.
    pub disk_root: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            shards: 16,
            max_bytes: None,
            disk_root: None,
        }
    }
}

/// Fixed per-entry bookkeeping cost added to every weighed value.
const ENTRY_OVERHEAD_BYTES: usize = 96;

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    /// Last-touch stamp from the store-wide clock; the recency queue
    /// entry carrying the same stamp is the live one.
    stamp: u64,
}

#[derive(Default)]
struct ShardMap {
    entries: HashMap<ArtifactKey, Entry>,
    /// Lazy LRU queue: every touch pushes `(key, stamp)`; an element is
    /// live iff the entry's current stamp matches. Maintained only when a
    /// byte budget is configured (an unbounded tier never evicts, so
    /// recency would be dead weight).
    recency: VecDeque<(ArtifactKey, u64)>,
    bytes: u64,
}

impl ShardMap {
    fn touch(&mut self, key: ArtifactKey, clock: &AtomicU64, track: bool) {
        if !track {
            return;
        }
        let stamp = clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.stamp = stamp;
            self.recency.push_back((key, stamp));
            self.compact();
        }
    }

    /// Bounds the lazy queue: stale elements (superseded stamps) are
    /// dropped whenever the queue grows past a small multiple of the live
    /// entry count, keeping memory proportional to the tier itself.
    fn compact(&mut self) {
        if self.recency.len() > 4 * self.entries.len() + 16 {
            let entries = &self.entries;
            self.recency
                .retain(|(k, s)| entries.get(k).is_some_and(|e| e.stamp == *s));
        }
    }
}

/// A single-flight slot: the first caller of a key computes while later
/// callers of the same key park here and receive the shared outcome.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Running,
    Ok(Arc<dyn Any + Send + Sync>),
    Err(EngineError),
    /// The leader unwound (panicked) without producing an outcome;
    /// waiters retry from scratch.
    Poisoned,
}

/// Counter snapshot of both store layers (see the module docs for the
/// reconciliation invariant). Serialized by [`StoreMetrics::to_json`] for
/// the daemon's `/metrics` endpoint.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StoreMetrics {
    /// `get_or_compute` calls answered from the map (including coalesced
    /// waits).
    pub hits: u64,
    /// `get_or_compute` calls that ran the computation (single-flight
    /// leaders).
    pub misses: u64,
    /// The subset of `hits` that waited on an in-flight leader instead of
    /// recomputing — the deduplicated work.
    pub coalesced: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Bytes released by those evictions.
    pub evicted_bytes: u64,
    /// Current bytes resident in the hot tier (gauge).
    pub bytes_in_use: u64,
    /// Current entry count of the hot tier (gauge).
    pub entries: u64,
    /// On-disk reads served fresh.
    pub disk_hits: u64,
    /// On-disk reads that found nothing usable.
    pub disk_misses: u64,
    /// Stale artifact/sidecar pairs deleted by reads.
    pub disk_stale_cleanups: u64,
    /// Wall-clock spent inside `compute` closures (leaders only).
    pub compute_ns: u64,
    /// Wall-clock callers spent parked on another caller's computation.
    pub coalesce_wait_ns: u64,
}

impl StoreMetrics {
    /// Total map lookups: every successful `get_or_compute` lands in
    /// exactly one of `hits`/`misses`.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Flat JSON object rendering (stable field order), the `/metrics`
    /// wire format.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
             \"evicted_bytes\": {}, \"bytes_in_use\": {}, \"entries\": {}, \
             \"disk_hits\": {}, \"disk_misses\": {}, \"disk_stale_cleanups\": {}, \
             \"compute_ms\": {:.3}, \"coalesce_wait_ms\": {:.3}}}",
            self.hits,
            self.misses,
            self.coalesced,
            self.evictions,
            self.evicted_bytes,
            self.bytes_in_use,
            self.entries,
            self.disk_hits,
            self.disk_misses,
            self.disk_stale_cleanups,
            self.compute_ns as f64 / 1e6,
            self.coalesce_wait_ns as f64 / 1e6,
        )
    }
}

/// The shared artifact store (see the module docs for the two layers).
pub struct ArtifactStore {
    shards: Vec<Mutex<ShardMap>>,
    /// Per-shard byte budget (`max_bytes / shards`), `None` = unbounded.
    shard_budget: Option<u64>,
    clock: AtomicU64,
    flights: Mutex<HashMap<ArtifactKey, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_stale_cleanups: AtomicU64,
    compute_ns: AtomicU64,
    coalesce_wait_ns: AtomicU64,
    disk_root: Option<PathBuf>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("disk_root", &self.disk_root)
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::with_config(StoreConfig::default())
    }
}

impl ArtifactStore {
    /// A store with only the (unbounded) in-memory layer.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// A store whose on-disk layer lives under `root`.
    pub fn with_disk(root: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore::with_config(StoreConfig {
            disk_root: Some(root.into()),
            ..StoreConfig::default()
        })
    }

    /// A store with explicit tier configuration (the daemon's route).
    pub fn with_config(config: StoreConfig) -> ArtifactStore {
        let shards = config.shards.max(1);
        ArtifactStore {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardMap::default()))
                .collect(),
            shard_budget: config
                .max_bytes
                .map(|b| (b / shards as u64).max(ENTRY_OVERHEAD_BYTES as u64)),
            clock: AtomicU64::new(0),
            flights: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            disk_stale_cleanups: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
            coalesce_wait_ns: AtomicU64::new(0),
            disk_root: config.disk_root,
        }
    }

    fn shard(&self, key: ArtifactKey) -> &Mutex<ShardMap> {
        // The key content is already a mixed 128-bit hash; fold both
        // words so shard choice depends on the whole fingerprint.
        let h = key.content.0 ^ key.content.1.rotate_left(32) ^ u64::from(key.stage.tag());
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// In-memory lookups answered from the map (hits include coalesced
    /// single-flight waits).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// In-memory lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Typed counter snapshot of both layers (gauges summed over shards).
    pub fn metrics(&self) -> StoreMetrics {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let m = shard.lock().expect("store shard lock");
            bytes += m.bytes;
            entries += m.entries.len() as u64;
        }
        StoreMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            bytes_in_use: bytes,
            entries,
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_stale_cleanups: self.disk_stale_cleanups.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
            coalesce_wait_ns: self.coalesce_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Typed in-memory lookup. Touches the entry's recency (a bounded
    /// tier keeps what is being used) but does **not** move the hit/miss
    /// counters — only [`get_or_compute`](ArtifactStore::get_or_compute)
    /// does, so the counters reconcile against memoized stage executions.
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let mut map = self.shard(key).lock().expect("store shard lock");
        map.touch(key, &self.clock, self.shard_budget.is_some());
        map.entries
            .get(&key)
            .and_then(|e| Arc::clone(&e.value).downcast::<T>().ok())
    }

    /// Inserts a value, returning its shared handle. Replacing an
    /// existing key releases the old entry's bytes; when the shard
    /// exceeds its budget, least-recently-touched entries are evicted
    /// (never the one just inserted).
    pub fn put<T: Weigh>(&self, key: ArtifactKey, value: T) -> Arc<T> {
        let v = Arc::new(value);
        self.insert_arc(
            key,
            Arc::clone(&v) as Arc<dyn Any + Send + Sync>,
            v.weight_bytes(),
        );
        v
    }

    fn insert_arc(&self, key: ArtifactKey, value: Arc<dyn Any + Send + Sync>, weight: usize) {
        let bytes = (weight + ENTRY_OVERHEAD_BYTES) as u64;
        let track = self.shard_budget.is_some();
        let mut map = self.shard(key).lock().expect("store shard lock");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(old) = map.entries.insert(
            key,
            Entry {
                value,
                bytes,
                stamp,
            },
        ) {
            map.bytes -= old.bytes;
        }
        map.bytes += bytes;
        if track {
            map.recency.push_back((key, stamp));
            map.compact();
            self.evict_over_budget(&mut map, key);
        }
    }

    /// Pops least-recently-touched entries until the shard fits its
    /// budget. `protect` (the just-touched key) carries the newest stamp,
    /// so it is reached last and never evicted: a single artifact larger
    /// than the whole budget still caches.
    fn evict_over_budget(&self, map: &mut ShardMap, protect: ArtifactKey) {
        let budget = self.shard_budget.expect("eviction only runs when bounded");
        while map.bytes > budget {
            let Some((key, stamp)) = map.recency.pop_front() else {
                break;
            };
            let live = map.entries.get(&key).is_some_and(|e| e.stamp == stamp);
            if !live {
                continue;
            }
            if key == protect {
                map.recency.push_front((key, stamp));
                break;
            }
            let e = map.entries.remove(&key).expect("checked live above");
            map.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(e.bytes, Ordering::Relaxed);
        }
    }

    /// The memoizing fetch every stage goes through: returns the cached
    /// artifact when the key is present, otherwise computes, stores, and
    /// returns it.
    ///
    /// Concurrent callers of the *same* key coalesce: the first becomes
    /// the single-flight leader and runs `compute` (outside every map
    /// lock); the rest park until the leader finishes and share its
    /// outcome — value and error alike. A leader that panics poisons the
    /// flight; parked callers then retry from scratch instead of
    /// deadlocking.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (to the leader and every coalesced
    /// waiter); nothing is stored on failure.
    pub fn get_or_compute<T: Weigh>(
        &self,
        key: ArtifactKey,
        compute: impl FnOnce() -> Result<T, EngineError>,
    ) -> Result<Arc<T>, EngineError> {
        let mut compute = Some(compute);
        loop {
            if let Some(v) = self.get::<T>(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
            enum Role {
                Leader(Arc<Flight>),
                Follower(Arc<Flight>),
            }
            let role = {
                let mut flights = self.flights.lock().expect("flights lock");
                match flights.get(&key) {
                    Some(f) => Role::Follower(Arc::clone(f)),
                    None => {
                        let f = Arc::new(Flight {
                            state: Mutex::new(FlightState::Running),
                            done: Condvar::new(),
                        });
                        flights.insert(key, Arc::clone(&f));
                        Role::Leader(f)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // On unwind (compute panicked) the guard poisons the
                    // flight and unregisters it so parked callers retry;
                    // on success/error we disarm it and publish instead.
                    let guard = FlightGuard {
                        store: self,
                        key,
                        flight: Arc::clone(&flight),
                        armed: true,
                    };
                    let t0 = Instant::now();
                    let result = (compute.take().expect("leader computes once"))();
                    self.compute_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let outcome = match result {
                        Ok(value) => {
                            let v = Arc::new(value);
                            let any = Arc::clone(&v) as Arc<dyn Any + Send + Sync>;
                            self.insert_arc(key, Arc::clone(&any), v.weight_bytes());
                            Ok(v)
                        }
                        Err(e) => Err(e),
                    };
                    guard.publish(match &outcome {
                        Ok(v) => FlightState::Ok(Arc::clone(v) as Arc<dyn Any + Send + Sync>),
                        Err(e) => FlightState::Err(e.clone()),
                    });
                    return outcome;
                }
                Role::Follower(flight) => {
                    let t0 = Instant::now();
                    let mut state = flight.state.lock().expect("flight lock");
                    while matches!(*state, FlightState::Running) {
                        state = flight.done.wait(state).expect("flight wait");
                    }
                    self.coalesce_wait_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match &*state {
                        FlightState::Ok(v) => {
                            if let Ok(typed) = Arc::clone(v).downcast::<T>() {
                                self.hits.fetch_add(1, Ordering::Relaxed);
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return Ok(typed);
                            }
                            // Type mismatch can only mean two callers
                            // disagree about the key's artifact type;
                            // fall through and compute our own.
                        }
                        FlightState::Err(e) => {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return Err(e.clone());
                        }
                        FlightState::Poisoned | FlightState::Running => {}
                    }
                    // Poisoned (or mistyped) flight: retry as a fresh
                    // caller — the registry slot was already cleared.
                }
            }
        }
    }

    /// Path of an on-disk artifact, when the disk layer is configured.
    pub fn disk_path(&self, name: &str) -> Option<PathBuf> {
        self.disk_root.as_ref().map(|r| r.join(name))
    }

    /// Reads the on-disk artifact `name` **iff** its `.hash` sidecar names
    /// exactly `key`. Anything else — missing, unreadable, or mismatching
    /// sidecar, or an artifact the sidecar no longer describes — means the
    /// artifact is stale (produced by other inputs or an older stage
    /// version): it yields `None` **and the stale pair is deleted**, so
    /// the next write starts from clean state and stale bytes cannot
    /// shadow live names. (A reader racing a writer between the two
    /// rename steps may delete the writer's fresh artifact; the result is
    /// a detectable-stale state the next request recomputes, never a torn
    /// artifact under a fresh hash.)
    pub fn disk_get(&self, name: &str, key: ArtifactKey) -> Option<String> {
        let path = self.disk_path(name)?;
        let sidecar = sidecar_path(&path);
        let recorded = fs::read_to_string(&sidecar)
            .ok()
            .and_then(|s| Fingerprint::from_hex(&s));
        if recorded == Some(key.content) {
            if let Ok(text) = fs::read_to_string(&path) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Some(text);
            }
        }
        // Stale (or half-written) state: remove whatever half exists.
        let removed_artifact = fs::remove_file(&path).is_ok();
        let removed_sidecar = fs::remove_file(&sidecar).is_ok();
        if removed_artifact || removed_sidecar {
            self.disk_stale_cleanups.fetch_add(1, Ordering::Relaxed);
        }
        self.disk_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Writes the on-disk artifact `name` and its `.hash` sidecar.
    ///
    /// Safe for multiple concurrent writers: the write happens under a
    /// `<name>.lock` lease (stale leases are stolen after
    /// [`LEASE_TTL`]), each file lands via write-to-temp + fsync +
    /// rename, and the sidecar is renamed in only after the artifact is
    /// durable. A crash at any point leaves either the old pair, a fresh
    /// artifact with no/old sidecar (detectable stale), or the fresh
    /// pair — never a torn artifact under a fresh hash.
    ///
    /// # Errors
    ///
    /// Fails when the disk layer is absent, the lease cannot be acquired
    /// within [`LEASE_ACQUIRE_TIMEOUT`], or a filesystem write fails.
    pub fn disk_put(&self, name: &str, key: ArtifactKey, text: &str) -> Result<(), EngineError> {
        let path = self.disk_path(name).ok_or_else(|| EngineError::Store {
            path: name.to_string(),
            error: "store has no on-disk layer".to_string(),
        })?;
        let io = |e: std::io::Error| EngineError::Store {
            path: path.display().to_string(),
            error: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(io)?;
        }
        let _lease = DiskLease::acquire(&path)?;
        write_durable(&path, text.as_bytes()).map_err(io)?;
        write_durable(&sidecar_path(&path), key.content.hex().as_bytes()).map_err(io)?;
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename.
fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)
}

/// How long a `<name>.lock` lease may sit before other writers steal it
/// (covers writers that died mid-write).
pub const LEASE_TTL: Duration = Duration::from_secs(10);
/// How long a writer waits for the lease before giving up.
pub const LEASE_ACQUIRE_TIMEOUT: Duration = Duration::from_secs(30);

/// An exclusive on-disk write lease: a `<name>.lock` file created with
/// `create_new` (atomic on POSIX and NTFS alike), removed on drop. A
/// lease older than [`LEASE_TTL`] is presumed abandoned and stolen.
struct DiskLease {
    path: PathBuf,
}

impl DiskLease {
    fn acquire(target: &Path) -> Result<DiskLease, EngineError> {
        let mut p = target.as_os_str().to_os_string();
        p.push(".lock");
        let path = PathBuf::from(p);
        let deadline = Instant::now() + LEASE_ACQUIRE_TIMEOUT;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(DiskLease { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > LEASE_TTL);
                    if stale {
                        // Two stealers may race the removal; the loser's
                        // remove fails or removes the winner's fresh
                        // lease — either way both loop back to create_new
                        // and exactly one wins it.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(EngineError::Store {
                            path: target.display().to_string(),
                            error: format!(
                                "could not acquire write lease {} within {:?}",
                                path.display(),
                                LEASE_ACQUIRE_TIMEOUT
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(EngineError::Store {
                        path: path.display().to_string(),
                        error: e.to_string(),
                    })
                }
            }
        }
    }
}

impl Drop for DiskLease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Publishes a flight outcome exactly once; on unwind without
/// [`publish`](FlightGuard::publish), poisons the flight so parked
/// followers retry instead of waiting forever.
struct FlightGuard<'a> {
    store: &'a ArtifactStore,
    key: ArtifactKey,
    flight: Arc<Flight>,
    armed: bool,
}

impl FlightGuard<'_> {
    fn publish(mut self, outcome: FlightState) {
        self.settle(outcome);
        self.armed = false;
    }

    fn settle(&self, outcome: FlightState) {
        // Unregister first: callers arriving after this point must start
        // a fresh flight (the map already holds a success, so they hit).
        self.store
            .flights
            .lock()
            .expect("flights lock")
            .remove(&self.key);
        let mut state = self.flight.state.lock().expect("flight lock");
        *state = outcome;
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.settle(FlightState::Poisoned);
        }
    }
}

fn sidecar_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".hash");
    PathBuf::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ArtifactKey {
        ArtifactKey::new(Stage::Unit, &[Fingerprint(n, n ^ 1)])
    }

    #[test]
    fn memory_layer_hits_after_put() {
        let store = ArtifactStore::in_memory();
        let k = key(1);
        assert!(store.get::<u64>(k).is_none());
        let v = store.get_or_compute(k, || Ok(42u64)).expect("computes");
        assert_eq!(*v, 42);
        let again = store.get_or_compute(k, || Ok(7u64)).expect("cached");
        assert_eq!(*again, 42, "cached value served, compute not re-run");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        let m = store.metrics();
        assert_eq!((m.hits, m.misses, m.coalesced), (1, 1, 0));
        assert_eq!(m.lookups(), 2);
        assert_eq!(m.entries, 1);
        assert!(m.bytes_in_use >= 8);
        // A different key (or the same content under another stage) misses.
        assert!(store.get::<u64>(key(2)).is_none());
        let other = ArtifactKey::new(Stage::Simulate, &[Fingerprint(1, 0)]);
        assert!(store.get::<u64>(other).is_none());
    }

    #[test]
    fn compute_errors_are_propagated_and_not_cached() {
        let store = ArtifactStore::in_memory();
        let k = key(9);
        let err = store
            .get_or_compute::<u64>(k, || {
                Err(EngineError::Store {
                    path: "x".into(),
                    error: "boom".into(),
                })
            })
            .expect_err("propagates");
        assert!(matches!(err, EngineError::Store { .. }));
        assert!(store.get::<u64>(k).is_none(), "failures are not stored");
        assert_eq!(store.misses(), 1);
        let v = store.get_or_compute(k, || Ok(5u64)).expect("recovers");
        assert_eq!(*v, 5);
        assert_eq!(store.misses(), 2);
    }

    #[test]
    fn lru_budget_evicts_cold_entries_and_keeps_hot_ones() {
        // One shard so the budget arithmetic is exact; each u64 entry
        // costs 8 + ENTRY_OVERHEAD_BYTES = 104 bytes. Budget fits 3.
        let store = ArtifactStore::with_config(StoreConfig {
            shards: 1,
            max_bytes: Some(3 * 104),
            disk_root: None,
        });
        for n in 0..3 {
            store.put(key(n), n);
        }
        assert_eq!(store.metrics().entries, 3);
        assert_eq!(store.metrics().evictions, 0);
        // Touch key 0 so key 1 is now the least recently used.
        assert_eq!(store.get::<u64>(key(0)).as_deref(), Some(&0));
        store.put(key(3), 3u64);
        let m = store.metrics();
        assert_eq!(m.entries, 3);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.evicted_bytes, 104);
        assert!(m.bytes_in_use <= 3 * 104);
        assert!(store.get::<u64>(key(1)).is_none(), "LRU entry evicted");
        assert!(store.get::<u64>(key(0)).is_some(), "touched entry kept");
        assert!(store.get::<u64>(key(3)).is_some(), "new entry kept");
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let store = ArtifactStore::with_config(StoreConfig {
            shards: 1,
            max_bytes: Some(16),
            disk_root: None,
        });
        store.put(key(1), 1u64);
        assert!(
            store.get::<u64>(key(1)).is_some(),
            "the just-inserted entry is never evicted, even over budget"
        );
        store.put(key(2), 2u64);
        assert!(store.get::<u64>(key(1)).is_none(), "older entry gives way");
        assert!(store.get::<u64>(key(2)).is_some());
    }

    #[test]
    fn replacing_a_key_releases_the_old_bytes() {
        let store = ArtifactStore::in_memory();
        let k = key(5);
        store.put(k, "x".repeat(100));
        let before = store.metrics().bytes_in_use;
        store.put(k, String::from("y"));
        let after = store.metrics().bytes_in_use;
        assert!(after < before, "replacement must not leak accounting");
        assert_eq!(store.metrics().entries, 1);
    }

    #[test]
    fn disk_layer_rejects_and_deletes_stale_state() {
        let dir = std::env::temp_dir().join(format!("rtpf-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_disk(&dir);
        let k = key(3);
        assert!(store.disk_get("a.csv", k).is_none());
        store.disk_put("a.csv", k, "payload").expect("writes");
        assert_eq!(store.disk_get("a.csv", k).as_deref(), Some("payload"));
        assert_eq!(store.metrics().disk_hits, 1);
        // No temp or lock residue from the atomic write protocol.
        let residue: Vec<_> = fs::read_dir(&dir)
            .expect("reads dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .filter(|n| n.contains(".tmp.") || n.ends_with(".lock"))
            .collect();
        assert!(residue.is_empty(), "left residue: {residue:?}");

        // Another key — the stale artifact is treated as absent AND the
        // pair is deleted so it cannot shadow the name.
        assert!(store.disk_get("a.csv", key(4)).is_none());
        assert_eq!(store.metrics().disk_stale_cleanups, 1);
        assert!(!dir.join("a.csv").exists(), "stale artifact deleted");
        assert!(!dir.join("a.csv.hash").exists(), "stale sidecar deleted");

        // Corrupt sidecar next to a fresh artifact: same cleanup.
        store.disk_put("a.csv", k, "payload").expect("writes");
        fs::write(dir.join("a.csv.hash"), "not-a-hash").expect("writes");
        assert!(store.disk_get("a.csv", k).is_none());
        assert!(!dir.join("a.csv").exists());
        assert!(!dir.join("a.csv.hash").exists());

        // Orphan artifact (crash between artifact and sidecar rename):
        // detectably stale, removed on read.
        fs::write(dir.join("b.csv"), "half-written").expect("writes");
        assert!(store.disk_get("b.csv", k).is_none());
        assert!(!dir.join("b.csv").exists(), "orphan artifact deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_abandoned_lease_is_stolen() {
        let dir = std::env::temp_dir().join(format!("rtpf-lease-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let store = ArtifactStore::with_disk(&dir);
        let lock = dir.join("a.csv.lock");
        fs::write(&lock, "stale-writer").expect("writes");
        // Age the lease past the TTL.
        let old = std::time::SystemTime::now() - (LEASE_TTL + Duration::from_secs(1));
        let f = fs::File::options().write(true).open(&lock).expect("opens");
        f.set_modified(old).expect("sets mtime");
        drop(f);
        store
            .disk_put("a.csv", key(3), "payload")
            .expect("steals lease");
        assert_eq!(store.disk_get("a.csv", key(3)).as_deref(), Some("payload"));
        assert!(!lock.exists(), "lease released after the write");
        let _ = fs::remove_dir_all(&dir);
    }
}
