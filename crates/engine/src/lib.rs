//! rtpf-engine: the unified analysis pipeline.
//!
//! Every front end (CLI, experiments, benches, audits) drives the same
//! staged pipeline — `Parse → Analyze (CFG/loops/layout, VIVU, classify,
//! IPET) → Optimize → Verify → Simulate → Energy` — through one
//! [`Engine`] built from one [`EngineConfig`]. Stages are pure functions
//! over artifact values; the [`ArtifactStore`] memoizes them by content
//! address (program fingerprint + configuration fingerprint + stage
//! version), in memory and on disk. See `DESIGN.md` §9 for the stage
//! graph and the cache-bypass rule the audits rely on.

mod config;
mod error;
mod fingerprint;
mod grid;
mod pipeline;
mod service;
mod store;
mod unit;

pub use config::{ConfigError, EngineConfig, OptimizePolicy};
pub use error::EngineError;
pub use fingerprint::{program_fingerprint, Fingerprint, FpHasher};
pub use grid::Grid;
pub use pipeline::{load_program, sweep_key, Engine, Gated};
pub use service::{
    AnalyzeResponse, AuditResponse, ConfigSpec, OptimizeResponse, ProgramSource, ResponseBody,
    ServiceCore, ServiceError, ServiceOp, ServiceProfile, ServiceRequest, ServiceResponse,
    SimulateResponse,
};
pub use store::{ArtifactKey, ArtifactStore, Stage, StoreConfig, StoreMetrics, Weigh};
pub use unit::{parse_csv, to_csv, UnitResult, COLUMNS};
