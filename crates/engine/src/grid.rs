//! The work-stealing grid scheduler.
//!
//! Runs one closure over every item of a grid (e.g. the evaluation's
//! 37 programs × 36 configurations) on a pool of scoped threads. Workers
//! steal item indices from a shared atomic counter and accumulate results
//! in per-worker buffers, which are scattered into index-addressed slots
//! after the join — there is no shared lock anywhere on the hot path.
//! Results come back in item order regardless of which worker computed
//! what.
//!
//! With [`Grid::shards`] > 1 the item range is partitioned into that many
//! contiguous shards, each with its own claim counter, and the worker pool
//! is split into groups with one home shard apiece. Workers drain their
//! home shard first and only then steal from the others, so a wide pool
//! hammering one shared counter (and, downstream, one on-disk store lock
//! after near-simultaneous claims) turns into independent groups that
//! converge only in the tail.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct Grid {
    /// Worker threads; `0` = one per available core.
    pub workers: usize,
    /// Progress line every `n` completed items (`0` = silent).
    pub progress_every: usize,
    /// Label prefixing progress lines.
    pub label: &'static str,
    /// Independent claim-counter partitions (`0` or `1` = one shared
    /// counter, the classic mode). Clamped to the worker and item counts.
    pub shards: usize,
}

impl Default for Grid {
    fn default() -> Self {
        Grid {
            workers: 0,
            progress_every: 0,
            label: "grid",
            shards: 0,
        }
    }
}

impl Grid {
    /// Runs `f(index, item)` for every item, in parallel, returning the
    /// results in item order.
    pub fn run<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.workers
        };
        // More shards than workers (or items) would only manufacture
        // steal traffic, so clamp; shard `s` owns `bounds[s]..bounds[s+1]`.
        let shards = self.shards.clamp(1, workers.min(items.len()).max(1));
        let bounds: Vec<usize> = (0..=shards).map(|s| s * items.len() / shards).collect();
        let cursors: Vec<AtomicUsize> = bounds[..shards]
            .iter()
            .map(|&lo| AtomicUsize::new(lo))
            .collect();
        let done = AtomicUsize::new(0);
        let started = std::time::Instant::now();

        let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let home = w % shards;
                    let cursors = &cursors;
                    let bounds = &bounds;
                    let done = &done;
                    let started = &started;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        'work: loop {
                            // Home shard first, then steal round-robin.
                            for k in 0..shards {
                                let s = (home + k) % shards;
                                let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                                if i >= bounds[s + 1] {
                                    continue;
                                }
                                local.push((i, f(i, &items[i])));
                                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                                if self.progress_every > 0 && d.is_multiple_of(self.progress_every)
                                {
                                    let rate = d as f64 / started.elapsed().as_secs_f64();
                                    eprintln!(
                                        "{}: {d}/{} units ({rate:.2} units/s)",
                                        self.label,
                                        items.len()
                                    );
                                }
                                continue 'work;
                            }
                            break;
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("grid worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        for (i, r) in buffers.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item computed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_and_covers_every_item() {
        let items: Vec<u64> = (0..257).collect();
        let grid = Grid {
            workers: 7,
            ..Grid::default()
        };
        let out = grid.run(&items, |i, &v| {
            assert_eq!(i as u64, v);
            v * 2
        });
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn sharded_run_covers_every_item_in_order() {
        let items: Vec<u64> = (0..131).collect();
        for shards in [2, 4, 16, 1000] {
            let grid = Grid {
                workers: 7,
                shards,
                ..Grid::default()
            };
            let out = grid.run(&items, |i, &v| {
                assert_eq!(i as u64, v);
                v + 10
            });
            assert_eq!(out.len(), items.len(), "shards={shards}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as u64 + 10, "shards={shards}");
            }
        }
    }

    #[test]
    fn sharded_workers_finish_foreign_shards() {
        // One shard gets all the slow items; with stealing, the grid still
        // completes every item even though the home groups are unbalanced.
        let items: Vec<u64> = (0..64).collect();
        let grid = Grid {
            workers: 4,
            shards: 4,
            ..Grid::default()
        };
        let out = grid.run(&items, |i, &v| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            v * 3
        });
        assert_eq!(out, (0..64).map(|v| v * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_and_empty_grid_work() {
        let grid = Grid {
            workers: 1,
            ..Grid::default()
        };
        assert_eq!(grid.run(&[1, 2, 3], |_, v| v + 1), vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        assert!(grid.run(&empty, |_, v| *v).is_empty());
    }
}
