//! Engine smoke check (run by CI as a per-policy matrix): push a small
//! suite × configuration grid through the full pipeline twice — a cold
//! pass that computes every artifact, then a warm pass that must be served
//! entirely from the content-addressed store — and prove that artifacts
//! never cross replacement policies.
//!
//! ```text
//! cargo run --release -p rtpf-engine --example smoke                    # all policies
//! cargo run --release -p rtpf-engine --example smoke -- fifo           # one policy
//! cargo run --release -p rtpf-engine --example smoke -- lru --l2 8:16:16384
//! ```
//!
//! `--l2 a:b:c[:policy]` runs the same drill through the two-level
//! pipeline (geometries whose block size or capacity cannot sit under the
//! given L2 are skipped).
//!
//! Exits nonzero (via assert) if the warm pass misses the cache (unstable
//! artifact keys), or if a warm store built under one policy answers a
//! request for another (policy missing from the config fingerprint) — the
//! cheapest possible canaries for fingerprint regressions.

use std::sync::Arc;

use rtpf_cache::{CacheConfig, ReplacementPolicy};
use rtpf_engine::{Engine, EngineConfig};

/// Parses the `--l2 a:b:c[:policy]` value (the shared spec grammar).
fn parse_l2(v: &str) -> CacheConfig {
    CacheConfig::parse_spec(v).unwrap_or_else(|e| panic!("--l2 {v}: {e}"))
}

fn main() {
    let mut policies = ReplacementPolicy::ALL.to_vec();
    let mut l2: Option<CacheConfig> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--l2" => {
                let v = args.next().expect("--l2 needs a:b:c[:policy]");
                l2 = Some(parse_l2(&v));
            }
            name => {
                policies = vec![ReplacementPolicy::parse(name)
                    .unwrap_or_else(|| panic!("unknown policy {name} (expected lru|fifo|plru)"))];
            }
        }
    }
    let programs = ["bs", "fibcall", "sqrt", "crc"];
    let geometries = [(1u32, 16u32, 256u32), (2, 16, 512), (4, 32, 8192)];

    // Folds the optional L2 behind an evaluation profile; `None` when the
    // geometry cannot sit under the requested L2 (block mismatch or
    // capacity not strictly larger).
    let with_l2 = |cfg: EngineConfig| match l2 {
        Some(l2c) => cfg.with_l2(l2c).ok(),
        None => Some(cfg),
    };

    let mut units = 0u64;
    for &policy in &policies {
        for (a, b, c) in geometries {
            let cache = EngineConfig::geometry(a, b, c)
                .expect("valid geometry")
                .with_policy(policy)
                .expect("valid policy");
            let Some(config) = with_l2(EngineConfig::evaluation(cache)) else {
                println!("{cache}: skipped (cannot sit under --l2)");
                continue;
            };
            let engine = Engine::new(config);

            let cold = std::time::Instant::now();
            for name in programs {
                let p = rtpf_suite::by_name(name).expect("known suite program");
                let r = engine.unit(name, "smoke", &p.program).expect("evaluates");
                assert!(r.wcet_opt <= r.wcet_orig, "{name}: Theorem 1 violated");
                units += 1;
            }
            let cold_ms = cold.elapsed().as_secs_f64() * 1e3;
            let misses_after_cold = engine.store().misses();
            let hits_after_cold = engine.store().hits();

            let warm = std::time::Instant::now();
            for name in programs {
                let p = rtpf_suite::by_name(name).expect("known suite program");
                engine.unit(name, "smoke", &p.program).expect("evaluates");
            }
            let warm_ms = warm.elapsed().as_secs_f64() * 1e3;

            let warm_hits = engine.store().hits() - hits_after_cold;
            let warm_misses = engine.store().misses() - misses_after_cold;
            println!(
                "{cache}: cold {cold_ms:.1} ms ({misses_after_cold} computes), \
                 warm {warm_ms:.1} ms ({warm_hits} hits, {warm_misses} misses)"
            );
            assert_eq!(
                warm_misses, 0,
                "warm pass recomputed artifacts on {cache}: unstable keys"
            );
            assert!(
                warm_hits >= programs.len() as u64,
                "warm pass did not hit the store on {cache}"
            );

            // Policy isolation: attach a different-policy engine to this
            // warm store; it must behave exactly as if the store were
            // cold — identical hit/miss deltas to a private-store run of
            // the same unit (a unit can hit its *own* just-computed
            // artifacts, e.g. re-simulating an unchanged program, so
            // "zero hits" would be too strict). Any extra hit means an
            // artifact computed under `policy` leaked across.
            let other_policy = ReplacementPolicy::ALL
                .into_iter()
                .find(|&p| p != policy)
                .expect("more than one policy exists");
            let other_cache = EngineConfig::geometry(a, b, c)
                .expect("valid geometry")
                .with_policy(other_policy)
                .expect("valid policy");
            let p = rtpf_suite::by_name(programs[0]).expect("known suite program");
            let other_config = with_l2(EngineConfig::evaluation(other_cache))
                .expect("same geometry under the same L2");
            let cold_ref = Engine::new(other_config.clone());
            cold_ref
                .unit(programs[0], "smoke", &p.program)
                .expect("evaluates");

            let other = Engine::with_store(other_config, Arc::clone(engine.store()));
            let hits_before = other.store().hits();
            let misses_before = other.store().misses();
            other
                .unit(programs[0], "smoke", &p.program)
                .expect("evaluates");
            assert_eq!(
                (
                    other.store().hits() - hits_before,
                    other.store().misses() - misses_before,
                ),
                (cold_ref.store().hits(), cold_ref.store().misses()),
                "{other_cache} attached to a store warmed under {policy} did not \
                 behave like a cold store: policy missing from the artifact keys"
            );
        }
    }
    assert!(units > 0, "every geometry was skipped; --l2 too small?");
    println!(
        "engine smoke OK: {units} units over {} policies{}, warm passes fully cached, \
         no cross-policy artifact reuse",
        policies.len(),
        match l2 {
            Some(l2c) => format!(" with L2 {l2c}"),
            None => String::new(),
        }
    );
}
