//! Engine smoke check (run by CI as a per-policy matrix): push a small
//! suite × configuration grid through the full pipeline twice — a cold
//! pass that computes every artifact, then a warm pass that must be served
//! entirely from the content-addressed store — and prove that artifacts
//! never cross replacement policies.
//!
//! ```text
//! cargo run --release -p rtpf-engine --example smoke            # all policies
//! cargo run --release -p rtpf-engine --example smoke -- fifo   # one policy
//! ```
//!
//! Exits nonzero (via assert) if the warm pass misses the cache (unstable
//! artifact keys), or if a warm store built under one policy answers a
//! request for another (policy missing from the config fingerprint) — the
//! cheapest possible canaries for fingerprint regressions.

use std::sync::Arc;

use rtpf_cache::ReplacementPolicy;
use rtpf_engine::{Engine, EngineConfig};

fn main() {
    let policies: Vec<ReplacementPolicy> = match std::env::args().nth(1) {
        Some(name) => vec![ReplacementPolicy::parse(&name)
            .unwrap_or_else(|| panic!("unknown policy {name} (expected lru|fifo|plru)"))],
        None => ReplacementPolicy::ALL.to_vec(),
    };
    let programs = ["bs", "fibcall", "sqrt", "crc"];
    let geometries = [(1u32, 16u32, 256u32), (2, 16, 512), (4, 32, 8192)];

    let mut units = 0u64;
    for &policy in &policies {
        for (a, b, c) in geometries {
            let cache = EngineConfig::geometry(a, b, c)
                .expect("valid geometry")
                .with_policy(policy)
                .expect("valid policy");
            let engine = Engine::new(EngineConfig::evaluation(cache));

            let cold = std::time::Instant::now();
            for name in programs {
                let p = rtpf_suite::by_name(name).expect("known suite program");
                let r = engine.unit(name, "smoke", &p.program).expect("evaluates");
                assert!(r.wcet_opt <= r.wcet_orig, "{name}: Theorem 1 violated");
                units += 1;
            }
            let cold_ms = cold.elapsed().as_secs_f64() * 1e3;
            let misses_after_cold = engine.store().misses();
            let hits_after_cold = engine.store().hits();

            let warm = std::time::Instant::now();
            for name in programs {
                let p = rtpf_suite::by_name(name).expect("known suite program");
                engine.unit(name, "smoke", &p.program).expect("evaluates");
            }
            let warm_ms = warm.elapsed().as_secs_f64() * 1e3;

            let warm_hits = engine.store().hits() - hits_after_cold;
            let warm_misses = engine.store().misses() - misses_after_cold;
            println!(
                "{cache}: cold {cold_ms:.1} ms ({misses_after_cold} computes), \
                 warm {warm_ms:.1} ms ({warm_hits} hits, {warm_misses} misses)"
            );
            assert_eq!(
                warm_misses, 0,
                "warm pass recomputed artifacts on {cache}: unstable keys"
            );
            assert!(
                warm_hits >= programs.len() as u64,
                "warm pass did not hit the store on {cache}"
            );

            // Policy isolation: attach a different-policy engine to this
            // warm store; it must behave exactly as if the store were
            // cold — identical hit/miss deltas to a private-store run of
            // the same unit (a unit can hit its *own* just-computed
            // artifacts, e.g. re-simulating an unchanged program, so
            // "zero hits" would be too strict). Any extra hit means an
            // artifact computed under `policy` leaked across.
            let other_policy = ReplacementPolicy::ALL
                .into_iter()
                .find(|&p| p != policy)
                .expect("more than one policy exists");
            let other_cache = EngineConfig::geometry(a, b, c)
                .expect("valid geometry")
                .with_policy(other_policy)
                .expect("valid policy");
            let p = rtpf_suite::by_name(programs[0]).expect("known suite program");
            let cold_ref = Engine::new(EngineConfig::evaluation(other_cache));
            cold_ref
                .unit(programs[0], "smoke", &p.program)
                .expect("evaluates");

            let other = Engine::with_store(
                EngineConfig::evaluation(other_cache),
                Arc::clone(engine.store()),
            );
            let hits_before = other.store().hits();
            let misses_before = other.store().misses();
            other
                .unit(programs[0], "smoke", &p.program)
                .expect("evaluates");
            assert_eq!(
                (
                    other.store().hits() - hits_before,
                    other.store().misses() - misses_before,
                ),
                (cold_ref.store().hits(), cold_ref.store().misses()),
                "{other_cache} attached to a store warmed under {policy} did not \
                 behave like a cold store: policy missing from the artifact keys"
            );
        }
    }
    println!(
        "engine smoke OK: {units} units over {} policies, warm passes fully cached, \
         no cross-policy artifact reuse",
        policies.len()
    );
}
