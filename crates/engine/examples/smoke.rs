//! Engine smoke check (run by CI): push a small suite × configuration
//! grid through the full pipeline twice — a cold pass that computes every
//! artifact, then a warm pass that must be served entirely from the
//! content-addressed store.
//!
//! ```text
//! cargo run --release -p rtpf-engine --example smoke
//! ```
//!
//! Exits nonzero (via assert) if the warm pass misses the cache, which
//! would mean artifact keys are unstable within a process — the cheapest
//! possible canary for fingerprint regressions.

use rtpf_engine::{Engine, EngineConfig};

fn main() {
    let programs = ["bs", "fibcall", "sqrt", "crc"];
    let geometries = [(1u32, 16u32, 256u32), (2, 16, 512), (4, 32, 8192)];

    let mut units = 0u64;
    for (a, b, c) in geometries {
        let cache = EngineConfig::geometry(a, b, c).expect("valid geometry");
        let engine = Engine::new(EngineConfig::evaluation(cache));

        let cold = std::time::Instant::now();
        for name in programs {
            let p = rtpf_suite::by_name(name).expect("known suite program");
            let r = engine.unit(name, "smoke", &p.program).expect("evaluates");
            assert!(r.wcet_opt <= r.wcet_orig, "{name}: Theorem 1 violated");
            units += 1;
        }
        let cold_ms = cold.elapsed().as_secs_f64() * 1e3;
        let misses_after_cold = engine.store().misses();
        let hits_after_cold = engine.store().hits();

        let warm = std::time::Instant::now();
        for name in programs {
            let p = rtpf_suite::by_name(name).expect("known suite program");
            engine.unit(name, "smoke", &p.program).expect("evaluates");
        }
        let warm_ms = warm.elapsed().as_secs_f64() * 1e3;

        let warm_hits = engine.store().hits() - hits_after_cold;
        let warm_misses = engine.store().misses() - misses_after_cold;
        println!(
            "{cache}: cold {cold_ms:.1} ms ({misses_after_cold} computes), \
             warm {warm_ms:.1} ms ({warm_hits} hits, {warm_misses} misses)"
        );
        assert_eq!(
            warm_misses, 0,
            "warm pass recomputed artifacts on {cache}: unstable keys"
        );
        assert!(
            warm_hits >= programs.len() as u64,
            "warm pass did not hit the store on {cache}"
        );
    }
    println!("engine smoke OK: {units} units, warm passes fully cached");
}
