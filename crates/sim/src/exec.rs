//! CFG walker: executes a program under a branch-behaviour policy.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming};
use rtpf_isa::dom::Dominators;
use rtpf_isa::loops::LoopForest;
use rtpf_isa::{BlockId, InstrKind, Layout, MemBlockId, Program};

use crate::engine::{CacheEngine, HwPrefetcher, LockedContents};
use crate::result::SimResult;

/// How branches behave during simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BranchBehavior {
    /// Loops iterate their full bound; conditionals are drawn uniformly.
    /// Approximates a heavy, WCET-like input.
    WorstLike,
    /// Loops iterate `Uniform(1..=bound)` times; conditionals uniform.
    /// Approximates average inputs (the paper's trace-based ACET).
    #[default]
    Random,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Branch behaviour policy.
    pub behavior: BranchBehavior,
    /// Base RNG seed; run `k` uses `seed + k`.
    pub seed: u64,
    /// Number of runs averaged into the result.
    pub runs: u32,
    /// Safety cap on fetches per run.
    pub max_fetches: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            behavior: BranchBehavior::Random,
            seed: 0xC0FF_EE00,
            runs: 3,
            max_fetches: 2_000_000,
        }
    }
}

/// Simulation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The program failed validation (unreachable code, missing bounds…).
    InvalidProgram(String),
    /// A run exceeded [`SimConfig::max_fetches`].
    FetchCapExceeded {
        /// The configured cap.
        cap: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            SimError::FetchCapExceeded { cap } => {
                write!(f, "execution exceeded the fetch cap of {cap}")
            }
        }
    }
}

impl Error for SimError {}

/// One step of a block's precompiled fetch sequence.
#[derive(Clone, Debug)]
enum Seg {
    /// `n` consecutive instructions mapping to the same memory block
    /// (batched via [`CacheEngine::fetch_run`]); `last_addr` is the
    /// address of the run's final instruction.
    Fetch {
        mb: MemBlockId,
        n: u32,
        last_addr: u64,
    },
    /// A software prefetch action, issued after the owning instruction's
    /// fetch (which is part of the preceding `Fetch` run).
    Prefetch { target: MemBlockId },
}

/// Per-program walk plan, built once per [`Simulator::run_full`] and
/// shared by every seeded run: each block's instruction stream collapsed
/// into same-memory-block fetch runs, loop bounds by block index, and a
/// body-membership bitset per loop header. Replaces the per-instruction
/// layout lookups and per-transition `LoopForest` scans of the walk's
/// previous inner loop.
struct WalkPlan {
    segs: Vec<Vec<Seg>>,
    bound: Vec<Option<u32>>,
    /// `body[h]` non-empty iff block `h` heads a loop; bit `b` set iff
    /// block `b` is in that loop's body.
    body: Vec<Vec<u64>>,
}

impl WalkPlan {
    fn build(p: &Program, forest: &LoopForest, layout: &Layout, block_bytes: u32) -> WalkPlan {
        let n_blocks = p.block_count();
        let words = n_blocks.div_ceil(64);
        let mut segs = vec![Vec::new(); n_blocks];
        let mut bound = vec![None; n_blocks];
        let mut body = vec![Vec::new(); n_blocks];
        for b in p.block_ids() {
            bound[b.index()] = p.loop_bound(b);
            if let Some(l) = forest.loop_of(b) {
                let mut bits = vec![0u64; words];
                for &m in &l.body {
                    bits[m.index() / 64] |= 1 << (m.index() % 64);
                }
                body[b.index()] = bits;
            }
            let v = &mut segs[b.index()];
            for &i in p.block(b).instrs() {
                let addr = layout.addr(i);
                let mb = layout.block_of(i, block_bytes);
                match v.last_mut() {
                    Some(Seg::Fetch {
                        mb: m,
                        n,
                        last_addr,
                    }) if *m == mb => {
                        *n += 1;
                        *last_addr = addr;
                    }
                    _ => v.push(Seg::Fetch {
                        mb,
                        n: 1,
                        last_addr: addr,
                    }),
                }
                if let InstrKind::Prefetch { target } = p.instr(i).kind {
                    v.push(Seg::Prefetch {
                        target: layout.block_of(target, block_bytes),
                    });
                }
            }
        }
        WalkPlan { segs, bound, body }
    }

    #[inline]
    fn in_body(&self, header: BlockId, b: BlockId) -> bool {
        let bits = &self.body[header.index()];
        !bits.is_empty() && (bits[b.index() / 64] >> (b.index() % 64)) & 1 == 1
    }
}

/// Trace-driven simulator for one cache hierarchy and timing model.
#[derive(Clone, Debug)]
pub struct Simulator {
    hierarchy: HierarchyConfig,
    timing: MemTiming,
    sim: SimConfig,
}

impl Simulator {
    /// A simulator for a single-level cache of the given geometry, timing,
    /// and policy.
    pub fn new(config: CacheConfig, timing: MemTiming, sim: SimConfig) -> Self {
        Self::new_hierarchy(HierarchyConfig::l1_only(config), timing, sim)
    }

    /// A simulator for a full hierarchy; with an L2, every run's engine
    /// serves L1 misses through the exact two-level walk.
    pub fn new_hierarchy(hierarchy: HierarchyConfig, timing: MemTiming, sim: SimConfig) -> Self {
        Simulator {
            hierarchy,
            timing,
            sim,
        }
    }

    /// Runs `p` with a plain cache (no hardware prefetcher, no locking),
    /// averaging [`SimConfig::runs`] seeded runs.
    ///
    /// # Errors
    ///
    /// Fails if `p` is invalid or a run exceeds the fetch cap.
    pub fn run(&self, p: &Program) -> Result<SimResult, SimError> {
        self.run_with(p, |_| {})
    }

    /// Runs `p` with statically locked contents.
    ///
    /// # Errors
    ///
    /// Fails if `p` is invalid or a run exceeds the fetch cap.
    pub fn run_locked(
        &self,
        p: &Program,
        contents: &LockedContents,
    ) -> Result<SimResult, SimError> {
        self.run_with(p, |e| e.lock(contents.clone()))
    }

    /// Runs `p`, customizing each run's engine (e.g. locking) via `setup`.
    ///
    /// # Errors
    ///
    /// Fails if `p` is invalid or a run exceeds the fetch cap.
    pub fn run_with(
        &self,
        p: &Program,
        setup: impl Fn(&mut CacheEngine),
    ) -> Result<SimResult, SimError> {
        self.run_full(p, setup, || None)
    }

    /// Runs `p` with a hardware prefetcher built fresh per run.
    ///
    /// # Errors
    ///
    /// Fails if `p` is invalid or a run exceeds the fetch cap.
    pub fn run_hw(
        &self,
        p: &Program,
        factory: impl Fn() -> Box<dyn HwPrefetcher>,
    ) -> Result<SimResult, SimError> {
        self.run_full(p, |_| {}, || Some(factory()))
    }

    fn run_full(
        &self,
        p: &Program,
        setup: impl Fn(&mut CacheEngine),
        hw_factory: impl Fn() -> Option<Box<dyn HwPrefetcher>>,
    ) -> Result<SimResult, SimError> {
        p.validate()
            .map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        let dom = Dominators::compute(p);
        let forest =
            LoopForest::compute(p, &dom).map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        let layout = Layout::of(p);
        let plan = WalkPlan::build(p, &forest, &layout, self.hierarchy.l1().block_bytes());

        let mut result = SimResult::default();
        for k in 0..self.sim.runs {
            let mut engine = CacheEngine::new_hierarchy(&self.hierarchy, self.timing);
            setup(&mut engine);
            let mut hw = hw_factory();
            let instrs = self.walk(
                p,
                &plan,
                &layout,
                &mut engine,
                &mut hw,
                self.sim.seed.wrapping_add(u64::from(k)),
            )?;
            result.absorb(&engine, instrs);
        }
        Ok(result)
    }

    /// One seeded walk; returns the number of executed instructions.
    fn walk(
        &self,
        p: &Program,
        plan: &WalkPlan,
        layout: &Layout,
        engine: &mut CacheEngine,
        hw: &mut Option<Box<dyn HwPrefetcher>>,
        seed: u64,
    ) -> Result<u64, SimError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let block_bytes = self.hierarchy.l1().block_bytes();
        let mut counters: HashMap<BlockId, u64> = HashMap::new();
        let mut fetched: u64 = 0;

        let choose_iters = |rng: &mut StdRng, bound: u32| -> u64 {
            match self.sim.behavior {
                BranchBehavior::WorstLike => u64::from(bound),
                BranchBehavior::Random => rng.gen_range(1..=u64::from(bound)),
            }
        };

        let mut cur = p.entry();
        if let Some(bound) = plan.bound[cur.index()] {
            counters.insert(cur, choose_iters(&mut rng, bound));
        }
        loop {
            // Fetch the block's instructions. With a hardware prefetcher
            // attached, every fetch is reported individually at its exact
            // address; otherwise the precompiled fetch runs collapse the
            // per-instruction loop into one engine call per memory block.
            let mut last_addr = layout.addr(
                *p.block(cur)
                    .instrs()
                    .first()
                    .unwrap_or(&rtpf_isa::InstrId(0)),
            );
            if let Some(hw) = hw.as_deref_mut() {
                for &i in p.block(cur).instrs() {
                    fetched += 1;
                    if fetched > self.sim.max_fetches {
                        return Err(SimError::FetchCapExceeded {
                            cap: self.sim.max_fetches,
                        });
                    }
                    let addr = layout.addr(i);
                    last_addr = addr;
                    let mb = layout.block_of(i, block_bytes);
                    let hit = engine.fetch(mb);
                    for s in hw.on_fetch(addr, mb, !hit) {
                        engine.prefetch(s);
                    }
                    if let InstrKind::Prefetch { target } = p.instr(i).kind {
                        engine.prefetch(layout.block_of(target, block_bytes));
                    }
                }
            } else {
                for seg in &plan.segs[cur.index()] {
                    match *seg {
                        Seg::Fetch {
                            mb,
                            n,
                            last_addr: a,
                        } => {
                            fetched += u64::from(n);
                            if fetched > self.sim.max_fetches {
                                return Err(SimError::FetchCapExceeded {
                                    cap: self.sim.max_fetches,
                                });
                            }
                            engine.fetch_run(mb, n);
                            last_addr = a;
                        }
                        Seg::Prefetch { target } => engine.prefetch(target),
                    }
                }
            }

            // Choose the successor.
            let succs = p.succs(cur);
            if succs.is_empty() {
                break;
            }
            let next = if plan.bound[cur.index()].is_some() {
                let c = counters.get_mut(&cur).expect("counter set on entry");
                let want_body = *c > 0;
                if want_body {
                    *c -= 1;
                }
                // Count the matching successors without materializing them;
                // the RNG draw pattern is identical to the old collect.
                let mut count = 0usize;
                let mut first = None;
                for &(s, _) in succs {
                    if plan.in_body(cur, s) == want_body {
                        count += 1;
                        if first.is_none() {
                            first = Some(s);
                        }
                    }
                }
                match count {
                    0 => succs[rng.gen_range(0..succs.len())].0,
                    1 => first.expect("count said one match"),
                    n => {
                        let j = rng.gen_range(0..n);
                        succs
                            .iter()
                            .map(|&(s, _)| s)
                            .filter(|&s| plan.in_body(cur, s) == want_body)
                            .nth(j)
                            .expect("count said j-th match exists")
                    }
                }
            } else {
                succs[rng.gen_range(0..succs.len())].0
            };
            let kind = succs
                .iter()
                .find(|&&(s, _)| s == next)
                .map(|&(_, k)| k)
                .expect("chosen successor exists");

            // Loop-entry counter reset: entering a header from outside its
            // body starts a fresh iteration count.
            if let Some(bound) = plan.bound[next.index()] {
                if !plan.in_body(next, cur) {
                    counters.insert(next, choose_iters(&mut rng, bound));
                }
            }

            if let Some(hw) = hw.as_deref_mut() {
                if let Some(&first) = p.block(next).instrs().first() {
                    let tb = layout.block_of(first, block_bytes);
                    let taken = kind == rtpf_isa::EdgeKind::Taken;
                    for s in hw.on_branch(last_addr, tb, taken) {
                        engine.prefetch(s);
                    }
                }
            }

            cur = next;
        }
        Ok(fetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn sim(behavior: BranchBehavior) -> Simulator {
        Simulator::new(
            CacheConfig::new(2, 16, 256).unwrap(),
            MemTiming::default(),
            SimConfig {
                behavior,
                seed: 42,
                runs: 2,
                max_fetches: 1_000_000,
            },
        )
    }

    #[test]
    fn straight_line_executes_every_instruction() {
        let p = Shape::code(25).compile("s");
        let r = sim(BranchBehavior::WorstLike).run(&p).unwrap();
        assert_eq!(r.instr_executed, 25 * 2); // two runs
        assert_eq!(r.stats.accesses, 50);
    }

    #[test]
    fn worst_like_loop_runs_full_bound() {
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let r = sim(BranchBehavior::WorstLike).run(&p).unwrap();
        let per_run = r.instr_executed / 2;
        // body 5×10 + header 2×11 + entry/exit ≈ 73.
        assert!(per_run >= 50 + 20, "per_run = {per_run}");
    }

    #[test]
    fn random_policy_is_reproducible() {
        let p = Shape::loop_(50, Shape::if_else(1, Shape::code(9), Shape::code(2))).compile("r");
        let a = sim(BranchBehavior::Random).run(&p).unwrap();
        let b = sim(BranchBehavior::Random).run(&p).unwrap();
        assert_eq!(a.instr_executed, b.instr_executed);
        assert_eq!(a.stats.cycles, b.stats.cycles);
    }

    #[test]
    fn random_runs_at_most_bound_iterations() {
        let p = Shape::loop_(8, Shape::code(10)).compile("b");
        let r = sim(BranchBehavior::Random).run(&p).unwrap();
        // ≤ bound × body + overhead per run.
        assert!(r.instr_executed / 2 <= 8 * 10 + 30);
        assert!(r.instr_executed / 2 >= 10, "at least one iteration");
    }

    #[test]
    fn software_prefetch_reduces_cycles() {
        // Two loops over the same large footprint: version with prefetches
        // inserted before the second loop body should run faster on a tiny
        // cache... here simply check prefetch instructions execute and are
        // counted.
        let mut p = Shape::code(40).compile("pf");
        let entry = p.entry();
        let target = p.block(entry).instrs()[36];
        p.insert_instr(entry, 0, InstrKind::Prefetch { target })
            .unwrap();
        let r = sim(BranchBehavior::WorstLike).run(&p).unwrap();
        assert!(r.prefetches_issued >= 1);
    }

    #[test]
    fn fetch_cap_is_enforced() {
        let p = Shape::loop_(100, Shape::code(100)).compile("big");
        let s = Simulator::new(
            CacheConfig::new(2, 16, 256).unwrap(),
            MemTiming::default(),
            SimConfig {
                behavior: BranchBehavior::WorstLike,
                seed: 1,
                runs: 1,
                max_fetches: 100,
            },
        );
        assert!(matches!(
            s.run(&p),
            Err(SimError::FetchCapExceeded { cap: 100 })
        ));
    }

    #[test]
    fn batched_walk_matches_the_per_instruction_path() {
        // A no-op hardware prefetcher forces the exact per-instruction
        // fetch loop with the same RNG draw pattern, so it is a reference
        // implementation for the precompiled fetch-run path: every counter
        // must agree, for every policy, with and without software
        // prefetches.
        use rtpf_cache::ReplacementPolicy;
        struct NoopHw;
        impl crate::HwPrefetcher for NoopHw {
            fn on_fetch(&mut self, _: u64, _: MemBlockId, _: bool) -> Vec<MemBlockId> {
                Vec::new()
            }
            fn on_branch(&mut self, _: u64, _: MemBlockId, _: bool) -> Vec<MemBlockId> {
                Vec::new()
            }
        }
        let mut p =
            Shape::loop_(20, Shape::if_else(3, Shape::code(17), Shape::code(9))).compile("eq");
        let (tb, target) = p
            .block_ids()
            .find_map(|b| p.block(b).instrs().first().map(|&i| (b, i)))
            .expect("program has instructions");
        p.insert_instr(tb, 0, InstrKind::Prefetch { target })
            .unwrap();
        for policy in ReplacementPolicy::ALL {
            for behavior in [BranchBehavior::WorstLike, BranchBehavior::Random] {
                let cfg = CacheConfig::new(2, 16, 64)
                    .unwrap()
                    .with_policy(policy)
                    .unwrap();
                let s = Simulator::new(
                    cfg,
                    MemTiming::default(),
                    SimConfig {
                        behavior,
                        seed: 7,
                        runs: 2,
                        max_fetches: 1_000_000,
                    },
                );
                let fast = s.run(&p).unwrap();
                let slow = s.run_hw(&p, || Box::new(NoopHw)).unwrap();
                assert_eq!(fast, slow, "{policy} {behavior:?}");
            }
        }
    }

    #[test]
    fn nested_loops_terminate() {
        let p = Shape::loop_(5, Shape::loop_(5, Shape::loop_(5, Shape::code(3)))).compile("n");
        let r = sim(BranchBehavior::WorstLike).run(&p).unwrap();
        assert!(r.instr_executed > 0);
    }
}
