//! Aggregated simulation results.

use rtpf_energy::MemStats;

use crate::engine::CacheEngine;

/// Counters accumulated over all runs of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SimResult {
    /// Summed activity counters across runs.
    pub stats: MemStats,
    /// Number of runs absorbed.
    pub runs: u32,
    /// Total executed instructions across runs.
    pub instr_executed: u64,
    /// Prefetch operations issued across runs.
    pub prefetches_issued: u64,
    /// Demand fetches satisfied by a prefetch.
    pub prefetch_useful: u64,
    /// Cycles stalled waiting on in-flight prefetches.
    pub stall_cycles: u64,
}

impl SimResult {
    /// Folds one finished run into the aggregate.
    pub fn absorb(&mut self, engine: &CacheEngine, instrs: u64) {
        self.stats.accesses += engine.stats.accesses;
        self.stats.hits += engine.stats.hits;
        self.stats.misses += engine.stats.misses;
        self.stats.fills += engine.stats.fills;
        self.stats.cycles += engine.stats.cycles;
        self.stats.l2_accesses += engine.stats.l2_accesses;
        self.stats.l2_hits += engine.stats.l2_hits;
        self.stats.l2_misses += engine.stats.l2_misses;
        self.stats.l2_fills += engine.stats.l2_fills;
        self.runs += 1;
        self.instr_executed += instrs;
        self.prefetches_issued += engine.prefetches_issued;
        self.prefetch_useful += engine.prefetch_useful;
        self.stall_cycles += engine.stall_cycles;
    }

    /// Average-case execution time (memory contribution), in cycles per run.
    pub fn acet_cycles(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.stats.cycles as f64 / f64::from(self.runs)
        }
    }

    /// Miss rate over all runs.
    pub fn miss_rate(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.stats.misses as f64 / self.stats.accesses as f64
        }
    }

    /// Per-run mean activity counters (for energy evaluation).
    pub fn mean_stats(&self) -> MemStats {
        if self.runs == 0 {
            return MemStats::default();
        }
        let r = u64::from(self.runs);
        MemStats {
            accesses: self.stats.accesses / r,
            hits: self.stats.hits / r,
            misses: self.stats.misses / r,
            fills: self.stats.fills / r,
            cycles: self.stats.cycles / r,
            l2_accesses: self.stats.l2_accesses / r,
            l2_hits: self.stats.l2_hits / r,
            l2_misses: self.stats.l2_misses / r,
            l2_fills: self.stats.l2_fills / r,
        }
    }

    /// Executed instructions per run (paper Figure 8's numerator).
    pub fn mean_instr_executed(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.instr_executed as f64 / f64::from(self.runs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MemTiming};
    use rtpf_isa::MemBlockId;

    #[test]
    fn absorb_accumulates_and_means_divide() {
        let cfg = CacheConfig::new(2, 16, 64).unwrap();
        let mut r = SimResult::default();
        for _ in 0..2 {
            let mut e = CacheEngine::new(&cfg, MemTiming::default());
            e.fetch(MemBlockId(1));
            e.fetch(MemBlockId(1));
            r.absorb(&e, 2);
        }
        assert_eq!(r.runs, 2);
        assert_eq!(r.stats.accesses, 4);
        assert_eq!(r.mean_stats().accesses, 2);
        assert_eq!(r.mean_instr_executed(), 2.0);
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
        assert!(r.acet_cycles() > 0.0);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SimResult::default();
        assert_eq!(r.acet_cycles(), 0.0);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.mean_stats(), MemStats::default());
    }
}
