//! Trace-driven instruction-cache simulation.
//!
//! This crate substitutes for the gem5 instruction-set simulator the paper
//! used to collect fetch traces for ACET and energy estimation. Instead of
//! materializing traces, [`Simulator`] walks the program's CFG directly
//! under a [`BranchBehavior`] policy (loop bounds are respected; branch
//! outcomes are drawn from a seeded RNG), feeding every instruction fetch
//! through a cycle-accounting cache engine that models:
//!
//! * set-associative LRU lookups with hit/miss timing,
//! * **non-blocking software prefetch**: a `prefetch` instruction issues a
//!   fill that completes `Λ` cycles later; a demand fetch of an in-flight
//!   block stalls only for the remaining latency,
//! * optional hardware prefetchers ([`HwPrefetcher`], implemented by
//!   `rtpf-baselines`),
//! * optional statically locked cache contents (the locking baseline).
//!
//! The result is a [`MemStats`](rtpf_energy::MemStats) ready for the
//! [`EnergyModel`](rtpf_energy::EnergyModel).
//!
//! # Example
//!
//! ```
//! use rtpf_cache::{CacheConfig, MemTiming};
//! use rtpf_isa::shape::Shape;
//! use rtpf_sim::{BranchBehavior, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Shape::loop_(100, Shape::code(12)).compile("hot");
//! let config = CacheConfig::new(2, 16, 256)?;
//! let sim = Simulator::new(config, MemTiming::default(), SimConfig::default());
//! let r = sim.run(&p)?;
//! assert!(r.stats.hits > r.stats.misses, "loop should be cache friendly");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod exec;
pub mod result;

pub use engine::{CacheEngine, HwPrefetcher, LockedContents};
pub use exec::{BranchBehavior, SimConfig, SimError, Simulator};
pub use result::SimResult;
