//! Cycle-accounting cache engine with non-blocking prefetch.

use std::collections::BTreeSet;

use rtpf_cache::{CacheConfig, ConcreteState, HierarchyConfig, MemTiming};
use rtpf_energy::MemStats;
use rtpf_isa::MemBlockId;

/// Hook for hardware prefetching baselines.
///
/// The simulator reports fetches and resolved control transfers; every
/// suggested block is issued as a non-blocking fill (if not already cached
/// or in flight). Implementations live in `rtpf-baselines`.
pub trait HwPrefetcher {
    /// Called after a demand fetch at `addr` of `block`; returns blocks to
    /// prefetch (e.g. the next line).
    fn on_fetch(&mut self, addr: u64, block: MemBlockId, was_miss: bool) -> Vec<MemBlockId>;

    /// Called after a control transfer from the branch at `branch_addr` to
    /// a target in `target_block`; `taken` distinguishes taken branches
    /// from fall-through. Returns blocks to prefetch (e.g. the predicted
    /// target from an RPT).
    fn on_branch(
        &mut self,
        branch_addr: u64,
        target_block: MemBlockId,
        taken: bool,
    ) -> Vec<MemBlockId>;
}

/// Statically locked cache contents: a set of blocks that always hit and
/// are never evicted; everything else bypasses the cache straight to the
/// level-two memory (the classic full-lock model of [4, 14]).
#[derive(Clone, Debug, Default)]
pub struct LockedContents {
    blocks: BTreeSet<MemBlockId>,
}

impl LockedContents {
    /// Locks exactly the given blocks.
    pub fn new(blocks: impl IntoIterator<Item = MemBlockId>) -> Self {
        LockedContents {
            blocks: blocks.into_iter().collect(),
        }
    }

    /// Whether `block` is locked in.
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.blocks.contains(&block)
    }

    /// Number of locked blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether nothing is locked.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The simulation cache: the exact policy state (LRU/FIFO/tree-PLRU, per
/// the configuration), prefetch port, counters, and clock.
#[derive(Debug)]
pub struct CacheEngine {
    cache: ConcreteState,
    /// Unified second level, filled from DRAM on its own misses
    /// (fill-inclusive, no back-invalidation — mirrors
    /// [`rtpf_cache::ConcreteHierarchy`]).
    l2: Option<ConcreteState>,
    /// Cost of an L1-miss-L2-hit (`miss_cycles` when no L2 latency given).
    l2_hit_cycles: u64,
    timing: MemTiming,
    locked: Option<LockedContents>,
    /// Prefetches in flight: `(block, ready_cycle)`.
    inflight: Vec<(MemBlockId, u64)>,
    /// Current cycle.
    pub cycle: u64,
    /// Activity counters.
    pub stats: MemStats,
    /// Prefetch operations issued (software + hardware).
    pub prefetches_issued: u64,
    /// Demand fetches that hit only thanks to a completed/in-flight prefetch.
    pub prefetch_useful: u64,
    /// Cycles spent stalling on in-flight prefetches.
    pub stall_cycles: u64,
    /// Blocks most recently installed by a prefetch (for usefulness stats).
    prefetched: BTreeSet<MemBlockId>,
}

impl CacheEngine {
    /// A cold engine for the given configuration (geometry *and*
    /// replacement policy) and timing.
    pub fn new(config: &CacheConfig, timing: MemTiming) -> Self {
        Self::new_hierarchy(&HierarchyConfig::l1_only(*config), timing)
    }

    /// A cold engine for a full hierarchy: with an L2 present, L1 misses
    /// look it up before going to DRAM, and an L2 hit costs
    /// [`MemTiming::l2_hit_cycles`] instead of the full miss penalty.
    pub fn new_hierarchy(hierarchy: &HierarchyConfig, timing: MemTiming) -> Self {
        CacheEngine {
            cache: ConcreteState::new(hierarchy.l1()),
            l2: hierarchy.l2().map(ConcreteState::new),
            l2_hit_cycles: timing.l2_hit_cycles.unwrap_or(timing.miss_cycles),
            timing,
            locked: None,
            inflight: Vec::new(),
            cycle: 0,
            stats: MemStats::default(),
            prefetches_issued: 0,
            prefetch_useful: 0,
            stall_cycles: 0,
            prefetched: BTreeSet::new(),
        }
    }

    /// Serves an L1 miss from the levels below: looks up the L2 when
    /// present (filling it from DRAM on an L2 miss) and returns the cycle
    /// cost of the whole round trip.
    fn memory_latency(&mut self, block: MemBlockId) -> u64 {
        match &mut self.l2 {
            Some(l2) => {
                self.stats.l2_accesses += 1;
                if l2.access(block).is_hit() {
                    self.stats.l2_hits += 1;
                    self.l2_hit_cycles
                } else {
                    self.stats.l2_misses += 1;
                    self.stats.l2_fills += 1;
                    self.timing.miss_cycles
                }
            }
            None => self.timing.miss_cycles,
        }
    }

    /// Replaces normal operation with statically locked contents.
    pub fn lock(&mut self, contents: LockedContents) {
        self.locked = Some(contents);
    }

    /// Completes every prefetch whose latency has elapsed, installing the
    /// block (counted as a fill, not a demand access).
    fn drain_inflight(&mut self) {
        let now = self.cycle;
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].1 <= now {
                let (block, _) = self.inflight.swap_remove(i);
                self.cache.access(block);
                self.stats.fills += 1;
                self.prefetched.insert(block);
            } else {
                i += 1;
            }
        }
    }

    /// A demand instruction fetch of `block`. Advances the clock and
    /// returns whether it hit.
    pub fn fetch(&mut self, block: MemBlockId) -> bool {
        self.drain_inflight();
        self.stats.accesses += 1;

        if let Some(locked) = &self.locked {
            // Locked cache: locked blocks hit, everything else goes to DRAM
            // every time (no fill, no pollution).
            let hit = locked.contains(block);
            if hit {
                self.stats.hits += 1;
                self.cycle += self.timing.hit_cycles;
            } else {
                self.stats.misses += 1;
                // Only the L1 is locked; the bypassing access is still
                // served by (and allocates in) the L2 when one exists.
                self.cycle += self.memory_latency(block);
                self.stats.fills += 1; // the block transfer still happens
            }
            self.stats.cycles = self.cycle;
            return hit;
        }

        // An in-flight prefetch of this block: stall for the remaining
        // latency, then count as a (prefetch-assisted) hit.
        if let Some(pos) = self.inflight.iter().position(|&(b, _)| b == block) {
            let (b, ready) = self.inflight.swap_remove(pos);
            let wait = ready.saturating_sub(self.cycle);
            self.stall_cycles += wait;
            self.cycle += wait;
            self.cache.access(b);
            self.stats.fills += 1;
            self.prefetched.insert(b);
            self.stats.hits += 1;
            self.prefetch_useful += 1;
            self.cycle += self.timing.hit_cycles;
            self.stats.cycles = self.cycle;
            return true;
        }

        let outcome = self.cache.access(block);
        if outcome.is_hit() {
            self.stats.hits += 1;
            if self.prefetched.remove(&block) {
                self.prefetch_useful += 1;
            }
            self.cycle += self.timing.hit_cycles;
        } else {
            self.stats.misses += 1;
            self.stats.fills += 1;
            self.cycle += self.memory_latency(block);
            if let Some(ev) = outcome.evicted() {
                self.prefetched.remove(&ev);
            }
        }
        self.stats.cycles = self.cycle;
        outcome.is_hit()
    }

    /// A demand fetch of `block` immediately followed by `n - 1` repeat
    /// fetches of the same block (consecutive instructions sharing one
    /// memory block). Exactly equivalent to calling [`CacheEngine::fetch`]
    /// `n` times: after the first access the block is resident, and a
    /// repeat access to the resident block cannot change the replacement
    /// state under any supported policy (LRU re-promotes the front, FIFO
    /// never reorders, tree-PLRU's touch is idempotent), so with no
    /// prefetch in flight the repeats collapse to counter arithmetic.
    /// Returns whether the *first* access hit.
    pub fn fetch_run(&mut self, block: MemBlockId, n: u32) -> bool {
        let hit = self.fetch(block);
        let rest = u64::from(n.saturating_sub(1));
        if rest == 0 {
            return hit;
        }
        if !self.inflight.is_empty() || self.locked.is_some() {
            // An in-flight prefetch could complete mid-run (its install
            // order interleaves with the repeat hits), and a locked cache
            // re-misses unlocked blocks on every repeat; take the exact
            // path.
            for _ in 0..rest {
                self.fetch(block);
            }
            return hit;
        }
        self.stats.accesses += rest;
        self.stats.hits += rest;
        // Mirrors the per-repeat bookkeeping; by this point the first
        // fetch has already consumed any `prefetched` entry, so this is
        // the same no-op the individual hits would perform.
        if self.prefetched.remove(&block) {
            self.prefetch_useful += 1;
        }
        self.cycle += rest * self.timing.hit_cycles;
        self.stats.cycles = self.cycle;
        hit
    }

    /// Issues a non-blocking prefetch of `block` (no clock cost beyond the
    /// instruction fetch, which the caller accounts separately). With an
    /// L2, a prefetch whose target is L2-resident completes after the L2
    /// round trip instead of the full DRAM latency.
    pub fn prefetch(&mut self, block: MemBlockId) {
        self.drain_inflight();
        if self.cache.contains(block) {
            return;
        }
        if self.inflight.iter().any(|&(b, _)| b == block) {
            return;
        }
        self.prefetches_issued += 1;
        let latency = match &mut self.l2 {
            Some(l2) => {
                self.stats.l2_accesses += 1;
                if l2.access(block).is_hit() {
                    self.stats.l2_hits += 1;
                    self.l2_hit_cycles.saturating_sub(self.timing.hit_cycles)
                } else {
                    self.stats.l2_misses += 1;
                    self.stats.l2_fills += 1;
                    self.timing.prefetch_latency
                }
            }
            None => self.timing.prefetch_latency,
        };
        self.inflight.push((block, self.cycle + latency));
    }

    /// Whether `block` is currently cached in L1 (completed fills only).
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.cache.contains(block)
    }

    /// The L2 contents, when the engine simulates a two-level hierarchy.
    pub fn l2(&self) -> Option<&ConcreteState> {
        self.l2.as_ref()
    }

    /// The timing model in use.
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CacheEngine {
        let cfg = CacheConfig::new(2, 16, 64).unwrap();
        CacheEngine::new(&cfg, MemTiming::with_miss_penalty(20))
    }

    #[test]
    fn demand_miss_then_hit() {
        let mut e = engine();
        assert!(!e.fetch(MemBlockId(1)));
        assert!(e.fetch(MemBlockId(1)));
        assert_eq!(e.stats.misses, 1);
        assert_eq!(e.stats.hits, 1);
        assert_eq!(e.cycle, 21 + 1);
    }

    #[test]
    fn prefetch_hides_latency_when_early_enough() {
        let mut e = engine();
        e.prefetch(MemBlockId(9));
        // Burn more than Λ = 21 cycles on other fetches.
        e.fetch(MemBlockId(1)); // miss, 21 cycles
        e.fetch(MemBlockId(1)); // hit, 1 cycle
        assert!(e.cycle >= 21);
        let hit = e.fetch(MemBlockId(9));
        assert!(hit, "prefetched block must hit");
        assert_eq!(e.stall_cycles, 0);
        assert_eq!(e.prefetch_useful, 1);
    }

    #[test]
    fn late_prefetch_stalls_only_residual() {
        let mut e = engine();
        e.fetch(MemBlockId(1)); // 21 cycles
        e.prefetch(MemBlockId(9)); // ready at 21 + 21 = 42
        e.fetch(MemBlockId(1)); // hit → cycle 22
        let before = e.cycle;
        let hit = e.fetch(MemBlockId(9));
        assert!(hit);
        // Stalled 42 − 22 = 20 cycles + 1 hit cycle; cheaper than a miss.
        assert_eq!(e.cycle, before + 20 + 1);
        assert_eq!(e.stall_cycles, 20);
    }

    #[test]
    fn prefetch_of_cached_block_is_a_no_op() {
        let mut e = engine();
        e.fetch(MemBlockId(3));
        e.prefetch(MemBlockId(3));
        assert_eq!(e.prefetches_issued, 0);
    }

    #[test]
    fn duplicate_inflight_prefetch_is_deduplicated() {
        let mut e = engine();
        e.prefetch(MemBlockId(5));
        e.prefetch(MemBlockId(5));
        assert_eq!(e.prefetches_issued, 1);
    }

    #[test]
    fn locked_cache_hits_only_locked_blocks() {
        let mut e = engine();
        e.lock(LockedContents::new([MemBlockId(1), MemBlockId(2)]));
        assert!(e.fetch(MemBlockId(1)));
        assert!(e.fetch(MemBlockId(2)));
        assert!(!e.fetch(MemBlockId(3)));
        assert!(!e.fetch(MemBlockId(3)), "unlocked blocks never allocate");
        assert_eq!(e.stats.hits, 2);
        assert_eq!(e.stats.misses, 2);
    }

    #[test]
    fn counters_reconcile() {
        let mut e = engine();
        for b in [1u64, 2, 3, 1, 2, 3, 4, 1] {
            e.fetch(MemBlockId(b));
        }
        assert_eq!(e.stats.accesses, 8);
        assert_eq!(e.stats.hits + e.stats.misses, 8);
        assert_eq!(e.stats.cycles, e.cycle);
    }

    fn two_level() -> CacheEngine {
        // L1: one 2-way set over 16 B blocks; L2: 4-way, 16 blocks.
        let l1 = CacheConfig::new(2, 16, 32).unwrap();
        let l2 = CacheConfig::new(4, 16, 256).unwrap();
        let h = HierarchyConfig::two_level(l1, l2).unwrap();
        CacheEngine::new_hierarchy(&h, MemTiming::with_miss_penalty(20).with_l2_hit(8))
    }

    #[test]
    fn l1_only_engine_keeps_l2_counters_at_zero() {
        let mut e = engine();
        for b in [1u64, 2, 3, 1, 2, 3] {
            e.fetch(MemBlockId(b));
        }
        assert!(e.l2().is_none());
        assert_eq!(e.stats.l2_accesses, 0);
        assert_eq!(e.stats.l2_hits, 0);
        assert_eq!(e.stats.l2_misses, 0);
        assert_eq!(e.stats.l2_fills, 0);
    }

    #[test]
    fn l2_hit_costs_less_than_a_dram_miss() {
        let mut e = two_level();
        // Cold: miss in both levels, full DRAM penalty.
        assert!(!e.fetch(MemBlockId(1)));
        assert_eq!(e.cycle, 21);
        assert_eq!(
            (e.stats.l2_accesses, e.stats.l2_misses, e.stats.l2_fills),
            (1, 1, 1)
        );
        // Evict 1 from the single 2-way L1 set; the L2 keeps everything.
        e.fetch(MemBlockId(2));
        e.fetch(MemBlockId(3));
        let before = e.cycle;
        // L1 miss, L2 hit: pays 8, not 21.
        assert!(!e.fetch(MemBlockId(1)));
        assert_eq!(e.cycle, before + 8);
        assert_eq!(e.stats.l2_hits, 1);
        // The L2 access total reconciles.
        assert_eq!(e.stats.l2_accesses, e.stats.l2_hits + e.stats.l2_misses);
        assert_eq!(e.stats.l2_fills, e.stats.l2_misses);
    }

    #[test]
    fn repeat_hits_never_touch_the_l2() {
        let mut e = two_level();
        e.fetch_run(MemBlockId(7), 50);
        // One L1 miss went down; the 49 repeat hits stayed in L1.
        assert_eq!(e.stats.accesses, 50);
        assert_eq!(e.stats.misses, 1);
        assert_eq!(e.stats.l2_accesses, 1);
    }

    #[test]
    fn l2_accesses_reconcile_with_l1_misses_and_prefetches() {
        let mut e = two_level();
        for b in [1u64, 2, 3, 1, 2, 3, 4, 1] {
            e.fetch(MemBlockId(b));
        }
        e.prefetch(MemBlockId(9));
        assert_eq!(
            e.stats.l2_accesses,
            e.stats.misses + e.prefetches_issued,
            "every L1 miss and every issued prefetch consults the L2, nothing else does"
        );
    }

    #[test]
    fn prefetch_from_l2_completes_after_the_l2_round_trip() {
        let mut e = two_level();
        // Install 9 in the L2 (and L1), then push it out of the tiny L1.
        e.fetch(MemBlockId(9));
        e.fetch(MemBlockId(1));
        e.fetch(MemBlockId(2));
        assert!(!e.contains(MemBlockId(9)));
        let start = e.cycle;
        e.prefetch(MemBlockId(9));
        // Fetch immediately: the stall is the L2 residual (8 − 1), far
        // below the DRAM prefetch latency of 20.
        assert!(e.fetch(MemBlockId(9)));
        assert_eq!(e.stall_cycles, 7);
        assert_eq!(e.cycle, start + 7 + 1);
        assert_eq!(e.prefetch_useful, 1);
    }

    #[test]
    fn locked_l1_miss_is_served_by_the_l2() {
        let mut e = two_level();
        e.lock(LockedContents::new([MemBlockId(1)]));
        assert!(e.fetch(MemBlockId(1)));
        // First bypass: L2 miss, full penalty; the L2 allocates.
        let before = e.cycle;
        assert!(!e.fetch(MemBlockId(5)));
        assert_eq!(e.cycle, before + 21);
        // Second bypass of the same block: L2 hit.
        let before = e.cycle;
        assert!(!e.fetch(MemBlockId(5)));
        assert_eq!(e.cycle, before + 8);
        assert_eq!(e.stats.l2_hits, 1);
    }

    #[test]
    fn degenerate_hierarchy_engine_matches_plain_engine() {
        let cfg = CacheConfig::new(2, 16, 64).unwrap();
        let timing = MemTiming::with_miss_penalty(20);
        let mut plain = CacheEngine::new(&cfg, timing);
        let mut degen = CacheEngine::new_hierarchy(&HierarchyConfig::l1_only(cfg), timing);
        for b in [1u64, 2, 3, 1, 9, 2, 3, 4, 1, 5, 2, 9] {
            assert_eq!(plain.fetch(MemBlockId(b)), degen.fetch(MemBlockId(b)));
        }
        plain.prefetch(MemBlockId(30));
        degen.prefetch(MemBlockId(30));
        plain.fetch(MemBlockId(30));
        degen.fetch(MemBlockId(30));
        assert_eq!(plain.stats, degen.stats);
        assert_eq!(plain.cycle, degen.cycle);
        assert_eq!(plain.stall_cycles, degen.stall_cycles);
    }

    #[test]
    fn engine_follows_the_configured_policy() {
        use rtpf_cache::ReplacementPolicy;
        // Single 2-way set. The string [1, 2, 1, 3, 1] separates LRU from
        // FIFO: the hit on 1 protects it under LRU but not FIFO.
        let string = [1u64, 2, 1, 3, 1];
        let run = |policy| {
            let cfg = CacheConfig::new(2, 16, 32)
                .unwrap()
                .with_policy(policy)
                .unwrap();
            let mut e = CacheEngine::new(&cfg, MemTiming::with_miss_penalty(20));
            string
                .iter()
                .map(|&b| e.fetch(MemBlockId(b)))
                .collect::<Vec<bool>>()
        };
        assert_eq!(
            run(ReplacementPolicy::Lru),
            [false, false, true, false, true]
        );
        // FIFO: the hit does not refresh 1, so 3 evicts it.
        assert_eq!(
            run(ReplacementPolicy::Fifo),
            [false, false, true, false, false]
        );
        // Every policy keeps the counters consistent.
        for policy in ReplacementPolicy::ALL {
            let cfg = CacheConfig::new(2, 16, 64)
                .unwrap()
                .with_policy(policy)
                .unwrap();
            let mut e = CacheEngine::new(&cfg, MemTiming::with_miss_penalty(20));
            for b in [1u64, 2, 3, 1, 2, 3, 4, 1, 5, 2] {
                e.fetch(MemBlockId(b));
            }
            assert_eq!(e.stats.hits + e.stats.misses, e.stats.accesses);
            assert_eq!(e.stats.cycles, e.cycle);
        }
    }
}
