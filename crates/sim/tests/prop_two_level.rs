//! Property tests for the exact two-level simulation.
//!
//! The concrete half of the L1-filter guarantee: the engine consults the
//! L2 *only* when an access leaves the L1 — on a demand L1 miss or an
//! issued prefetch — so any fetch that hits L1 contributes zero L2
//! accesses. Together with soundness of the abstract classification (an
//! L1 always-hit reference concretely hits L1 in every run, re-checked by
//! `rtpf-audit`), this pins the end-to-end claim: L1-always-hit
//! references never reach the L2, in the abstract update and in the
//! exact simulator alike.

use proptest::prelude::*;

use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming};
use rtpf_isa::shape::Shape;
use rtpf_isa::{InstrId, InstrKind, Program};
use rtpf_sim::{BranchBehavior, SimConfig, Simulator};

/// Random structured programs: bounded depth, bounded loop bounds.
fn shapes() -> impl Strategy<Value = Shape> {
    let leaf = (1u32..30).prop_map(Shape::code);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::seq),
            (0u32..3, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Shape::if_else(c, a, b)),
            (0u32..3, inner.clone()).prop_map(|(c, a)| Shape::if_then(c, a)),
            (1u32..8, inner.clone()).prop_map(|(n, b)| Shape::loop_(n, b)),
        ]
    })
}

fn hierarchies() -> impl Strategy<Value = HierarchyConfig> {
    (0usize..3, 0usize..3).prop_map(|(l1_sel, l2_mult)| {
        let l1s = [
            CacheConfig::new(1, 16, 64).unwrap(),
            CacheConfig::new(2, 16, 128).unwrap(),
            CacheConfig::new(2, 32, 256).unwrap(),
        ];
        let l1 = l1s[l1_sel];
        let l2 = CacheConfig::new(
            4,
            l1.block_bytes(),
            l1.capacity_bytes() << (l2_mult as u32 + 1),
        )
        .unwrap();
        HierarchyConfig::two_level(l1, l2).unwrap()
    })
}

fn timing() -> MemTiming {
    MemTiming::with_miss_penalty(20).with_l2_hit(8)
}

fn sim_config(behavior: BranchBehavior) -> SimConfig {
    SimConfig {
        behavior,
        seed: 1234,
        runs: 2,
        max_fetches: 1_000_000,
    }
}

fn insert_prefetch(p: &mut Program, anchor_sel: usize, target_sel: usize) {
    let instrs: Vec<InstrId> = p
        .block_ids()
        .flat_map(|b| p.block(b).instrs().to_vec())
        .collect();
    let anchor = instrs[anchor_sel % instrs.len()];
    let target = instrs[target_sel % instrs.len()];
    let bb = p.block_of(anchor);
    let pos = p.pos_in_block(anchor);
    p.insert_instr(bb, pos, InstrKind::Prefetch { target })
        .expect("insertion at an existing position");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Only L1 misses and issued prefetches reach the L2 — an access that
    /// hits L1 contributes zero L2 accesses.
    #[test]
    fn l2_is_consulted_exactly_on_l1_misses_and_prefetch_issues(
        shape in shapes(),
        hierarchy in hierarchies(),
        anchor_sel in 0usize..10_000,
        target_sel in 0usize..10_000,
        behavior in prop_oneof![Just(BranchBehavior::WorstLike), Just(BranchBehavior::Random)],
    ) {
        let mut p = shape.compile("prop");
        insert_prefetch(&mut p, anchor_sel, target_sel);
        let s = Simulator::new_hierarchy(hierarchy, timing(), sim_config(behavior));
        let r = s.run(&p).expect("simulation");
        prop_assert_eq!(r.stats.l2_accesses, r.stats.misses + r.prefetches_issued);
        prop_assert_eq!(r.stats.l2_accesses, r.stats.l2_hits + r.stats.l2_misses);
        prop_assert_eq!(r.stats.l2_fills, r.stats.l2_misses);
    }

    /// Without prefetches the L1 reference stream is independent of the
    /// L2, so a two-level run repeats the single-level run's hit/miss
    /// sequence and can only get cheaper.
    #[test]
    fn l2_preserves_l1_behaviour_and_never_slows_the_run(
        shape in shapes(),
        hierarchy in hierarchies(),
    ) {
        let p = shape.compile("prop");
        let t = timing();
        let single = Simulator::new(*hierarchy.l1(), t, sim_config(BranchBehavior::Random))
            .run(&p)
            .expect("single-level simulation");
        let two = Simulator::new_hierarchy(hierarchy, t, sim_config(BranchBehavior::Random))
            .run(&p)
            .expect("two-level simulation");
        prop_assert_eq!(two.stats.accesses, single.stats.accesses);
        prop_assert_eq!(two.stats.hits, single.stats.hits);
        prop_assert_eq!(two.stats.misses, single.stats.misses);
        prop_assert_eq!(two.stats.fills, single.stats.fills);
        prop_assert!(two.stats.cycles <= single.stats.cycles);
    }

    /// The degenerate hierarchy is the single-level simulator, verbatim.
    #[test]
    fn degenerate_hierarchy_simulation_is_identical(
        shape in shapes(),
        anchor_sel in 0usize..10_000,
        target_sel in 0usize..10_000,
    ) {
        let mut p = shape.compile("prop");
        insert_prefetch(&mut p, anchor_sel, target_sel);
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let t = MemTiming::default();
        let plain = Simulator::new(config, t, sim_config(BranchBehavior::Random))
            .run(&p)
            .expect("plain simulation");
        let degen = Simulator::new_hierarchy(
            HierarchyConfig::l1_only(config),
            t,
            sim_config(BranchBehavior::Random),
        )
        .run(&p)
        .expect("degenerate simulation");
        prop_assert_eq!(plain, degen);
    }
}
