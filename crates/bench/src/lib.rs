//! Criterion benchmark host crate; see the `benches/` directory.
//!
//! Run with `cargo bench -p rtpf-bench`. Each bench file covers one
//! artefact group: cache-model throughput, IPET solver comparison,
//! analysis/optimizer scalability, per-figure paths, and ablations.
#![forbid(unsafe_code)]
