//! Concurrent load generator for `rtpfd`: `results/bench_serve.json`.
//!
//! Drives a daemon (an in-process one by default, or an external one via
//! `--addr`/`--port-file`) with a *mixed* workload — every service
//! operation (analyze / optimize / audit / simulate) across a program ×
//! configuration grid — from many concurrent clients, twice:
//!
//! * **cold**: the first pass computes every artifact. The `/metrics`
//!   miss delta must not exceed the number of distinct artifacts the
//!   workload can produce — concurrent duplicates of an in-flight key
//!   must coalesce, never recompute (the single-flight guarantee, as an
//!   exact counter assertion).
//! * **warm**: the second pass must be served entirely from the store
//!   (miss delta exactly zero).
//!
//! Both passes record wall-clock, requests/s, and p50/p99 latency; the
//! store's hit/miss/coalesce counters complete the record.
//!
//! ```text
//! cargo run --release -p rtpf-bench --bin loadgen -- --record   # full, 1000 clients
//! cargo run --release -p rtpf-bench --bin loadgen -- --smoke --record
//! cargo run --release -p rtpf-bench --bin loadgen -- --check    # CI regression gate
//! loadgen --port-file /tmp/rtpfd.port --smoke --shutdown        # CI rtpfd-smoke
//! ```
//!
//! `--check` reruns the smoke workload and fails (exit 1) when its warm
//! wall-clock regresses more than 2x against the committed smoke record
//! — wide because daemon throughput on shared CI runners is noisy; the
//! exactly-once assertions above are exact and always enforced.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use rtpf_engine::{ConfigSpec, ProgramSource, ServiceOp, ServiceRequest};
use rtpf_serve::http::request as http_request;
use rtpf_serve::json::Value;
use rtpf_serve::{encode_request, Daemon, DaemonConfig};

const FULL_CLIENTS: usize = 1000;
const SMOKE_CLIENTS: usize = 64;
/// Same smoke slice as `bench_sweep`.
const SMOKE_PROGRAMS: [&str; 3] = ["bs", "fft1", "statemate"];
/// CI gate: fail when the fresh warm wall-clock exceeds the committed
/// record by more than this factor.
const REGRESSION_FACTOR: f64 = 2.0;
const TIMEOUT: Duration = Duration::from_secs(300);

fn results_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_serve.json")
}

/// The mixed workload: every op × program × configuration unit.
fn workload(smoke: bool) -> Vec<ServiceRequest> {
    let programs: Vec<&str> = if smoke {
        SMOKE_PROGRAMS.to_vec()
    } else {
        rtpf_suite::catalog().iter().map(|b| b.name).collect()
    };
    // One representative Table 2 geometry; the grid axis the daemon is
    // being benched on is concurrency, not configuration count.
    let caches = ["2:16:512"];
    let mut reqs = Vec::new();
    for program in &programs {
        for cache in &caches {
            for op in [
                ServiceOp::Analyze,
                ServiceOp::Optimize,
                ServiceOp::Audit,
                ServiceOp::Simulate,
            ] {
                reqs.push(ServiceRequest {
                    op,
                    program: ProgramSource::Spec(format!("suite:{program}")),
                    config: ConfigSpec {
                        cache: cache.to_string(),
                        ..ConfigSpec::default()
                    },
                });
            }
        }
    }
    reqs
}

/// Distinct store computations the workload can cause, at most once
/// each: per (program, configuration) — one Analyze artifact (shared by
/// `analyze` and `audit`), one Optimize + one Verify (the `optimize`
/// op), one Simulate. Suite programs load without a Parse artifact.
fn expected_misses(distinct_units: usize) -> u64 {
    distinct_units as u64 * 4
}

struct PhaseRecord {
    wall_ms: f64,
    requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct SectionRecord {
    clients: usize,
    distinct: usize,
    cold: PhaseRecord,
    warm: PhaseRecord,
    hits: u64,
    misses: u64,
    coalesced: u64,
    hit_rate: f64,
}

impl PhaseRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"wall_ms\": {:.1}, \"requests\": {}, \"rps\": {:.1}, \
             \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
            self.wall_ms, self.requests, self.rps, self.p50_ms, self.p99_ms
        )
    }

    fn from_json(v: &Value) -> Option<PhaseRecord> {
        Some(PhaseRecord {
            wall_ms: v.get("wall_ms")?.as_f64()?,
            requests: v.get("requests")?.as_u64()? as usize,
            rps: v.get("rps")?.as_f64()?,
            p50_ms: v.get("p50_ms")?.as_f64()?,
            p99_ms: v.get("p99_ms")?.as_f64()?,
        })
    }
}

impl SectionRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\n    \"clients\": {}, \"distinct\": {},\n    \"cold\": {},\n    \"warm\": {},\n    \
             \"store\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"hit_rate\": {:.4}}}\n  }}",
            self.clients,
            self.distinct,
            self.cold.to_json(),
            self.warm.to_json(),
            self.hits,
            self.misses,
            self.coalesced,
            self.hit_rate
        )
    }

    fn from_json(v: &Value) -> Option<SectionRecord> {
        let store = v.get("store")?;
        Some(SectionRecord {
            clients: v.get("clients")?.as_u64()? as usize,
            distinct: v.get("distinct")?.as_u64()? as usize,
            cold: PhaseRecord::from_json(v.get("cold")?)?,
            warm: PhaseRecord::from_json(v.get("warm")?)?,
            hits: store.get("hits")?.as_u64()?,
            misses: store.get("misses")?.as_u64()?,
            coalesced: store.get("coalesced")?.as_u64()?,
            hit_rate: store.get("hit_rate")?.as_f64()?,
        })
    }
}

#[derive(Default)]
struct ResultsFile {
    full: Option<SectionRecord>,
    smoke: Option<SectionRecord>,
}

impl ResultsFile {
    fn load() -> ResultsFile {
        let Ok(text) = std::fs::read_to_string(results_path()) else {
            return ResultsFile::default();
        };
        let Ok(doc) = Value::parse(&text) else {
            return ResultsFile::default();
        };
        ResultsFile {
            full: doc.get("full").and_then(SectionRecord::from_json),
            smoke: doc.get("smoke").and_then(SectionRecord::from_json),
        }
    }

    fn store(&self) {
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "  \"units\": \"milliseconds; mixed analyze/optimize/audit/simulate workload, \
             concurrent clients, cold then warm pass\","
        );
        if let Some(full) = &self.full {
            let _ = writeln!(s, "  \"full\": {},", full.to_json());
        }
        if let Some(smoke) = &self.smoke {
            let names: Vec<String> = SMOKE_PROGRAMS.iter().map(|p| format!("\"{p}\"")).collect();
            let _ = writeln!(s, "  \"smoke_programs\": [{}],", names.join(", "));
            let _ = writeln!(s, "  \"smoke\": {},", smoke.to_json());
        }
        while s.ends_with('\n') || s.ends_with(',') {
            s.truncate(s.len() - 1);
        }
        s.push_str("\n}\n");
        let path = results_path();
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("results dir");
        std::fs::write(&path, s).expect("write bench_serve.json");
        println!("wrote {}", path.display());
    }
}

struct Target {
    addr: String,
    /// The in-process daemon's thread, when loadgen owns the daemon.
    daemon: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

struct Metrics {
    hits: u64,
    misses: u64,
    coalesced: u64,
}

impl Target {
    fn metrics(&self) -> Metrics {
        let resp = http_request(self.addr.as_str(), "/metrics", None, TIMEOUT)
            .expect("/metrics reachable");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = Value::parse(&resp.body).expect("metrics json parses");
        let store = doc.get("store").expect("metrics carries a store section");
        let n = |k: &str| store.get(k).and_then(Value::as_u64).expect("counter");
        Metrics {
            hits: n("hits"),
            misses: n("misses"),
            coalesced: n("coalesced"),
        }
    }

    fn shutdown(self) {
        let resp = http_request(self.addr.as_str(), "/shutdown", Some("{}"), TIMEOUT)
            .expect("/shutdown reachable");
        assert_eq!(resp.status, 200, "{}", resp.body);
        if let Some(thread) = self.daemon {
            thread
                .join()
                .expect("daemon thread joins")
                .expect("daemon drains cleanly");
        }
    }
}

/// Fires the whole request list from `clients` concurrent client
/// threads (small stacks — a thousand clients is the point, not a
/// thousand megabytes), returning the latency record.
fn run_phase(addr: &str, requests: &[(String, String)], clients: usize) -> PhaseRecord {
    let requests = Arc::new(requests.to_vec());
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(requests.len())));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let addr = Arc::new(addr.to_string());

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let requests = Arc::clone(&requests);
            let latencies = Arc::clone(&latencies);
            let barrier = Arc::clone(&barrier);
            let addr = Arc::clone(&addr);
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    barrier.wait();
                    let mut mine = Vec::new();
                    // Client c serves every c-th request: all clients in
                    // flight together, each on its own connections.
                    for (path, body) in requests.iter().skip(c).step_by(clients.max(1)) {
                        let t0 = Instant::now();
                        // A thousand simultaneous connects overflow the
                        // listener backlog; the kernel resets the excess.
                        // Requests are idempotent (and cached), so retry
                        // with backoff like any real client — the retry
                        // wait stays inside the recorded latency.
                        let mut attempt = 0;
                        let resp = loop {
                            match http_request(addr.as_str(), path, Some(body), TIMEOUT) {
                                Ok(resp) => break resp,
                                Err(e) if attempt < 50 => {
                                    attempt += 1;
                                    let _ = e;
                                    std::thread::sleep(Duration::from_millis(2 * attempt));
                                }
                                Err(e) => panic!("{path}: {e} after {attempt} retries"),
                            }
                        };
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        assert_eq!(resp.status, 200, "{path}: {}", resp.body);
                        mine.push(ms);
                    }
                    latencies.lock().expect("latency lock").extend(mine);
                })
                .expect("spawns client")
        })
        .collect();

    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("client joins");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut lat = Arc::try_unwrap(latencies)
        .expect("clients joined")
        .into_inner()
        .expect("latency lock");
    lat.sort_by(f64::total_cmp);
    let pick = |q: f64| lat[(((lat.len() - 1) as f64) * q) as usize];
    PhaseRecord {
        wall_ms,
        requests: lat.len(),
        rps: lat.len() as f64 / (wall_ms / 1e3),
        p50_ms: pick(0.50),
        p99_ms: pick(0.99),
    }
}

fn measure(target: &Target, smoke: bool, clients: usize) -> SectionRecord {
    let reqs = workload(smoke);
    let distinct = reqs.len() / 4; // (program, configuration) units
    let wire: Vec<(String, String)> = reqs
        .iter()
        .map(|r| (format!("/{}", r.op.name()), encode_request(r)))
        .collect();
    // Enough traffic that every client has work and every request has
    // concurrent duplicates in flight.
    let mut traffic: Vec<(String, String)> = Vec::new();
    while traffic.len() < 2 * clients.max(wire.len()) {
        traffic.extend(wire.iter().cloned());
    }

    let m0 = target.metrics();
    println!(
        "cold: {} requests from {clients} clients ...",
        traffic.len()
    );
    let cold = run_phase(&target.addr, &traffic, clients);
    let m1 = target.metrics();
    let cold_misses = m1.misses - m0.misses;
    let budget = expected_misses(distinct);
    // The exactly-once guarantee, as exact arithmetic: every distinct
    // artifact computes at most once no matter how many copies of its
    // request were in flight.
    assert!(
        cold_misses <= budget,
        "duplicate computation: {cold_misses} misses > {budget} distinct artifacts"
    );
    if m0.misses == 0 {
        assert_eq!(
            cold_misses, budget,
            "a fresh daemon must compute each distinct artifact exactly once"
        );
    }

    println!(
        "warm: {} requests from {clients} clients ...",
        traffic.len()
    );
    let warm = run_phase(&target.addr, &traffic, clients);
    let m2 = target.metrics();
    assert_eq!(
        m2.misses - m1.misses,
        0,
        "the warm pass must be served without recomputing any stage"
    );

    let lookups = m2.hits + m2.misses;
    SectionRecord {
        clients,
        distinct,
        cold,
        warm,
        hits: m2.hits,
        misses: m2.misses,
        coalesced: m2.coalesced,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            m2.hits as f64 / lookups as f64
        },
    }
}

fn print_section(label: &str, r: &SectionRecord) {
    println!(
        "{label:<6} cold {:>8.1} ms ({:>7.1} req/s, p50 {:>7.2} ms, p99 {:>8.2} ms)",
        r.cold.wall_ms, r.cold.rps, r.cold.p50_ms, r.cold.p99_ms
    );
    println!(
        "       warm {:>8.1} ms ({:>7.1} req/s, p50 {:>7.2} ms, p99 {:>8.2} ms)",
        r.warm.wall_ms, r.warm.rps, r.warm.p50_ms, r.warm.p99_ms
    );
    println!(
        "       store: {} hits / {} misses / {} coalesced (hit rate {:.4})",
        r.hits, r.misses, r.coalesced, r.hit_rate
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check = flag("--check");
    let smoke = flag("--smoke") || check;
    let record = flag("--record");
    let send_shutdown = flag("--shutdown");
    let clients = value("--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(if smoke { SMOKE_CLIENTS } else { FULL_CLIENTS });

    let external_addr = value("--addr").or_else(|| {
        value("--port-file").map(|path| {
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read --port-file {path}: {e}"))
                .trim()
                .to_string()
        })
    });
    let target = match external_addr {
        Some(addr) => Target { addr, daemon: None },
        None => {
            let workers = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
            let daemon = Daemon::bind(DaemonConfig {
                workers,
                queue: 2048,
                ..DaemonConfig::default()
            })
            .expect("daemon binds");
            let addr = daemon.local_addr().to_string();
            println!("in-process rtpfd on {addr} ({workers} workers)");
            Target {
                addr,
                daemon: Some(std::thread::spawn(move || daemon.run())),
            }
        }
    };

    let fresh = measure(&target, smoke, clients);
    print_section(if smoke { "smoke" } else { "full" }, &fresh);

    let mut file = ResultsFile::load();
    if check {
        let baseline = file
            .smoke
            .as_ref()
            .expect("--check needs a committed smoke record in results/bench_serve.json");
        let limit = baseline.warm.wall_ms * REGRESSION_FACTOR;
        if fresh.warm.wall_ms > limit {
            eprintln!(
                "serve-smoke REGRESSION: warm {:.1} ms > {:.1} ms ({}x committed {:.1} ms)",
                fresh.warm.wall_ms, limit, REGRESSION_FACTOR, baseline.warm.wall_ms
            );
            std::process::exit(1);
        }
        println!(
            "serve-smoke ok: warm {:.1} ms <= {:.1} ms limit",
            fresh.warm.wall_ms, limit
        );
    } else if record {
        if smoke {
            file.smoke = Some(fresh);
        } else {
            file.full = Some(fresh);
        }
        file.store();
    }

    if send_shutdown || target.daemon.is_some() {
        target.shutdown();
        println!("daemon drained cleanly");
    }
}
