//! End-to-end sweep throughput trajectory: `results/bench_sweep.json`.
//!
//! Runs the paper's LRU evaluation grid (37 programs × 36 Table 2
//! configurations) through the same per-unit engines `run_sweep` uses,
//! aggregating each engine's [`AnalysisProfile`] so the JSON records
//! *where* the wall-clock went (vivu / fixpoint / ipet / relocation
//! phases, optimize / verify / simulate / energy stages). The file keeps
//! a `before` and an `after` record per grid so the speedup of a data
//! layer change is tracked in-repo:
//!
//! ```text
//! cargo run --release -p rtpf-bench --bin bench_sweep -- --record before
//! # ... apply the optimization ...
//! cargo run --release -p rtpf-bench --bin bench_sweep -- --record after
//! ```
//!
//! `--smoke` switches to a fixed 3-program slice (bs, fft1, statemate)
//! and the JSON's `smoke` section — cheap enough for CI. `--check` runs
//! the smoke slice and exits nonzero if its wall-clock regresses more
//! than 20% against the committed smoke record (no file rewrite), which
//! is the CI `bench-smoke` gate.
//!
//! The full run additionally recomputes every row from scratch and
//! compares the rendered CSV byte-for-byte against the committed
//! `results/sweep.csv`, recording the verdict as `csv_identical` — a
//! perf PR must move the timings *without* moving a single output byte.
//!
//! `--l2 a:b:c[:policy]` benches the grid through the two-level pipeline
//! instead; the record then carries an `l2` field naming the shared L2
//! and skips the `csv_identical` check (the committed CSV is L1-only).
//! Records written before the field existed parse with `l2` absent.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use rtpf_cache::CacheConfig;
use rtpf_engine::{Engine, EngineConfig, Grid};
use rtpf_experiments::{paper_configs_for, to_csv, UnitResult};
use rtpf_wcet::AnalysisProfile;

const SMOKE_PROGRAMS: [&str; 3] = ["bs", "fft1", "statemate"];
/// CI gate: fail when the smoke wall-clock exceeds the committed record
/// by more than this factor.
const REGRESSION_FACTOR: f64 = 1.2;

fn results_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{name}"))
}

/// One recorded measurement: wall-clock plus the per-phase/per-stage
/// breakdown summed over every unit's engine profile.
#[derive(Clone, Default)]
struct Record {
    wall_ms: f64,
    units: f64,
    vivu_ms: f64,
    fixpoint_ms: f64,
    /// Join CPU-time component of the fixpoint (memo misses only; summed
    /// over solver workers, so it can exceed `fixpoint_ms` wall clock
    /// under `--threads N`).
    join_ms: f64,
    /// Transfer (classify + fold) CPU-time component of the fixpoint.
    transfer_ms: f64,
    refine_ms: f64,
    ipet_ms: f64,
    relocation_ms: f64,
    optimize_ms: f64,
    verify_ms: f64,
    simulate_ms: f64,
    energy_ms: f64,
    /// Figure-5 shrunk-capacity probe stage wall-clock (overlaps the
    /// phase columns, like `optimize_ms` does).
    probe_ms: f64,
    /// `Some` only for full runs: recomputed CSV == committed CSV.
    csv_identical: Option<bool>,
    /// `Some` when the grid ran under a shared L2 (the `a:b:c[:policy]`
    /// spec); absent in records written before the field existed and in
    /// single-level runs.
    l2: Option<String>,
}

const NUM_FIELDS: [&str; 14] = [
    "wall_ms",
    "units",
    "vivu_ms",
    "fixpoint_ms",
    "join_ms",
    "transfer_ms",
    "refine_ms",
    "ipet_ms",
    "relocation_ms",
    "optimize_ms",
    "verify_ms",
    "simulate_ms",
    "energy_ms",
    "probe_ms",
];

impl Record {
    fn fields(&self) -> [f64; 14] {
        [
            self.wall_ms,
            self.units,
            self.vivu_ms,
            self.fixpoint_ms,
            self.join_ms,
            self.transfer_ms,
            self.refine_ms,
            self.ipet_ms,
            self.relocation_ms,
            self.optimize_ms,
            self.verify_ms,
            self.simulate_ms,
            self.energy_ms,
            self.probe_ms,
        ]
    }

    fn fields_mut(&mut self) -> [&mut f64; 14] {
        [
            &mut self.wall_ms,
            &mut self.units,
            &mut self.vivu_ms,
            &mut self.fixpoint_ms,
            &mut self.join_ms,
            &mut self.transfer_ms,
            &mut self.refine_ms,
            &mut self.ipet_ms,
            &mut self.relocation_ms,
            &mut self.optimize_ms,
            &mut self.verify_ms,
            &mut self.simulate_ms,
            &mut self.energy_ms,
            &mut self.probe_ms,
        ]
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (name, v) in NUM_FIELDS.iter().zip(self.fields()) {
            let _ = write!(s, "\"{name}\": {v:.3}, ");
        }
        if let Some(l2) = &self.l2 {
            let _ = write!(s, "\"l2\": \"{l2}\", ");
        }
        match self.csv_identical {
            Some(b) => {
                let _ = write!(s, "\"csv_identical\": {b}}}");
            }
            None => {
                s.truncate(s.len() - 2);
                s.push('}');
            }
        }
        s
    }

    fn from_json(obj: &str) -> Option<Record> {
        let mut r = Record::default();
        json_num(obj, "wall_ms")?;
        for (name, slot) in NUM_FIELDS.iter().zip(r.fields_mut()) {
            // Fields added after a baseline was recorded (refine_ms,
            // join_ms, transfer_ms, probe_ms) read as 0 from older
            // committed files.
            *slot = json_num(obj, name).unwrap_or(0.0);
        }
        r.csv_identical = json_bool(obj, "csv_identical");
        // Optional since the hierarchy refactor: older records have no L2.
        r.l2 = json_str(obj, "l2");
        Some(r)
    }
}

/// Value of `"key": <number>` inside a flat JSON object (the file is
/// written by this binary only, so a scan is exact enough).
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let tail = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let tail = tail.trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Value of `"key": "<string>"` inside a flat JSON object (our specs
/// never contain escapes).
fn json_str(obj: &str, key: &str) -> Option<String> {
    let tail = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let tail = tail.trim_start().strip_prefix('"')?;
    Some(tail[..tail.find('"')?].to_string())
}

fn json_bool(obj: &str, key: &str) -> Option<bool> {
    let tail = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    tail.trim_start().starts_with("true").then_some(true).or({
        if tail.trim_start().starts_with("false") {
            Some(false)
        } else {
            None
        }
    })
}

/// The brace-balanced object following `"name":` (our format never puts
/// braces inside strings).
fn json_section<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let start = json.find(&format!("\"{name}\":"))?;
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[derive(Default)]
struct Trajectory {
    full_before: Option<Record>,
    full_after: Option<Record>,
    smoke_before: Option<Record>,
    smoke_after: Option<Record>,
}

impl Trajectory {
    fn load(path: &std::path::Path) -> Trajectory {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Trajectory::default();
        };
        let section_record = |grid: &str, which: &str| {
            json_section(&text, grid)
                .and_then(|s| json_section(s, which).and_then(Record::from_json))
        };
        Trajectory {
            full_before: section_record("full", "before"),
            full_after: section_record("full", "after"),
            smoke_before: section_record("smoke", "before"),
            smoke_after: section_record("smoke", "after"),
        }
    }

    fn to_json(&self) -> String {
        let grid = |s: &mut String, name: &str, before: &Option<Record>, after: &Option<Record>| {
            let _ = writeln!(s, "  \"{name}\": {{");
            if name == "smoke" {
                let names: Vec<String> =
                    SMOKE_PROGRAMS.iter().map(|p| format!("\"{p}\"")).collect();
                let _ = writeln!(s, "    \"programs\": [{}],", names.join(", "));
            }
            if let Some(b) = before {
                let _ = writeln!(s, "    \"before\": {},", b.to_json());
            }
            if let Some(a) = after {
                let _ = writeln!(s, "    \"after\": {},", a.to_json());
            }
            if let (Some(b), Some(a)) = (before, after) {
                let _ = writeln!(s, "    \"speedup\": {:.2},", b.wall_ms / a.wall_ms);
            }
            // Drop the trailing comma of the last entry.
            while s.ends_with('\n') || s.ends_with(',') {
                s.truncate(s.len() - 1);
            }
            s.push_str("\n  }");
        };
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "  \"units\": \"milliseconds, single run; stages summed over per-unit engine profiles\","
        );
        grid(&mut s, "full", &self.full_before, &self.full_after);
        s.push_str(",\n");
        grid(&mut s, "smoke", &self.smoke_before, &self.smoke_after);
        s.push_str("\n}\n");
        s
    }
}

/// Runs the grid (full suite, or the smoke slice) exactly the way
/// `run_sweep` does — one ephemeral engine per unit on the work-stealing
/// grid — capturing each engine's profile.
fn measure(smoke: bool, threads: usize, l2: Option<CacheConfig>) -> Record {
    let suite: Vec<_> = rtpf_suite::catalog()
        .into_iter()
        .filter(|b| !smoke || SMOKE_PROGRAMS.contains(&b.name))
        .collect();
    assert!(!suite.is_empty(), "suite slice must not be empty");
    let configs = paper_configs_for(rtpf_cache::ReplacementPolicy::Lru);
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();
    let grid = Grid {
        progress_every: 100,
        label: "bench_sweep",
        ..Grid::default()
    };

    let t0 = Instant::now();
    let results: Vec<(UnitResult, AnalysisProfile)> = grid.run(&units, |_, &(pi, ci)| {
        let b = &suite[pi];
        let (k, config) = &configs[ci];
        let mut econfig = EngineConfig::evaluation(*config).with_threads(threads);
        if let Some(l2c) = l2 {
            econfig = econfig
                .with_l2(l2c)
                .expect("every Table 2 geometry sits under the benched L2");
        }
        let engine = Engine::new(econfig);
        let unit = engine
            .unit(b.name, k, &b.program)
            .expect("suite programs evaluate");
        ((*unit).clone(), engine.profile())
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut prof = AnalysisProfile::default();
    for (_, p) in &results {
        prof.add(p);
    }
    let csv_identical = if smoke || l2.is_some() {
        None
    } else {
        let mut rows: Vec<UnitResult> = results.into_iter().map(|(r, _)| r).collect();
        rows.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
        let committed = std::fs::read_to_string(results_path("sweep.csv")).ok();
        Some(committed.is_some_and(|disk| disk == to_csv(&rows)))
    };

    let ms = |ns: u64| ns as f64 / 1e6;
    Record {
        wall_ms,
        units: units.len() as f64,
        vivu_ms: ms(prof.vivu_ns),
        fixpoint_ms: ms(prof.fixpoint_ns),
        join_ms: ms(prof.join_ns),
        transfer_ms: ms(prof.transfer_ns),
        refine_ms: ms(prof.refine_ns),
        ipet_ms: ms(prof.ipet_ns),
        relocation_ms: ms(prof.relocation_ns),
        optimize_ms: ms(prof.optimize_ns),
        verify_ms: ms(prof.verify_ns),
        simulate_ms: ms(prof.simulate_ns),
        energy_ms: ms(prof.energy_ns),
        probe_ms: ms(prof.probe_ns),
        csv_identical,
        l2: l2.map(|c| {
            format!(
                "{}:{}:{}:{}",
                c.assoc(),
                c.block_bytes(),
                c.capacity_bytes(),
                c.policy()
            )
        }),
    }
}

fn print_record(label: &str, r: &Record) {
    println!(
        "{label:<8} wall {:>10.1} ms | fixpoint {:>9.1} (join {:>7.1} + transfer {:>7.1}) | \
         refine {:>6.1} | vivu {:>7.1} | ipet {:>7.1} | reloc {:>7.1} | optimize {:>9.1} | \
         simulate {:>8.1} | energy {:>6.1} | probes {:>7.1}",
        r.wall_ms,
        r.fixpoint_ms,
        r.join_ms,
        r.transfer_ms,
        r.refine_ms,
        r.vivu_ms,
        r.ipet_ms,
        r.relocation_ms,
        r.optimize_ms,
        r.simulate_ms,
        r.energy_ms,
        r.probe_ms
    );
    if let Some(same) = r.csv_identical {
        println!(
            "         sweep.csv byte-identical to committed artifact: {}",
            if same { "yes" } else { "NO — INVESTIGATE" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke") || args.iter().any(|a| a == "--check");
    let check = args.iter().any(|a| a == "--check");
    // Analysis worker threads per unit engine. Defaults to 1: the grid
    // already runs one worker per core, so per-engine fan-out is only
    // useful when pinning the grid down (or proving thread-determinism).
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("--threads takes a number"));
    let l2: Option<CacheConfig> = args
        .iter()
        .position(|a| a == "--l2")
        .and_then(|i| args.get(i + 1))
        .map(|v| CacheConfig::parse_spec(v).unwrap_or_else(|e| panic!("--l2 {v}: {e}")));
    let record_as = args
        .iter()
        .position(|a| a == "--record")
        .and_then(|i| args.get(i + 1))
        .map_or("after", String::as_str);
    assert!(
        matches!(record_as, "before" | "after"),
        "--record takes 'before' or 'after'"
    );

    let path = results_path("bench_sweep.json");
    let mut traj = Trajectory::load(&path);

    if check {
        let baseline = traj
            .smoke_after
            .or(traj.smoke_before)
            .expect("--check needs a committed smoke record in results/bench_sweep.json");
        let fresh = measure(true, threads, l2);
        print_record("baseline", &baseline);
        print_record("fresh", &fresh);
        let limit = baseline.wall_ms * REGRESSION_FACTOR;
        if fresh.wall_ms > limit {
            eprintln!(
                "bench-smoke REGRESSION: {:.1} ms > {:.1} ms ({}x committed {:.1} ms)",
                fresh.wall_ms, limit, REGRESSION_FACTOR, baseline.wall_ms
            );
            std::process::exit(1);
        }
        println!(
            "bench-smoke ok: {:.1} ms <= {:.1} ms limit",
            fresh.wall_ms, limit
        );
        return;
    }

    let fresh = measure(smoke, threads, l2);
    let slot = match (smoke, record_as) {
        (false, "before") => &mut traj.full_before,
        (false, _) => &mut traj.full_after,
        (true, "before") => &mut traj.smoke_before,
        (true, _) => &mut traj.smoke_after,
    };
    *slot = Some(fresh);

    std::fs::create_dir_all(path.parent().expect("has parent")).expect("results dir");
    std::fs::write(&path, traj.to_json()).expect("write bench_sweep.json");

    let (before, after) = if smoke {
        (traj.smoke_before, traj.smoke_after)
    } else {
        (traj.full_before, traj.full_after)
    };
    if let Some(b) = &before {
        print_record("before", b);
    }
    if let Some(a) = &after {
        print_record("after", a);
    }
    if let (Some(b), Some(a)) = (before, after) {
        println!("speedup: {:.2}x end-to-end", b.wall_ms / a.wall_ms);
    }
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_with_the_l2_field() {
        let r = Record {
            wall_ms: 12.5,
            units: 3.0,
            l2: Some("8:16:16384:lru".into()),
            csv_identical: None,
            ..Record::default()
        };
        let parsed = Record::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed.l2.as_deref(), Some("8:16:16384:lru"));
        assert_eq!(parsed.wall_ms, 12.5);
    }

    #[test]
    fn pre_hierarchy_records_without_l2_still_parse() {
        // Byte-for-byte shape of a record committed before the `l2` field
        // existed: it must parse with `l2` absent, not fail.
        let old = r#"{"wall_ms": 100.0, "units": 36.000, "vivu_ms": 1.0, "csv_identical": true}"#;
        let parsed = Record::from_json(old).expect("back-compat parse");
        assert_eq!(parsed.l2, None);
        assert_eq!(parsed.csv_identical, Some(true));
        assert_eq!(parsed.wall_ms, 100.0);
        let modern = Record::from_json(&parsed.to_json()).expect("reparses");
        assert_eq!(modern.l2, None);
    }
}
