//! Wall-clock comparison of `Optimizer::run` in the legacy configuration
//! (from-scratch re-analysis, sequential verification) against the
//! incremental + parallel default, on the two largest suite programs at
//! the paper's k8 cache (2-way, 16 B blocks, 512 B).
//!
//! Writes machine-readable `results/bench_optimizer.json` and prints a
//! summary table. Run with:
//!
//! ```text
//! cargo run --release -p rtpf-bench --bin bench_optimizer
//! ```

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use rtpf_cache::CacheConfig;
use rtpf_core::{OptimizeParams, OptimizeResult, Optimizer};
use rtpf_engine::EngineConfig;

const REPS: u32 = 3;

struct Row {
    program: String,
    instrs: usize,
    full_sequential_ms: f64,
    incremental_parallel_ms: f64,
    speedup: f64,
    inserted: u32,
    wcet_before: u64,
    wcet_after: u64,
}

fn best_of(
    config: CacheConfig,
    params: OptimizeParams,
    p: &rtpf_isa::Program,
) -> (f64, OptimizeResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = Optimizer::new(config, params).run(p).expect("optimizes");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("REPS > 0"))
}

fn main() {
    let config = EngineConfig::geometry(2, 16, 512).expect("valid k8 geometry");
    // The interactive profile's optimizer budget with the classic 20-cycle
    // miss penalty; the "legacy" variant only flips the result-invariant
    // execution-strategy knobs.
    let base = EngineConfig::interactive(config).with_penalty(20);
    let mut rows = Vec::new();

    for name in ["nsichneu", "statemate"] {
        let b = rtpf_suite::by_name(name).expect("known program");
        let legacy = base
            .clone()
            .with_incremental(false)
            .with_verify_workers(1)
            .optimize_params(b.program.instr_count());
        let tuned = base.optimize_params(b.program.instr_count());
        let (t_legacy, r_legacy) = best_of(config, legacy, &b.program);
        let (t_tuned, r_tuned) = best_of(config, tuned, &b.program);
        assert!(
            r_legacy.report.decisions_eq(&r_tuned.report) && r_legacy.program == r_tuned.program,
            "{name}: incremental+parallel changed optimizer decisions"
        );
        if std::env::var_os("BENCH_PROFILE").is_some() {
            eprintln!("--- {name} legacy ---\n{}", r_legacy.report.profile);
            eprintln!("--- {name} tuned ---\n{}", r_tuned.report.profile);
        }
        rows.push(Row {
            program: name.to_string(),
            instrs: b.program.instr_count(),
            full_sequential_ms: t_legacy,
            incremental_parallel_ms: t_tuned,
            speedup: t_legacy / t_tuned,
            inserted: r_tuned.report.inserted,
            wcet_before: r_tuned.report.wcet_before,
            wcet_after: r_tuned.report.wcet_after,
        });
    }

    let mut json = String::from("{\n  \"config\": \"k8 (assoc=2, block=16B, capacity=512B)\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"units\": \"milliseconds, best of reps\",\n  \"programs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"program\": \"{}\", \"instrs\": {}, \"full_sequential_ms\": {:.3}, \
             \"incremental_parallel_ms\": {:.3}, \"speedup\": {:.2}, \"inserted\": {}, \
             \"wcet_before\": {}, \"wcet_after\": {}}}",
            r.program,
            r.instrs,
            r.full_sequential_ms,
            r.incremental_parallel_ms,
            r.speedup,
            r.inserted,
            r.wcet_before,
            r.wcet_after,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_optimizer.json");
    std::fs::create_dir_all(out.parent().expect("has parent")).expect("results dir");
    std::fs::write(&out, &json).expect("write results");

    println!(
        "{:<12} {:>8} {:>16} {:>16} {:>8}",
        "program", "instrs", "full+seq (ms)", "inc+par (ms)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8} {:>16.2} {:>16.2} {:>7.2}x",
            r.program, r.instrs, r.full_sequential_ms, r.incremental_parallel_ms, r.speedup
        );
    }
    println!("wrote {}", out.display());
}
