//! Ablation: the DAG longest-path IPET fast path vs. the general
//! simplex + branch-and-bound ILP encoding (DESIGN.md `ipet_solvers`).

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_isa::shape::Shape;
use rtpf_wcet::{ipet, VivuGraph};

fn instance(loops: u32) -> (VivuGraph, Vec<u64>) {
    let shape = Shape::loop_(
        10,
        Shape::seq(
            (0..loops)
                .map(|_| Shape::seq([Shape::loop_(6, Shape::code(12)), Shape::code(5)]))
                .collect::<Vec<_>>(),
        ),
    );
    let p = shape.compile("ipet");
    let v = VivuGraph::build(&p).expect("builds");
    let w: Vec<u64> = v
        .nodes()
        .iter()
        .map(|n| p.block(n.block).len() as u64 * n.mult)
        .collect();
    (v, w)
}

fn bench_ipet(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_solvers");
    g.sample_size(20);
    for loops in [2u32, 4, 8] {
        let (v, w) = instance(loops);
        // Cross-check once: both solvers must agree.
        let dag = ipet::solve_dag(&v, &w).expect("dag").tau_w;
        let ilp = ipet::solve_ilp(&v, &w).expect("ilp");
        assert_eq!(dag, ilp, "solvers disagree on {loops}-loop instance");

        g.bench_function(format!("dag_longest_path/{loops}_loops"), |b| {
            b.iter(|| ipet::solve_dag(&v, &w).expect("dag"))
        });
        g.bench_function(format!("simplex_bb_ilp/{loops}_loops"), |b| {
            b.iter(|| ipet::solve_ilp(&v, &w).expect("ilp"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ipet);
criterion_main!(benches);
