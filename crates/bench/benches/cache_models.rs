//! Throughput of the concrete and abstract cache models — the inner loop
//! of both simulation and classification.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtpf_cache::{ConcreteState, MayState, MustState};
use rtpf_engine::EngineConfig;
use rtpf_isa::MemBlockId;

fn trace(len: usize, span: u64) -> Vec<MemBlockId> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..len)
        .map(|_| MemBlockId(rng.gen_range(0..span)))
        .collect()
}

fn bench_cache_models(c: &mut Criterion) {
    let config = EngineConfig::geometry(4, 16, 4096).expect("valid");
    let t = trace(10_000, 512);

    let mut g = c.benchmark_group("cache_models");
    g.bench_function("concrete_lru_10k_accesses", |b| {
        b.iter_batched(
            || ConcreteState::new(&config),
            |mut s| {
                for &blk in &t {
                    s.access(blk);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("must_update_10k_accesses", |b| {
        b.iter_batched(
            || MustState::new(&config),
            |mut s| {
                for &blk in &t {
                    s.update(blk);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("may_update_10k_accesses", |b| {
        b.iter_batched(
            || MayState::new(&config),
            |mut s| {
                for &blk in &t {
                    s.update(blk);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("must_join", |b| {
        let mut x = MustState::new(&config);
        let mut y = MustState::new(&config);
        for &blk in &t[..4000] {
            x.update(blk);
        }
        for &blk in &t[4000..8000] {
            y.update(blk);
        }
        b.iter(|| x.join(&y))
    });
    g.finish();
}

criterion_group!(benches, bench_cache_models);
criterion_main!(benches);
