//! Ablations of the design choices DESIGN.md calls out, measured as
//! runtime here (result-quality deltas are printed by
//! `cargo run -p rtpf-experiments --bin ablations`):
//!
//! * `ablation_criterion` — effectiveness check on (the paper) vs. off
//!   (the WCET-only prior work [5] that ignores the latency window);
//! * `ablation_join` — `J_SE` WCET-path join vs. a conventional
//!   deterministic join in the reverse analysis;
//! * `ablation_iterate` — full iterative improvement vs. a single round.

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_core::{candidates, JoinPolicy, Optimizer};
use rtpf_engine::EngineConfig;
use rtpf_wcet::WcetAnalysis;

fn bench_ablation(c: &mut Criterion) {
    let b = rtpf_suite::by_name("compress").expect("compress");
    let config = EngineConfig::geometry(2, 16, 1024).expect("valid");
    let base = EngineConfig::interactive(config)
        .with_penalty(20)
        .with_rounds(3)
        .with_singles(6);
    let timing = base.timing();
    let analysis = WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    for (label, check_effectiveness) in [
        ("criterion/effectiveness_on", true),
        ("criterion/effectiveness_off", false),
    ] {
        let params = base
            .clone()
            .with_check_effectiveness(check_effectiveness)
            .optimize_params(b.program.instr_count());
        g.bench_function(label, |bench| {
            bench.iter(|| {
                Optimizer::new(config, params)
                    .run(&b.program)
                    .expect("runs")
            })
        });
    }

    for (label, policy) in [
        ("join/j_se_wcet_path", JoinPolicy::WcetPath),
        ("join/first_successor", JoinPolicy::FirstSucc),
    ] {
        g.bench_function(label, |bench| {
            bench.iter(|| candidates::scan_with_join(&b.program, &analysis, policy))
        });
    }

    for (label, rounds) in [("iterate/single_round", 1u32), ("iterate/to_fixpoint", 6)] {
        let params = base
            .clone()
            .with_rounds(rounds)
            .optimize_params(b.program.instr_count());
        g.bench_function(label, |bench| {
            bench.iter(|| {
                Optimizer::new(config, params)
                    .run(&b.program)
                    .expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
