//! End-to-end optimizer runtime across program sizes — the practical
//! check on the paper's O(|R|²) complexity claim (Supplement S.1).

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_core::Optimizer;
use rtpf_engine::EngineConfig;

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);
    for (name, capacity) in [
        ("crc", 512u32),
        ("fft1", 512),
        ("compress", 1024),
        ("ndes", 1024),
    ] {
        let b = rtpf_suite::by_name(name).expect("known");
        let config = EngineConfig::geometry(2, 16, capacity).expect("valid");
        // The CLI sweep profile (4 rounds, 8 singles) with the classic
        // 20-cycle miss penalty.
        let params = EngineConfig::cli_sweep(config)
            .with_penalty(20)
            .optimize_params(b.program.instr_count());
        g.bench_function(
            format!("{name}/{}_instrs", b.program.instr_count()),
            |bench| {
                bench.iter(|| {
                    Optimizer::new(config, params)
                        .run(&b.program)
                        .expect("optimizes")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
