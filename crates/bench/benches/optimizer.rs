//! End-to-end optimizer runtime across program sizes — the practical
//! check on the paper's O(|R|²) complexity claim (Supplement S.1).

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_cache::{CacheConfig, MemTiming};
use rtpf_core::{OptimizeParams, Optimizer};

fn bench_optimizer(c: &mut Criterion) {
    let timing = MemTiming::default();
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);
    for (name, capacity) in [
        ("crc", 512u32),
        ("fft1", 512),
        ("compress", 1024),
        ("ndes", 1024),
    ] {
        let b = rtpf_suite::by_name(name).expect("known");
        let config = CacheConfig::new(2, 16, capacity).expect("valid");
        let params = OptimizeParams {
            timing,
            max_rounds: 4,
            max_singles_per_round: 8,
            ..OptimizeParams::default()
        };
        g.bench_function(
            format!("{name}/{}_instrs", b.program.instr_count()),
            |bench| {
                bench.iter(|| {
                    Optimizer::new(config, params)
                        .run(&b.program)
                        .expect("optimizes")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
