//! One benchmark per paper table/figure: times the code path that
//! regenerates each artefact on a representative slice (the full sweep is
//! `cargo run -p rtpf-experiments --bin sweep`).
//!
//! * Table 1 — suite catalog construction
//! * Table 2 — configuration enumeration + energy/timing derivation
//! * Figure 3 — optimize + simulate + energy for one unit (ACET/energy/WCET)
//! * Figure 4 — the miss-rate measurement path (simulation only)
//! * Figure 5 — the shrunken-cache re-evaluation path
//! * Figure 7 — the Theorem 1 verification path (re-analysis)
//! * Figure 8 — the executed-instruction measurement path

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_core::{check, Optimizer};
use rtpf_energy::{EnergyModel, Technology};
use rtpf_engine::EngineConfig;
use rtpf_sim::Simulator;

fn bench_figures(c: &mut Criterion) {
    let b = rtpf_suite::by_name("fft1").expect("fft1");
    let config = EngineConfig::geometry(2, 16, 512).expect("valid");
    let cfg = EngineConfig::interactive(config)
        .with_rounds(3)
        .with_singles(6)
        .with_runs(1)
        .with_seed(77);
    let timing = cfg.timing();
    let params = cfg.optimize_params(b.program.instr_count());
    let sim_cfg = cfg.sim_config();
    let opt = Optimizer::new(config, params)
        .run(&b.program)
        .expect("optimizes");

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1_catalog", |bench| bench.iter(rtpf_suite::catalog));
    g.bench_function("table2_configs", |bench| {
        bench.iter(|| {
            rtpf_cache::CacheConfig::paper_configs()
                .into_iter()
                .map(|(_, cfg)| EnergyModel::new(&cfg, Technology::Nm32).timing())
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("fig3_optimize_unit", |bench| {
        bench.iter(|| {
            Optimizer::new(config, params)
                .run(&b.program)
                .expect("optimizes")
        })
    });
    g.bench_function("fig4_missrate_simulation", |bench| {
        bench.iter(|| {
            Simulator::new(config, timing, sim_cfg)
                .run(&b.program)
                .expect("simulates")
                .miss_rate()
        })
    });
    g.bench_function("fig5_shrunken_cache_reeval", |bench| {
        let small = config.shrink(2).expect("valid");
        let m = EnergyModel::new(&small, Technology::Nm32);
        bench.iter(|| {
            Simulator::new(small, m.timing(), sim_cfg)
                .run(&opt.program)
                .expect("simulates")
        })
    });
    g.bench_function("fig7_theorem_verification", |bench| {
        bench.iter(|| {
            check(
                &b.program,
                &opt.program,
                opt.analysis_after.layout().clone(),
                &config,
                &timing,
            )
            .expect("verifies")
        })
    });
    g.bench_function("fig8_instr_overhead_measurement", |bench| {
        bench.iter(|| {
            let r = Simulator::new(config, timing, sim_cfg)
                .run(&opt.program)
                .expect("simulates");
            r.mean_instr_executed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
