//! WCET-analysis scalability: VIVU + classification + IPET runtime across
//! real suite programs of increasing size, plus incremental re-analysis
//! against a from-scratch pass after a single prefetch insertion.

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_engine::EngineConfig;
use rtpf_isa::{InstrKind, Layout, Program};
use rtpf_wcet::WcetAnalysis;

fn bench_analysis(c: &mut Criterion) {
    let config = EngineConfig::geometry(2, 16, 1024).expect("valid");
    let timing = EngineConfig::interactive(config).with_penalty(20).timing();
    let mut g = c.benchmark_group("wcet_analysis");
    g.sample_size(10);
    // Small, medium, large, giant.
    for name in ["bs", "fft1", "ndes", "statemate"] {
        let b = rtpf_suite::by_name(name).expect("known");
        g.bench_function(
            format!("{name}/{}_instrs", b.program.instr_count()),
            |bench| {
                bench
                    .iter(|| WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes"))
            },
        );
    }
    g.finish();
}

/// A program with one mid-program prefetch inserted, relocated the way the
/// optimizer relocates: anchored at the insertion point's old address.
fn with_one_prefetch(p: &Program, base: &WcetAnalysis) -> (Program, Layout) {
    let instrs: Vec<_> = p
        .block_ids()
        .flat_map(|b| p.block(b).instrs().to_vec())
        .collect();
    let anchor = instrs[instrs.len() / 2];
    let target = instrs[instrs.len() - 1];
    let mut p2 = p.clone();
    let bb = p2.block_of(anchor);
    let pos = p2.pos_in_block(anchor);
    p2.insert_instr(bb, pos, InstrKind::Prefetch { target })
        .expect("valid insertion");
    let layout = Layout::anchored(&p2, anchor, base.layout().addr(anchor));
    (p2, layout)
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let config = EngineConfig::geometry(2, 16, 512).expect("valid"); // k8
    let timing = EngineConfig::interactive(config).with_penalty(20).timing();
    let mut g = c.benchmark_group("incremental_vs_full");
    g.sample_size(10);
    for name in ["nsichneu", "statemate"] {
        let b = rtpf_suite::by_name(name).expect("known");
        let base = WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes");
        let (p2, layout) = with_one_prefetch(&b.program, &base);
        g.bench_function(format!("{name}/full"), |bench| {
            bench.iter(|| {
                WcetAnalysis::analyze_with_layout(&p2, layout.clone(), &config, &timing)
                    .expect("analyzes")
            })
        });
        g.bench_function(format!("{name}/incremental"), |bench| {
            bench.iter(|| {
                base.reanalyze_after_insert(&p2, layout.clone())
                    .expect("analyzes")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis, bench_incremental_vs_full);
criterion_main!(benches);
