//! WCET-analysis scalability: VIVU + classification + IPET runtime across
//! real suite programs of increasing size.

use criterion::{criterion_group, criterion_main, Criterion};

use rtpf_cache::{CacheConfig, MemTiming};
use rtpf_wcet::WcetAnalysis;

fn bench_analysis(c: &mut Criterion) {
    let config = CacheConfig::new(2, 16, 1024).expect("valid");
    let timing = MemTiming::default();
    let mut g = c.benchmark_group("wcet_analysis");
    g.sample_size(10);
    // Small, medium, large, giant.
    for name in ["bs", "fft1", "ndes", "statemate"] {
        let b = rtpf_suite::by_name(name).expect("known");
        g.bench_function(
            format!("{name}/{}_instrs", b.program.instr_count()),
            |bench| {
                bench.iter(|| {
                    WcetAnalysis::analyze(&b.program, &config, &timing).expect("analyzes")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
