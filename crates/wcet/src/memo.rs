//! Shared evaluation cache for an analysis lineage.
//!
//! The optimizer re-analyses near-identical programs dozens of times per
//! round (one per verification candidate). A node evaluation — join the
//! predecessors' out-states, walk the node's references classifying and
//! folding each — is a pure function of the node's *touched-block
//! signature* and the tuple of input state pairs, so its result can be
//! memoized and shared across every analysis derived from the same root
//! ([`WcetAnalysis::reanalyze_after_insert`](crate::WcetAnalysis::reanalyze_after_insert)
//! passes the cache along). Two candidates that insert at different
//! anchors diverge only between the two insertion points and for the
//! short stretch until the cache states forget the difference; everything
//! else resolves from the memo without touching a state.
//!
//! The hot path is the *hit*: a warmed verification pass answers every
//! node from the memo. Both signatures and out-states are therefore
//! interned to canonical `Arc`s ([`AnalysisCache::intern_sig`] /
//! `StateInterner`), which makes the memo key a tuple of pointers —
//! lookups hash a handful of `usize`s with a multiply-rotate mixer and
//! allocate nothing.
//!
//! Exactness: a hit returns the result of an earlier evaluation of the
//! *same* pure function on the *same* inputs — identity is by interned
//! pointer, and the interners map content-equal values to one allocation,
//! so the fixpoint iterates are bit-identical to an uncached run.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use rtpf_cache::{Classification, SharedInterner, StatePair};
use rtpf_isa::MemBlockId;

use crate::classify::WorkerState;

/// A node's touched-block signature: for every reference in program
/// order, the block it fetches and the block its prefetch targets (if it
/// is one). This determines the node's transfer function entirely
/// (including hardware next-line folds, which depend only on the fetched
/// block).
pub(crate) type NodeSig = Arc<Vec<(MemBlockId, Option<MemBlockId>)>>;

/// The complete result of evaluating one node against one input state.
pub(crate) struct NodeEval {
    /// Out-state after all references of the node.
    pub out: Arc<StatePair>,
    /// Classification per reference, in node-local order.
    pub class: Vec<Classification>,
}

/// One memoized evaluation. The stored `Arc`s keep the keyed allocations
/// alive, so a pointer can never be reused while the entry exists.
struct Entry {
    sig: NodeSig,
    ins: Vec<Arc<StatePair>>,
    eval: Arc<NodeEval>,
}

impl Entry {
    /// Whether this entry was stored for exactly (`sig`, `ins`) — pointer
    /// identity, which interning makes equivalent to content identity.
    #[inline]
    fn matches(&self, sig: &NodeSig, ins: &[Arc<StatePair>]) -> bool {
        Arc::ptr_eq(&self.sig, sig)
            && self.ins.len() == ins.len()
            && self.ins.iter().zip(ins).all(|(a, b)| Arc::ptr_eq(a, b))
    }
}

/// Pass-through hasher for keys that are already well-mixed `u64`s.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("memo keys are pre-hashed u64s");
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = x;
    }
}

/// Multiply-rotate mixer (FxHash-style); good enough for pointers and
/// block ids, and an order of magnitude cheaper than SipHash.
fn mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(0x517c_c1b7_2722_0a95)
}

fn key_hash(sig: &NodeSig, ins: &[Arc<StatePair>]) -> u64 {
    let mut h = mix(ins.len() as u64, Arc::as_ptr(sig) as u64);
    for a in ins {
        h = mix(h, Arc::as_ptr(a) as u64);
    }
    h
}

fn sig_hash(sig: &[(MemBlockId, Option<MemBlockId>)]) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15, sig.len() as u64);
    for &(own, pf) in sig {
        h = mix(h, own.0);
        // `u64::MAX` never occurs as a real block id (addresses are u32).
        h = mix(h, pf.map_or(u64::MAX, |b| b.0));
    }
    h
}

/// Open-addressed map on pre-mixed 64-bit keys: one value per slot, and
/// the astronomically rare distinct-key hash collision linear-probes to
/// `key + 1` (see the probe loops at the use sites). Entries are never
/// removed, so probe chains stay valid and stop at the first vacant slot.
type PreMap<V> = HashMap<u64, V, BuildHasherDefault<PreHashed>>;

/// Dataflow topology of the classification fixpoint: VIVU adjacency with
/// the broken back edges restored, plus its SCC condensation. Every
/// analysis of a lineage shares one VIVU graph, so this is computed once
/// per cache and reused by every (re-)classification pass.
///
/// Stored in compressed-sparse-row form — one flat data array plus one
/// offset array per relation — instead of nested `Vec<Vec<_>>`: three
/// allocations replace `3n`, and the fixpoint's inner loops walk
/// contiguous memory.
pub(crate) struct Topology {
    pred_off: Vec<u32>,
    pred_dat: Vec<u32>,
    succ_off: Vec<u32>,
    succ_dat: Vec<u32>,
    comp_off: Vec<u32>,
    comp_dat: Vec<u32>,
    comp_id: Vec<u32>,
    /// Condensation DAG, CSR over component ids: distinct successor
    /// components per component, and each component's indegree (distinct
    /// predecessor components). Drives the parallel SCC-DAG scheduler.
    comp_succ_off: Vec<u32>,
    comp_succ_dat: Vec<u32>,
    comp_indeg: Vec<u32>,
}

impl Topology {
    /// Flattens build-time adjacency and condensation lists into CSR form
    /// and derives the per-node component index.
    pub(crate) fn from_parts(
        preds: Vec<Vec<usize>>,
        succs: Vec<Vec<usize>>,
        comps: Vec<Vec<usize>>,
    ) -> Topology {
        fn csr(lists: &[Vec<usize>]) -> (Vec<u32>, Vec<u32>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            let mut dat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
            off.push(0);
            for l in lists {
                dat.extend(l.iter().map(|&x| x as u32));
                off.push(dat.len() as u32);
            }
            (off, dat)
        }
        let n = preds.len();
        let (pred_off, pred_dat) = csr(&preds);
        let (succ_off, succ_dat) = csr(&succs);
        let (comp_off, comp_dat) = csr(&comps);
        let mut comp_id = vec![0u32; n];
        for (cid, comp) in comps.iter().enumerate() {
            for &i in comp {
                comp_id[i] = cid as u32;
            }
        }
        // Condensation edges: every cross-component node edge, deduplicated.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, ps) in preds.iter().enumerate() {
            let ci = comp_id[i];
            for &pr in ps {
                let cp = comp_id[pr];
                if cp != ci {
                    edges.push((cp, ci));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let n_comps = comps.len();
        let mut comp_succ_off = Vec::with_capacity(n_comps + 1);
        let mut comp_succ_dat = Vec::with_capacity(edges.len());
        let mut comp_indeg = vec![0u32; n_comps];
        comp_succ_off.push(0);
        let mut e = 0usize;
        for c in 0..n_comps as u32 {
            while e < edges.len() && edges[e].0 == c {
                comp_succ_dat.push(edges[e].1);
                comp_indeg[edges[e].1 as usize] += 1;
                e += 1;
            }
            comp_succ_off.push(comp_succ_dat.len() as u32);
        }
        Topology {
            pred_off,
            pred_dat,
            succ_off,
            succ_dat,
            comp_off,
            comp_dat,
            comp_id,
            comp_succ_off,
            comp_succ_dat,
            comp_indeg,
        }
    }

    /// Predecessors of node `i` (loop latches included).
    #[inline]
    pub(crate) fn preds(&self, i: usize) -> &[u32] {
        &self.pred_dat[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successors of node `i` (loop headers included).
    #[inline]
    pub(crate) fn succs(&self, i: usize) -> &[u32] {
        &self.succ_dat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Number of strongly connected components.
    #[inline]
    pub(crate) fn n_comps(&self) -> usize {
        self.comp_off.len() - 1
    }

    /// Members of component `c`, sorted by topological position.
    #[inline]
    pub(crate) fn comp(&self, c: usize) -> &[u32] {
        &self.comp_dat[self.comp_off[c] as usize..self.comp_off[c + 1] as usize]
    }

    /// Component index of node `i`.
    #[inline]
    pub(crate) fn comp_id(&self, i: usize) -> usize {
        self.comp_id[i] as usize
    }

    /// Distinct successor components of component `c` in the condensation
    /// DAG.
    #[inline]
    pub(crate) fn comp_succs(&self, c: usize) -> &[u32] {
        &self.comp_succ_dat[self.comp_succ_off[c] as usize..self.comp_succ_off[c + 1] as usize]
    }

    /// Number of distinct predecessor components of component `c`.
    #[inline]
    pub(crate) fn comp_indegree(&self, c: usize) -> u32 {
        self.comp_indeg[c]
    }
}

/// Number of independently locked memo shards. A power of two so the
/// shard index is a shift of the (well-mixed) key hash.
const MEMO_SHARDS: usize = 16;

/// Interner + evaluation memo shared by every analysis of one lineage
/// (same cache configuration, timing, and hardware-prefetch setting).
///
/// Concurrency-safe by sharding: the parallel classify solver looks up and
/// stores evaluations from every worker thread, so the memo is split into
/// [`MEMO_SHARDS`] independently locked maps keyed by the high bits of the
/// evaluation hash, and out-states intern through a
/// [`SharedInterner`]. Signatures keep one mutex — they are interned in
/// the solver's sequential setup phase. The topology is a `OnceLock`
/// (write-once, lock-free reads).
pub struct AnalysisCache {
    interner: SharedInterner,
    sigs: Mutex<PreMap<NodeSig>>,
    memo: [Mutex<PreMap<Entry>>; MEMO_SHARDS],
    topo: OnceLock<Arc<Topology>>,
    /// Pool of solver scratch states. A lineage runs thousands of classify
    /// passes over the same graph; recycling the node-indexed worker
    /// vectors (and the grown word/merge buffers inside) removes five
    /// allocations plus their zero-fill from every pass.
    scratch: Mutex<Vec<WorkerState>>,
}

impl AnalysisCache {
    pub fn new() -> Self {
        AnalysisCache {
            interner: SharedInterner::new(),
            sigs: Mutex::new(PreMap::default()),
            memo: std::array::from_fn(|_| Mutex::new(PreMap::default())),
            topo: OnceLock::new(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The key hash is multiply-mixed, so its high bits spread best.
    #[inline]
    fn shard_of(hash: u64) -> usize {
        (hash >> 60) as usize & (MEMO_SHARDS - 1)
    }

    /// Returns the lineage's fixpoint topology, building it on first use.
    pub(crate) fn topology(&self, build: impl FnOnce() -> Topology) -> Arc<Topology> {
        Arc::clone(self.topo.get_or_init(|| Arc::new(build())))
    }

    /// Returns the canonical `Arc` for a signature, so content-equal
    /// signatures from different analyses of the lineage compare (and
    /// hash) by pointer. Takes a slice and copies only on a miss, so
    /// callers can fill one scratch buffer per pass instead of allocating
    /// a `Vec` per node.
    pub(crate) fn intern_sig(&self, sig: &[(MemBlockId, Option<MemBlockId>)]) -> NodeSig {
        let mut h = sig_hash(sig);
        let mut sigs = self.sigs.lock().expect("analysis cache poisoned");
        loop {
            match sigs.get(&h) {
                Some(found) if found.as_slice() == sig => return Arc::clone(found),
                Some(_) => h = h.wrapping_add(1),
                None => {
                    let arc: NodeSig = Arc::new(sig.to_vec());
                    sigs.insert(h, Arc::clone(&arc));
                    return arc;
                }
            }
        }
    }

    /// Looks up a prior evaluation of `sig` against `ins`. Allocation-free;
    /// both must be interned (lineage-canonical) pointers.
    pub(crate) fn lookup(&self, sig: &NodeSig, ins: &[Arc<StatePair>]) -> Option<Arc<NodeEval>> {
        let mut h = key_hash(sig, ins);
        let shard = self.memo[Self::shard_of(h)]
            .lock()
            .expect("analysis cache poisoned");
        loop {
            match shard.get(&h) {
                Some(e) if e.matches(sig, ins) => return Some(Arc::clone(&e.eval)),
                Some(_) => h = h.wrapping_add(1),
                None => return None,
            }
        }
    }

    /// Interns `out` (cloning it only if its content is new), registers
    /// the evaluation, and returns the shared record plus whether the
    /// out-state was a fresh allocation. Two threads racing to store the
    /// same key compute content-identical evaluations; the first insert
    /// wins and the loser adopts it, so the memo never grows duplicate
    /// entries.
    pub(crate) fn store(
        &self,
        sig: &NodeSig,
        ins: &[Arc<StatePair>],
        out: &StatePair,
        class: Vec<Classification>,
    ) -> (Arc<NodeEval>, bool) {
        let (out, fresh) = self.interner.intern_ref(out);
        let mut h = key_hash(sig, ins);
        let mut shard = self.memo[Self::shard_of(h)]
            .lock()
            .expect("analysis cache poisoned");
        loop {
            match shard.get(&h) {
                Some(e) if e.matches(sig, ins) => return (Arc::clone(&e.eval), fresh),
                Some(_) => h = h.wrapping_add(1),
                None => break,
            }
        }
        let eval = Arc::new(NodeEval { out, class });
        shard.insert(
            h,
            Entry {
                sig: Arc::clone(sig),
                ins: ins.to_vec(),
                eval: Arc::clone(&eval),
            },
        );
        (eval, fresh)
    }

    /// Pops a pooled solver scratch, if any (see
    /// [`WorkerState::acquire`]).
    pub(crate) fn take_scratch(&self) -> Option<WorkerState> {
        self.scratch.lock().expect("analysis cache poisoned").pop()
    }

    /// Returns a clean solver scratch to the pool for the next pass.
    pub(crate) fn put_scratch(&self, ws: WorkerState) {
        self.scratch
            .lock()
            .expect("analysis cache poisoned")
            .push(ws);
    }

    /// Number of memoized node evaluations.
    pub fn len(&self) -> usize {
        self.memo
            .iter()
            .map(|m| m.lock().expect("analysis cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no evaluations yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCache")
            .field("evals", &self.len())
            .finish()
    }
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MayState, MustState};

    #[test]
    fn memo_roundtrip_and_ptr_identity() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let cache = AnalysisCache::new();
        let sig = cache.intern_sig(&[(MemBlockId(3), None)]);
        let base = Arc::new((MustState::new(&cfg), MayState::new(&cfg)));
        assert!(cache.lookup(&sig, std::slice::from_ref(&base)).is_none());

        let mut out = (MustState::new(&cfg), MayState::new(&cfg));
        out.0.update(MemBlockId(3));
        out.1.update(MemBlockId(3));
        let (stored, fresh) = cache.store(
            &sig,
            std::slice::from_ref(&base),
            &out,
            vec![Classification::AlwaysMiss],
        );
        assert!(fresh);
        // Storing the same key again adopts the first entry.
        let (dup, _) = cache.store(
            &sig,
            std::slice::from_ref(&base),
            &out,
            vec![Classification::AlwaysMiss],
        );
        assert!(Arc::ptr_eq(&dup, &stored));
        let hit = cache
            .lookup(&sig, std::slice::from_ref(&base))
            .expect("memo hit");
        assert!(Arc::ptr_eq(&hit, &stored));
        assert_eq!(hit.class, vec![Classification::AlwaysMiss]);
        assert_eq!(cache.len(), 1);

        // Content-equal signatures intern to the same canonical pointer.
        let sig2 = cache.intern_sig(&[(MemBlockId(3), None)]);
        assert!(Arc::ptr_eq(&sig, &sig2));
        assert!(cache.lookup(&sig2, std::slice::from_ref(&base)).is_some());
        // A different input misses.
        let other = Arc::clone(&hit.out);
        assert!(cache.lookup(&sig, std::slice::from_ref(&other)).is_none());
    }
}
