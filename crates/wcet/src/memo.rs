//! Shared evaluation cache for an analysis lineage.
//!
//! The optimizer re-analyses near-identical programs dozens of times per
//! round (one per verification candidate). A node evaluation — join the
//! predecessors' out-states, walk the node's references classifying and
//! folding each — is a pure function of the node's *touched-block
//! signature* and the tuple of input state pairs, so its result can be
//! memoized and shared across every analysis derived from the same root
//! ([`WcetAnalysis::reanalyze_after_insert`](crate::WcetAnalysis::reanalyze_after_insert)
//! passes the cache along). Two candidates that insert at different
//! anchors diverge only between the two insertion points and for the
//! short stretch until the cache states forget the difference; everything
//! else resolves from the memo without touching a state.
//!
//! The hot path is the *hit*: a warmed verification pass answers every
//! node from the memo. Both signatures and out-states are therefore
//! interned to canonical `Arc`s ([`AnalysisCache::intern_sig`] /
//! `StateInterner`), which makes the memo key a tuple of pointers —
//! lookups hash a handful of `usize`s with a multiply-rotate mixer and
//! allocate nothing.
//!
//! Exactness: a hit returns the result of an earlier evaluation of the
//! *same* pure function on the *same* inputs — identity is by interned
//! pointer, and the interners map content-equal values to one allocation,
//! so the fixpoint iterates are bit-identical to an uncached run.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

use rtpf_cache::{Classification, StateInterner, StatePair};
use rtpf_isa::MemBlockId;

/// A node's touched-block signature: for every reference in program
/// order, the block it fetches and the block its prefetch targets (if it
/// is one). This determines the node's transfer function entirely
/// (including hardware next-line folds, which depend only on the fetched
/// block).
pub(crate) type NodeSig = Arc<Vec<(MemBlockId, Option<MemBlockId>)>>;

/// The complete result of evaluating one node against one input state.
pub(crate) struct NodeEval {
    /// Out-state after all references of the node.
    pub out: Arc<StatePair>,
    /// Classification per reference, in node-local order.
    pub class: Vec<Classification>,
}

/// One memoized evaluation. The stored `Arc`s keep the keyed allocations
/// alive, so a pointer can never be reused while the entry exists.
struct Entry {
    sig: NodeSig,
    ins: Vec<Arc<StatePair>>,
    eval: Arc<NodeEval>,
}

/// Pass-through hasher for keys that are already well-mixed `u64`s.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("memo keys are pre-hashed u64s");
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = x;
    }
}

/// Multiply-rotate mixer (FxHash-style); good enough for pointers and
/// block ids, and an order of magnitude cheaper than SipHash.
fn mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(0x517c_c1b7_2722_0a95)
}

fn key_hash(sig: &NodeSig, ins: &[Arc<StatePair>]) -> u64 {
    let mut h = mix(ins.len() as u64, Arc::as_ptr(sig) as u64);
    for a in ins {
        h = mix(h, Arc::as_ptr(a) as u64);
    }
    h
}

fn sig_hash(sig: &[(MemBlockId, Option<MemBlockId>)]) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15, sig.len() as u64);
    for &(own, pf) in sig {
        h = mix(h, own.0);
        // `u64::MAX` never occurs as a real block id (addresses are u32).
        h = mix(h, pf.map_or(u64::MAX, |b| b.0));
    }
    h
}

type PreMap<V> = HashMap<u64, Vec<V>, BuildHasherDefault<PreHashed>>;

/// Dataflow topology of the classification fixpoint: VIVU adjacency with
/// the broken back edges restored, plus its SCC condensation. Every
/// analysis of a lineage shares one VIVU graph, so this is computed once
/// per cache and reused by every (re-)classification pass.
///
/// Stored in compressed-sparse-row form — one flat data array plus one
/// offset array per relation — instead of nested `Vec<Vec<_>>`: three
/// allocations replace `3n`, and the fixpoint's inner loops walk
/// contiguous memory.
pub(crate) struct Topology {
    pred_off: Vec<u32>,
    pred_dat: Vec<u32>,
    succ_off: Vec<u32>,
    succ_dat: Vec<u32>,
    comp_off: Vec<u32>,
    comp_dat: Vec<u32>,
    comp_id: Vec<u32>,
}

impl Topology {
    /// Flattens build-time adjacency and condensation lists into CSR form
    /// and derives the per-node component index.
    pub(crate) fn from_parts(
        preds: Vec<Vec<usize>>,
        succs: Vec<Vec<usize>>,
        comps: Vec<Vec<usize>>,
    ) -> Topology {
        fn csr(lists: &[Vec<usize>]) -> (Vec<u32>, Vec<u32>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            let mut dat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
            off.push(0);
            for l in lists {
                dat.extend(l.iter().map(|&x| x as u32));
                off.push(dat.len() as u32);
            }
            (off, dat)
        }
        let n = preds.len();
        let (pred_off, pred_dat) = csr(&preds);
        let (succ_off, succ_dat) = csr(&succs);
        let (comp_off, comp_dat) = csr(&comps);
        let mut comp_id = vec![0u32; n];
        for (cid, comp) in comps.iter().enumerate() {
            for &i in comp {
                comp_id[i] = cid as u32;
            }
        }
        Topology {
            pred_off,
            pred_dat,
            succ_off,
            succ_dat,
            comp_off,
            comp_dat,
            comp_id,
        }
    }

    /// Predecessors of node `i` (loop latches included).
    #[inline]
    pub(crate) fn preds(&self, i: usize) -> &[u32] {
        &self.pred_dat[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successors of node `i` (loop headers included).
    #[inline]
    pub(crate) fn succs(&self, i: usize) -> &[u32] {
        &self.succ_dat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Number of strongly connected components.
    #[inline]
    pub(crate) fn n_comps(&self) -> usize {
        self.comp_off.len() - 1
    }

    /// Members of component `c`, sorted by topological position.
    #[inline]
    pub(crate) fn comp(&self, c: usize) -> &[u32] {
        &self.comp_dat[self.comp_off[c] as usize..self.comp_off[c + 1] as usize]
    }

    /// Component index of node `i`.
    #[inline]
    pub(crate) fn comp_id(&self, i: usize) -> usize {
        self.comp_id[i] as usize
    }
}

struct Inner {
    interner: StateInterner,
    sigs: PreMap<NodeSig>,
    memo: PreMap<Entry>,
    topo: Option<Arc<Topology>>,
}

/// Interner + evaluation memo shared by every analysis of one lineage
/// (same cache configuration, timing, and hardware-prefetch setting).
pub struct AnalysisCache {
    inner: Mutex<Inner>,
}

impl AnalysisCache {
    pub fn new() -> Self {
        AnalysisCache {
            inner: Mutex::new(Inner {
                interner: StateInterner::new(),
                sigs: PreMap::default(),
                memo: PreMap::default(),
                topo: None,
            }),
        }
    }

    /// Returns the lineage's fixpoint topology, building it on first use.
    pub(crate) fn topology(&self, build: impl FnOnce() -> Topology) -> Arc<Topology> {
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        if let Some(t) = &inner.topo {
            return Arc::clone(t);
        }
        let t = Arc::new(build());
        inner.topo = Some(Arc::clone(&t));
        t
    }

    /// Returns the canonical `Arc` for a signature, so content-equal
    /// signatures from different analyses of the lineage compare (and
    /// hash) by pointer. Takes a slice and copies only on a miss, so
    /// callers can fill one scratch buffer per pass instead of allocating
    /// a `Vec` per node.
    pub(crate) fn intern_sig(&self, sig: &[(MemBlockId, Option<MemBlockId>)]) -> NodeSig {
        let h = sig_hash(sig);
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        let bucket = inner.sigs.entry(h).or_default();
        if let Some(found) = bucket.iter().find(|s| s.as_slice() == sig) {
            return Arc::clone(found);
        }
        let arc: NodeSig = Arc::new(sig.to_vec());
        bucket.push(Arc::clone(&arc));
        arc
    }

    /// Looks up a prior evaluation of `sig` against `ins`. Allocation-free;
    /// both must be interned (lineage-canonical) pointers.
    pub(crate) fn lookup(&self, sig: &NodeSig, ins: &[Arc<StatePair>]) -> Option<Arc<NodeEval>> {
        let h = key_hash(sig, ins);
        let inner = self.inner.lock().expect("analysis cache poisoned");
        inner.memo.get(&h)?.iter().find_map(|e| {
            let matches = Arc::ptr_eq(&e.sig, sig)
                && e.ins.len() == ins.len()
                && e.ins.iter().zip(ins).all(|(a, b)| Arc::ptr_eq(a, b));
            matches.then(|| Arc::clone(&e.eval))
        })
    }

    /// Interns `out`, registers the evaluation, and returns the shared
    /// record plus whether the out-state was a fresh allocation. On a
    /// concurrent duplicate insert both records are content-identical.
    pub(crate) fn store(
        &self,
        sig: &NodeSig,
        ins: &[Arc<StatePair>],
        out: StatePair,
        class: Vec<Classification>,
    ) -> (Arc<NodeEval>, bool) {
        let h = key_hash(sig, ins);
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        let fresh_before = inner.interner.fresh();
        let out = inner.interner.intern(out);
        let fresh = inner.interner.fresh() != fresh_before;
        let eval = Arc::new(NodeEval { out, class });
        inner.memo.entry(h).or_default().push(Entry {
            sig: Arc::clone(sig),
            ins: ins.to_vec(),
            eval: Arc::clone(&eval),
        });
        (eval, fresh)
    }

    /// Number of memoized node evaluations.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("analysis cache poisoned")
            .memo
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no evaluations yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCache")
            .field("evals", &self.len())
            .finish()
    }
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MayState, MustState};

    #[test]
    fn memo_roundtrip_and_ptr_identity() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let cache = AnalysisCache::new();
        let sig = cache.intern_sig(&[(MemBlockId(3), None)]);
        let base = Arc::new((MustState::new(&cfg), MayState::new(&cfg)));
        assert!(cache.lookup(&sig, std::slice::from_ref(&base)).is_none());

        let mut out = (MustState::new(&cfg), MayState::new(&cfg));
        out.0.update(MemBlockId(3));
        out.1.update(MemBlockId(3));
        let (stored, fresh) = cache.store(
            &sig,
            std::slice::from_ref(&base),
            out,
            vec![Classification::AlwaysMiss],
        );
        assert!(fresh);
        let hit = cache
            .lookup(&sig, std::slice::from_ref(&base))
            .expect("memo hit");
        assert!(Arc::ptr_eq(&hit, &stored));
        assert_eq!(hit.class, vec![Classification::AlwaysMiss]);
        assert_eq!(cache.len(), 1);

        // Content-equal signatures intern to the same canonical pointer.
        let sig2 = cache.intern_sig(&[(MemBlockId(3), None)]);
        assert!(Arc::ptr_eq(&sig, &sig2));
        assert!(cache.lookup(&sig2, std::slice::from_ref(&base)).is_some());
        // A different input misses.
        let other = Arc::clone(&hit.out);
        assert!(cache.lookup(&sig, std::slice::from_ref(&other)).is_none());
    }
}
