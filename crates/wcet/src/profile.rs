//! Per-phase timing and work counters for the WCET analysis.
//!
//! Collected by [`WcetAnalysis`](crate::WcetAnalysis) on every run (full or
//! incremental), aggregated by the optimizer across all analyses of an
//! optimization run, and surfaced by `rtpf sweep --profile` and the
//! criterion benches. All counters are plain `u64`s so profiles are `Copy`
//! and can be summed field-wise with [`AnalysisProfile::add`].

use std::fmt;

/// Cumulative per-phase breakdown of one or more WCET analyses.
///
/// Timings are wall-clock nanoseconds; counters are exact. Equality
/// compares every field, so two profiles from timed runs will practically
/// never be equal — comparisons of optimizer reports must exclude the
/// profile (see `OptimizeReport::decisions_eq` in `rtpf-core`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisProfile {
    /// Building the VIVU context graph and the reference graph (ACFG).
    pub vivu_ns: u64,
    /// Must/may dataflow fixpoint (including classification recording).
    pub fixpoint_ns: u64,
    /// Predecessor-state joins inside the fixpoint, memo misses only.
    /// Summed across solver workers, so this is CPU time — under
    /// `threads > 1` it can exceed the `fixpoint_ns` wall clock.
    pub join_ns: u64,
    /// Per-reference classify + fold walks inside the fixpoint, memo
    /// misses only; CPU time like [`join_ns`](Self::join_ns).
    pub transfer_ns: u64,
    /// Exact per-set refinement of unclassified references (DESIGN.md
    /// §12); 0 under LRU or with refinement disabled.
    pub refine_ns: u64,
    /// IPET longest-path solve and per-reference count extraction.
    pub ipet_ns: u64,
    /// Relocation / layout re-anchoring performed by the optimizer between
    /// analyses (always 0 on a standalone analysis).
    pub relocation_ns: u64,
    /// Node transfer-function evaluations across all fixpoint sweeps.
    pub fixpoint_evals: u64,
    /// Node evaluations answered from the lineage's shared memo instead of
    /// being recomputed.
    pub memo_hits: u64,
    /// Abstract state pairs answered from the interner (shared allocations).
    pub states_interned: u64,
    /// Abstract state pairs allocated fresh by the interner.
    pub states_fresh: u64,
    /// From-scratch analyses performed.
    pub full_analyses: u64,
    /// Incremental re-analyses performed.
    pub incremental_analyses: u64,
    /// VIVU nodes summed over all analyses.
    pub nodes_total: u64,
    /// VIVU nodes whose states were actually recomputed.
    pub nodes_reanalyzed: u64,
    /// Engine Optimize stage wall-clock (prefetch insertion, end to end).
    pub optimize_ns: u64,
    /// Engine Verify stage wall-clock (independent Theorem 1 re-proof).
    pub verify_ns: u64,
    /// Engine Simulate stage wall-clock (seeded trace simulation).
    pub simulate_ns: u64,
    /// Engine Energy stage wall-clock (per-technology accounting).
    pub energy_ns: u64,
    /// Figure-5 shrunk-capacity probe analyses wall-clock (the 1/2- and
    /// 1/4-capacity sub-engine runs inside a unit evaluation). A *stage*
    /// counter like `optimize_ns`: the probes' own phase work is already
    /// included in the phase fields above, so this overlaps them rather
    /// than extending `total_ns`.
    pub probe_ns: u64,
    /// Artifact-store lookups answered from the store.
    pub store_hits: u64,
    /// Artifact-store lookups that had to compute.
    pub store_misses: u64,
}

impl AnalysisProfile {
    /// Field-wise accumulation.
    pub fn add(&mut self, other: &AnalysisProfile) {
        self.vivu_ns += other.vivu_ns;
        self.fixpoint_ns += other.fixpoint_ns;
        self.join_ns += other.join_ns;
        self.transfer_ns += other.transfer_ns;
        self.refine_ns += other.refine_ns;
        self.ipet_ns += other.ipet_ns;
        self.relocation_ns += other.relocation_ns;
        self.fixpoint_evals += other.fixpoint_evals;
        self.memo_hits += other.memo_hits;
        self.states_interned += other.states_interned;
        self.states_fresh += other.states_fresh;
        self.full_analyses += other.full_analyses;
        self.incremental_analyses += other.incremental_analyses;
        self.nodes_total += other.nodes_total;
        self.nodes_reanalyzed += other.nodes_reanalyzed;
        self.optimize_ns += other.optimize_ns;
        self.verify_ns += other.verify_ns;
        self.simulate_ns += other.simulate_ns;
        self.energy_ns += other.energy_ns;
        self.probe_ns += other.probe_ns;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
    }

    /// Total analysis time across the recorded phases.
    pub fn total_ns(&self) -> u64 {
        self.vivu_ns + self.fixpoint_ns + self.refine_ns + self.ipet_ns + self.relocation_ns
    }

    /// Fraction of summed nodes that incremental re-analysis skipped.
    pub fn reuse_fraction(&self) -> f64 {
        if self.nodes_total == 0 {
            return 0.0;
        }
        1.0 - self.nodes_reanalyzed as f64 / self.nodes_total as f64
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

impl fmt::Display for AnalysisProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analyses: {} full + {} incremental ({:.1}% nodes reused)",
            self.full_analyses,
            self.incremental_analyses,
            100.0 * self.reuse_fraction()
        )?;
        writeln!(
            f,
            "phases:   vivu {:.2} ms | fixpoint {:.2} ms (join {:.2} + transfer {:.2}) | \
             refine {:.2} ms | ipet {:.2} ms | relocation {:.2} ms",
            ms(self.vivu_ns),
            ms(self.fixpoint_ns),
            ms(self.join_ns),
            ms(self.transfer_ns),
            ms(self.refine_ns),
            ms(self.ipet_ns),
            ms(self.relocation_ns)
        )?;
        write!(
            f,
            "work:     {} transfer evals + {} memo hits | states: {} interned / {} fresh",
            self.fixpoint_evals, self.memo_hits, self.states_interned, self.states_fresh
        )?;
        let staged =
            self.optimize_ns + self.verify_ns + self.simulate_ns + self.energy_ns + self.probe_ns;
        if staged > 0 || self.store_hits + self.store_misses > 0 {
            write!(
                f,
                "\nstages:   optimize {:.2} ms | verify {:.2} ms | simulate {:.2} ms | \
                 energy {:.2} ms | probes {:.2} ms | store {} hits / {} misses",
                ms(self.optimize_ns),
                ms(self.verify_ns),
                ms(self.simulate_ns),
                ms(self.energy_ns),
                ms(self.probe_ns),
                self.store_hits,
                self.store_misses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_fieldwise() {
        let mut a = AnalysisProfile {
            vivu_ns: 1,
            fixpoint_ns: 2,
            ipet_ns: 3,
            relocation_ns: 4,
            fixpoint_evals: 5,
            memo_hits: 0,
            states_interned: 6,
            states_fresh: 7,
            full_analyses: 1,
            incremental_analyses: 0,
            nodes_total: 10,
            nodes_reanalyzed: 10,
            ..Default::default()
        };
        let b = AnalysisProfile {
            incremental_analyses: 1,
            nodes_total: 10,
            nodes_reanalyzed: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.total_ns(), 10);
        assert_eq!(a.nodes_total, 20);
        assert_eq!(a.nodes_reanalyzed, 12);
        assert!((a.reuse_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_phases() {
        let p = AnalysisProfile::default();
        let s = p.to_string();
        assert!(s.contains("fixpoint"));
        assert!(s.contains("interned"));
    }
}
