//! First-miss refinement via persistence analysis.
//!
//! The must analysis charges a full miss for every execution of an
//! unclassified reference — even when the block, once loaded, can never
//! be evicted again (e.g. code reached through only one arm of a
//! conditional inside a loop: the must join drops it, but nothing ever
//! displaces it). The persistence analysis
//! ([`PersistenceState`](rtpf_cache::PersistenceState)) proves exactly
//! that property, turning such references into **first miss**: one miss
//! per run, hits afterwards.
//!
//! This module runs the persistence fixpoint over the VIVU graph and
//! reports how much of the WCET bound the refinement could recover. It is
//! a *diagnostic* refinement: `τ_w` itself stays the (sound, coarser)
//! must-based bound, so every Theorem 1 comparison in the optimizer is
//! unaffected.

use rtpf_cache::PersistenceState;
use rtpf_isa::{InstrKind, Program};

use crate::analysis::WcetAnalysis;
use crate::vivu::NodeId;

/// Outcome of the first-miss refinement.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PersistenceReport {
    /// References charged as misses by the must analysis that are in fact
    /// persistent (first-miss-only).
    pub first_miss_refs: usize,
    /// WCET cycles the refinement would recover:
    /// `Σ (n_w − 1) × (miss − hit)` over those references.
    pub recoverable_cycles: u64,
    /// Fixpoint iterations performed.
    pub iterations: usize,
}

/// Runs the persistence fixpoint and measures the first-miss slack in the
/// current bound.
pub fn persistence_report(p: &Program, a: &WcetAnalysis) -> PersistenceReport {
    let vivu = a.vivu();
    let acfg = a.acfg();
    let config = a.config();
    let timing = a.timing();
    let n = vivu.len();
    let empty = PersistenceState::new(config);
    let mut out: Vec<PersistenceState> = vec![empty.clone(); n];
    let mut computed = vec![false; n];

    let mut all_preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.preds(NodeId(i as u32))
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>()
        })
        .collect();
    for &(latch, header) in vivu.back_edges() {
        let hp = &mut all_preds[header.index()];
        if !hp.contains(&latch.index()) {
            hp.push(latch.index());
        }
    }

    let bytes = config.block_bytes();
    let transfer = |st: &mut PersistenceState, node: NodeId| {
        for &r in acfg.refs_of_node(node) {
            let reference = acfg.reference(r);
            st.update(a.layout().block_of(reference.instr, bytes));
            if let InstrKind::Prefetch { target } = p.instr(reference.instr).kind {
                st.update(a.layout().block_of(target, bytes));
            }
        }
    };

    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for &nid in vivu.topo() {
            let i = nid.index();
            let ready: Vec<usize> = all_preds[i]
                .iter()
                .copied()
                .filter(|&pr| computed[pr])
                .collect();
            let mut st = match ready.split_first() {
                None => empty.clone(),
                Some((&first, rest)) => {
                    let mut acc = out[first].clone();
                    for &pr in rest {
                        acc = acc.join(&out[pr]);
                    }
                    acc
                }
            };
            transfer(&mut st, nid);
            if !computed[i] || st != out[i] {
                out[i] = st;
                computed[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        assert!(iterations < 1000, "persistence fixpoint diverged");
    }

    // Measure: for each WCET-charged miss whose block is persistent at the
    // reference, all but the first execution would hit.
    let gain = timing.miss_cycles - timing.hit_cycles;
    let mut report = PersistenceReport {
        iterations,
        ..PersistenceReport::default()
    };
    for &nid in vivu.topo() {
        let i = nid.index();
        let mut st = match all_preds[i].split_first() {
            None => empty.clone(),
            Some((&first, rest)) => {
                let mut acc = out[first].clone();
                for &pr in rest {
                    acc = acc.join(&out[pr]);
                }
                acc
            }
        };
        for &r in acfg.refs_of_node(nid) {
            let reference = acfg.reference(r);
            let block = a.layout().block_of(reference.instr, bytes);
            if a.classification(r).counts_as_miss() && a.n_w(r) > 1 && st.is_persistent(block) {
                report.first_miss_refs += 1;
                report.recoverable_cycles += (a.n_w(r) - 1) * gain;
            }
            st.update(block);
            if let InstrKind::Prefetch { target } = p.instr(reference.instr).kind {
                st.update(a.layout().block_of(target, bytes));
            }
        }
    }
    report
}

/// The first-miss-refined WCET bound: `τ_w` minus the recoverable slack.
///
/// Still a sound bound — every recovered cycle corresponds to an
/// execution of a persistent block that physically cannot miss twice —
/// but computed *outside* the optimizer loop, so Theorem 1 comparisons
/// (which use the plain must-based `τ_w` on both sides) are unaffected.
pub fn tau_w_first_miss(p: &Program, a: &WcetAnalysis) -> u64 {
    a.tau_w() - persistence_report(p, a).recoverable_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MemTiming};
    use rtpf_isa::shape::Shape;

    fn analyze(shape: Shape, config: CacheConfig) -> (Program, WcetAnalysis) {
        let p = shape.compile("t");
        let a = WcetAnalysis::analyze(&p, &config, &MemTiming::default()).unwrap();
        (p, a)
    }

    #[test]
    fn straight_line_has_no_first_miss_slack() {
        // Cold misses execute once (n_w = 1): nothing to recover.
        let (p, a) = analyze(Shape::code(32), CacheConfig::new(2, 16, 256).unwrap());
        let r = persistence_report(&p, &a);
        assert_eq!(r.first_miss_refs, 0);
        assert_eq!(r.recoverable_cycles, 0);
    }

    #[test]
    fn one_sided_arm_in_a_roomy_cache_is_first_miss() {
        // A loop whose arms both fit the cache: the must join at the loop
        // header intersects the two latch states and keeps losing the arm
        // blocks, but nothing ever evicts them — persistence proves the
        // misses are first-only.
        let (p, a) = analyze(
            Shape::loop_(10, Shape::if_else(1, Shape::code(12), Shape::code(12))),
            CacheConfig::new(4, 16, 1024).unwrap(),
        );
        let r = persistence_report(&p, &a);
        assert!(
            r.first_miss_refs > 0,
            "expected first-miss refinement opportunities: {r:?}"
        );
        assert!(r.recoverable_cycles > 0);
        // Recoverable slack must stay below the bound itself.
        assert!(r.recoverable_cycles < a.tau_w());
    }

    #[test]
    fn refined_bound_is_tighter_but_positive() {
        let (p, a) = analyze(
            Shape::loop_(10, Shape::if_else(1, Shape::code(12), Shape::code(12))),
            CacheConfig::new(4, 16, 1024).unwrap(),
        );
        let refined = tau_w_first_miss(&p, &a);
        assert!(refined < a.tau_w());
        // Every reference still costs at least a hit.
        assert!(refined >= a.wcet_accesses());
    }

    #[test]
    fn thrashing_loop_offers_no_persistence() {
        // The body far exceeds the cache: everything is genuinely evicted
        // every iteration — persistence must not claim otherwise.
        let (p, a) = analyze(
            Shape::loop_(10, Shape::code(80)),
            CacheConfig::new(1, 16, 64).unwrap(),
        );
        let r = persistence_report(&p, &a);
        assert_eq!(r.first_miss_refs, 0, "{r:?}");
    }
}
