//! Must/may classification fixpoint over the VIVU graph.
//!
//! States propagate at basic-block (VIVU node) granularity; inside a node
//! every reference is classified against the running state and then folded
//! into it. The broken back edges are *included* in the join, and the whole
//! system is iterated to a fixpoint, so the rest instance of a loop sees
//! the states from later iterations — this keeps the classification sound
//! despite the acyclic ACFG used elsewhere.
//!
//! Software prefetch instructions have two effects: their own fetch (a
//! normal reference to their containing block) and the prefetched block
//! entering the cache. Following the semantics of next-N-line analysis
//! extension (reference [22] of the paper), the prefetched block is folded
//! into the abstract states at the prefetch point; the insertion criterion
//! of `rtpf-core` guarantees the latency is hidden on the WCET path.
//!
//! # Solver structure
//!
//! The dataflow graph (VIVU edges plus restored back edges) is condensed
//! into its strongly connected components; the condensation is a DAG, and
//! each SCC is solved to its local fixpoint once all its predecessor SCCs
//! are done. Inside an SCC the solver runs a *priority worklist*: members
//! are (re-)evaluated in topological-position order, and a node re-enters
//! the worklist only when one of its inputs actually changed. Both choices
//! are pure scheduling: the must fixpoint is the greatest fixpoint of a
//! monotone system and the may fixpoint the least one, so each is unique
//! and chaotic iteration reaches it in *any* order — the worklist order
//! only affects how fast.
//!
//! The same uniqueness argument makes the solver parallel: independent
//! ready SCCs (indegree zero in the remaining condensation DAG) are
//! handed to a scoped worker pool ([`classify_parallel`], or the
//! `threads` knob threaded through the engine). Each SCC is still solved
//! by exactly one worker with a deterministic worklist, and cross-SCC
//! inputs are published write-once, so the computed states — and every
//! classification derived from them — are bit-identical at any thread
//! count.
//!
//! # Incremental re-analysis
//!
//! [`classify_incremental`] re-runs the fixpoint after a program edit that
//! preserves the CFG (prefetch insertion never adds blocks or edges). The
//! solver evaluates the SCCs of the dataflow graph in condensation order,
//! which makes an exact change-driven cutoff possible:
//!
//! * an SCC is **recomputed** (from the same ⊤/⊥ start a from-scratch run
//!   uses) iff one of its nodes' touched-block signature changed or one of
//!   its external inputs' out-states changed *in content*;
//! * otherwise it is **skipped** and keeps its previous out-states.
//!
//! By induction over the condensation order this reproduces the
//! from-scratch solution exactly: a recomputed SCC given exact inputs is
//! solved to its local extremal fixpoint, which is the restriction of the
//! global one; a skipped SCC has the same transfer functions *and* the
//! same inputs as in the previous pass, so its previous local fixpoint is
//! still the restriction of the global one. Because abstract cache states
//! forget a block after `assoc` conflicting accesses to its set, edits
//! decay with dataflow distance and most SCCs are skipped in practice —
//! the whole-closure alternative would mark nearly everything affected
//! whenever relocation shifts addresses near the entry.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use rtpf_cache::{join_pairs_into, CacheConfig, Classification, StatePair};
use rtpf_isa::{InstrKind, Layout, MemBlockId, Program};

use crate::acfg::Acfg;
use crate::error::AnalysisError;
use crate::memo::{AnalysisCache, NodeEval, NodeSig, Topology};
use crate::vivu::{NodeId, VivuGraph};

/// Per-reference classification results.
#[derive(Clone, Debug)]
pub struct ClassifyResult {
    /// Classification per [`RefId`](crate::acfg::RefId) index.
    pub class: Vec<Classification>,
    /// Memory block fetched by each reference.
    pub mem_block: Vec<MemBlockId>,
    /// Block targeted by each reference's prefetch, if it is one.
    pub pf_block: Vec<Option<MemBlockId>>,
    /// Interned out-state (must, may) per VIVU node.
    pub out_states: Vec<Arc<StatePair>>,
    /// Touched-block signature per VIVU node (drives the incremental
    /// dirty check and the evaluation memo of the next pass).
    pub sigs: Vec<NodeSig>,
    /// Worklist evaluations performed (pops plus singleton solves;
    /// deterministic across thread counts — the per-SCC worklist order
    /// is fixed).
    pub iterations: usize,
    /// Node evaluations actually executed (memo misses).
    pub evals: u64,
    /// Node evaluations answered by the shared memo.
    pub memo_hits: u64,
    /// States answered from the interner.
    pub states_interned: u64,
    /// States allocated fresh.
    pub states_fresh: u64,
    /// Nodes whose states were recomputed (equals the node count for a
    /// from-scratch run).
    pub nodes_reanalyzed: usize,
    /// Nanoseconds spent joining predecessor states (memo misses only),
    /// summed across workers — CPU time, not wall clock, under `threads > 1`.
    pub join_ns: u64,
    /// Nanoseconds spent walking references (classify + fold per
    /// reference), summed across workers like [`join_ns`](Self::join_ns).
    pub transfer_ns: u64,
}

/// The parts of a previous classification that seed an incremental run.
///
/// `acfg` must be the reference graph the previous results were computed
/// on; reference ids are matched positionally per node, which is valid
/// because prefetch insertion preserves the VIVU node set.
#[derive(Clone, Copy)]
pub struct PrevPass<'a> {
    pub acfg: &'a Acfg,
    pub class: &'a [Classification],
    pub mem_block: &'a [MemBlockId],
    pub pf_block: &'a [Option<MemBlockId>],
    pub out_states: &'a [Arc<StatePair>],
    pub sigs: &'a [NodeSig],
}

/// Runs the must/may fixpoint and classifies every reference.
pub fn classify(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
) -> Result<ClassifyResult, AnalysisError> {
    classify_with_hw(p, layout, vivu, acfg, config, None)
}

/// [`classify`] extended with **next-N-line hardware prefetching**
/// semantics, reproducing the abstract-semantics extension of the paper's
/// reference [22]: every fetch of block `b` additionally folds blocks
/// `b+1 ..= b+n` into the abstract states (the "next-line always"
/// policy).
///
/// The resulting classification assumes ideal prefetch timing (the
/// prefetched line arrives before its first use), so the WCET computed
/// from it is *optimistic* for hardware prefetching — which is exactly
/// the comparison the paper draws: hardware prefetching has no safe
/// WCET story, software insertion does.
pub fn classify_with_hw(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
) -> Result<ClassifyResult, AnalysisError> {
    let cache = AnalysisCache::new();
    run_classify(p, layout, vivu, acfg, config, hw_next_line, None, &cache, 1)
}

/// [`classify_with_hw`] solving ready SCCs of the condensation DAG on
/// `threads` scoped worker threads (`1` = in-place sequential). Results
/// are bit-identical at any thread count; only the eval/memo-hit and
/// interned/fresh *splits* may shift (their sums stay fixed), because a
/// racing worker can win the memo slot another would have filled.
pub fn classify_parallel(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    threads: usize,
) -> Result<ClassifyResult, AnalysisError> {
    let cache = AnalysisCache::new();
    run_classify(
        p,
        layout,
        vivu,
        acfg,
        config,
        hw_next_line,
        None,
        &cache,
        threads,
    )
}

/// [`classify_with_hw`] recording its evaluations into a caller-provided
/// lineage cache, so later incremental passes can reuse them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn classify_full_cached(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    cache: &AnalysisCache,
    threads: usize,
) -> Result<ClassifyResult, AnalysisError> {
    run_classify(
        p,
        layout,
        vivu,
        acfg,
        config,
        hw_next_line,
        None,
        cache,
        threads,
    )
}

/// Re-classifies after a CFG-preserving program edit, recomputing only the
/// SCCs whose touched-block signature or inputs changed (see the module
/// docs) and answering repeated node evaluations from `cache`, which is
/// shared across every analysis of the lineage. Produces results
/// identical to [`classify_with_hw`] on the new program.
#[allow(clippy::too_many_arguments)]
pub fn classify_incremental(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    prev: PrevPass<'_>,
    cache: &AnalysisCache,
    threads: usize,
) -> Result<ClassifyResult, AnalysisError> {
    run_classify(
        p,
        layout,
        vivu,
        acfg,
        config,
        hw_next_line,
        Some(prev),
        cache,
        threads,
    )
}

/// Fills `buf` with one node's touched-block signature: the per-reference
/// sequence of `(own block, prefetch target block)` pairs, which
/// determines the node's transfer function entirely (hardware next-line
/// folds depend only on the fetched block). Reuses the caller's scratch
/// buffer so a classify pass allocates no per-node signature vectors.
/// `block_shift` is `log2(block_bytes)` — block sizes are validated powers
/// of two, and this runs for every reference of every pass, so the
/// address-to-block map is a shift rather than a 64-bit division.
fn fill_node_sig(
    p: &Program,
    layout: &Layout,
    acfg: &Acfg,
    block_shift: u32,
    nid: NodeId,
    buf: &mut Vec<(MemBlockId, Option<MemBlockId>)>,
) {
    buf.clear();
    for &r in acfg.refs_of_node(nid) {
        let reference = acfg.reference(r);
        let own = MemBlockId(layout.addr(reference.instr) >> block_shift);
        let pf = match p.instr(reference.instr).kind {
            InstrKind::Prefetch { target } => Some(MemBlockId(layout.addr(target) >> block_shift)),
            _ => None,
        };
        buf.push((own, pf));
    }
}

/// Strongly connected components of the dataflow graph, in condensation
/// (topological) order. Iterative Tarjan; the algorithm emits SCCs in
/// reverse topological order, so the result is reversed before returning.
fn condensation(n: usize, succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < succs[v].len() {
                let w = succs[v][frame.1];
                frame.1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps.reverse();
    comps
}

/// Builds the fixpoint topology of a VIVU graph: adjacency with the
/// broken back edges restored, and its SCC condensation with members
/// sorted by topological position. Shared across a lineage via
/// [`AnalysisCache::topology`].
fn build_topology(vivu: &VivuGraph) -> Topology {
    let n = vivu.len();
    let mut preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.preds(NodeId(i as u32))
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>()
        })
        .collect();
    let mut succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.succs(NodeId(i as u32))
                .iter()
                .map(|s| s.index())
                .collect::<Vec<_>>()
        })
        .collect();
    for &(latch, header) in vivu.back_edges() {
        let hp = &mut preds[header.index()];
        if !hp.contains(&latch.index()) {
            hp.push(latch.index());
        }
        let ls = &mut succs[latch.index()];
        if !ls.contains(&header.index()) {
            ls.push(header.index());
        }
    }

    let mut comps = condensation(n, &succs);
    let mut pos = vec![0usize; n];
    for (k, nid) in vivu.topo().iter().enumerate() {
        pos[nid.index()] = k;
    }
    for comp in &mut comps {
        comp.sort_unstable_by_key(|&i| pos[i]);
    }

    Topology::from_parts(preds, succs, comps)
}

/// Classifies one reference and applies its fetch to the abstract state —
/// fused so the classification answers fall out of the update's own
/// binary searches — including the hardware next-line folds when enabled.
fn classify_touch(
    state: &mut StatePair,
    b: MemBlockId,
    hw_next_line: Option<u32>,
) -> Classification {
    let guaranteed = state.0.update_classify(b);
    let possible = state.1.update_classify(b);
    if let Some(n) = hw_next_line {
        for k in 1..=u64::from(n) {
            let nb = MemBlockId(b.0 + k);
            state.0.update(nb);
            state.1.update(nb);
        }
    }
    if guaranteed {
        Classification::AlwaysHit
    } else if !possible {
        Classification::AlwaysMiss
    } else {
        Classification::Unclassified
    }
}

/// Everything a worker needs to learn about a node once its component
/// converged. Published exactly once per node through a `OnceLock`, which
/// is both the cross-thread synchronization (a successor component reads
/// its external inputs here) and the proof that no state is ever
/// published twice.
struct NodeOutcome {
    /// Converged (interned) out-state.
    out: Arc<StatePair>,
    /// The node's final evaluation; `None` for skipped nodes, whose
    /// classifications are copied from the previous pass instead.
    eval: Option<Arc<NodeEval>>,
    /// Out-state content differs from the previous pass (trivially true
    /// in a from-scratch run).
    changed: bool,
    /// Whether the node was actually re-evaluated this pass.
    recomputed: bool,
}

/// Order-independent work counters, owned per worker and summed at the
/// end. The sums are deterministic at any thread count; only the
/// evals/memo-hits and interned/fresh *splits* can shift when workers
/// race for a memo slot.
#[derive(Clone, Copy, Default)]
struct Counters {
    iterations: usize,
    evals: u64,
    memo_hits: u64,
    states_interned: u64,
    states_fresh: u64,
    join_ns: u64,
    transfer_ns: u64,
}

impl Counters {
    fn merge(&mut self, o: Counters) {
        self.iterations += o.iterations;
        self.evals += o.evals;
        self.memo_hits += o.memo_hits;
        self.states_interned += o.states_interned;
        self.states_fresh += o.states_fresh;
        self.join_ns += o.join_ns;
        self.transfer_ns += o.transfer_ns;
    }
}

/// Per-worker scratch. All vectors are node-indexed and reused across
/// every component the worker solves, so a worker's steady-state
/// allocation rate is zero: joins merge into `work`, signatures and
/// inputs live in reusable buffers, and the worklist is a bitset plus a
/// binary heap of component-local indices.
pub(crate) struct WorkerState {
    /// Input states of the node under evaluation.
    ins_buf: Vec<Arc<StatePair>>,
    /// k-way merge cursors.
    cursors: Vec<usize>,
    /// Join destination + reference-walk state; cloned once from the
    /// no-information sentinel (carries the geometry, empty words).
    work: StatePair,
    /// Current out-state per member of the component being solved.
    local_out: Vec<Option<Arc<StatePair>>>,
    /// Final evaluation per member of the component being solved.
    local_eval: Vec<Option<Arc<NodeEval>>>,
    /// Component-local index (= topological rank within the component).
    local_idx: Vec<u32>,
    /// Worklist membership bit per node.
    pend: Vec<bool>,
    /// Priority worklist: pops the pending member with the lowest
    /// topological position first, so straight-line chains inside a loop
    /// body are swept in order instead of rescanning the whole component.
    heap: BinaryHeap<Reverse<u32>>,
    c: Counters,
}

impl WorkerState {
    fn new(n: usize, empty: &StatePair) -> WorkerState {
        WorkerState {
            ins_buf: Vec::new(),
            cursors: Vec::new(),
            work: empty.clone(),
            local_out: vec![None; n],
            local_eval: vec![None; n],
            local_idx: vec![0; n],
            pend: vec![false; n],
            heap: BinaryHeap::new(),
            c: Counters::default(),
        }
    }

    /// Fetches a scratch from the lineage pool, falling back to a fresh
    /// one when the pool is empty or sized for a different graph. A
    /// successfully finished solve leaves every node-indexed vector in its
    /// initial state (worklist drained, local slots `take`n), so pooled
    /// reuse skips the per-pass allocation *and* zero-fill.
    fn acquire(cache: &AnalysisCache, n: usize, empty: &StatePair) -> WorkerState {
        match cache.take_scratch() {
            Some(ws) if ws.local_idx.len() == n => ws,
            _ => WorkerState::new(n, empty),
        }
    }

    /// Returns the scratch to the pool and hands back its counters. Only
    /// called on clean exits — a worker that errored mid-component drops
    /// its scratch instead, since the worklist invariants no longer hold.
    fn release(mut self, cache: &AnalysisCache) -> Counters {
        let c = self.c;
        self.c = Counters::default();
        self.ins_buf.clear();
        cache.put_scratch(self);
        c
    }
}

/// Read-only solver context shared by every worker.
struct Shared<'a> {
    top: &'a Topology,
    sigs: &'a [NodeSig],
    cache: &'a AnalysisCache,
    prev: Option<PrevPass<'a>>,
    dirty: Option<&'a [bool]>,
    hw_next_line: Option<u32>,
    published: &'a [OnceLock<NodeOutcome>],
}

impl Shared<'_> {
    fn publish(&self, i: usize, outcome: NodeOutcome) {
        if self.published[i].set(outcome).is_err() {
            unreachable!("node {i} published twice — a component was scheduled twice");
        }
    }

    fn changed_of(&self, i: usize, new: &Arc<StatePair>) -> bool {
        match self.prev {
            Some(pv) => !Arc::ptr_eq(new, &pv.out_states[i]) && **new != *pv.out_states[i],
            None => true,
        }
    }

    /// Evaluates node `i` of component `cid` against its current inputs:
    /// memo hit, or a real k-way join + per-reference classify/fold.
    ///
    /// Must analysis is an intersection-join ("available blocks")
    /// problem: the sound *and precise* solution is the greatest
    /// fixpoint, reached by descending from an optimistic start.
    /// Same-component predecessors whose out-state has not been computed
    /// yet are therefore *ignored* in the join (treated as ⊤), exactly
    /// like uninitialized nodes in available-expressions analysis;
    /// seeding them as "empty cache" would poison every loop with its own
    /// not-yet-analysed back edge. The may analysis (union join) is
    /// indifferent: skipping an uncomputed predecessor equals joining
    /// with its ∅ bottom. Cross-component predecessors are always
    /// published before this component is scheduled.
    fn eval_node(&self, cid: usize, i: usize, ws: &mut WorkerState) -> Arc<NodeEval> {
        ws.ins_buf.clear();
        for &pr in self.top.preds(i) {
            let pr = pr as usize;
            if self.top.comp_id(pr) == cid {
                if let Some(a) = &ws.local_out[pr] {
                    ws.ins_buf.push(Arc::clone(a));
                }
            } else {
                let ext = self.published[pr]
                    .get()
                    .expect("external predecessor published before scheduling");
                ws.ins_buf.push(Arc::clone(&ext.out));
            }
        }
        if let Some(hit) = self.cache.lookup(&self.sigs[i], &ws.ins_buf) {
            ws.c.memo_hits += 1;
            return hit;
        }
        ws.c.evals += 1;
        let t_join = Instant::now();
        join_pairs_into(&mut ws.work, &ws.ins_buf, &mut ws.cursors);
        let t_walk = Instant::now();
        ws.c.join_ns += t_walk.duration_since(t_join).as_nanos() as u64;
        let sig = &self.sigs[i];
        let mut class = Vec::with_capacity(sig.len());
        for &(own, pf) in sig.iter() {
            class.push(classify_touch(&mut ws.work, own, self.hw_next_line));
            if let Some(tb) = pf {
                ws.work.0.update(tb);
                ws.work.1.update(tb);
            }
        }
        ws.c.transfer_ns += t_walk.elapsed().as_nanos() as u64;
        let (stored, fresh) = self.cache.store(sig, &ws.ins_buf, &ws.work, class);
        if fresh {
            ws.c.states_fresh += 1;
        } else {
            ws.c.states_interned += 1;
        }
        stored
    }

    /// Solves component `cid` to its local fixpoint and publishes every
    /// member's outcome. Exactly one worker runs this per component, and
    /// only after all predecessor components have been published.
    fn process_comp(&self, cid: usize, ws: &mut WorkerState) -> Result<(), AnalysisError> {
        let comp = self.top.comp(cid);
        // Incremental cutoff: skip the whole component when no member's
        // signature and no external input changed (see module docs).
        let recompute = match (self.prev, self.dirty) {
            (Some(_), Some(dirty)) => comp.iter().any(|&i| {
                let i = i as usize;
                dirty[i]
                    || self.top.preds(i).iter().any(|&pr| {
                        let pr = pr as usize;
                        self.top.comp_id(pr) != cid
                            && self.published[pr]
                                .get()
                                .expect("external predecessor published before scheduling")
                                .changed
                    })
            }),
            _ => true,
        };
        if !recompute {
            let pv = self.prev.expect("skipping requires a previous pass");
            for &i in comp {
                let i = i as usize;
                self.publish(
                    i,
                    NodeOutcome {
                        out: Arc::clone(&pv.out_states[i]),
                        eval: None,
                        changed: false,
                        recomputed: false,
                    },
                );
            }
            return Ok(());
        }
        if comp.len() == 1 && !self.top.preds(comp[0] as usize).contains(&comp[0]) {
            // Acyclic singleton: one evaluation is the exact solution.
            let i = comp[0] as usize;
            ws.c.iterations += 1;
            let ev = self.eval_node(cid, i, ws);
            let changed = self.changed_of(i, &ev.out);
            self.publish(
                i,
                NodeOutcome {
                    out: Arc::clone(&ev.out),
                    eval: Some(ev),
                    changed,
                    recomputed: true,
                },
            );
            return Ok(());
        }
        // Priority worklist with change-driven re-evaluation: a member is
        // (re-)evaluated only while one of its inputs may have changed
        // since its last evaluation. Skipping is exact — re-applying a
        // transfer to unchanged inputs reproduces the same output — and
        // chaotic iteration from the extremal start reaches the unique
        // extremal fixpoint in any order; topological-position priority
        // just minimizes wasted evaluations against half-updated inputs.
        debug_assert!(ws.heap.is_empty());
        for (k, &i) in comp.iter().enumerate() {
            let i = i as usize;
            ws.local_idx[i] = k as u32;
            ws.local_out[i] = None;
            ws.local_eval[i] = None;
            ws.pend[i] = true;
            ws.heap.push(Reverse(k as u32));
        }
        // The solver descends a finite lattice, so this guard only trips
        // on a broken transfer function or join — surfaced as a typed
        // error instead of a panic.
        let limit = comp.len().saturating_mul(1_000_000);
        let mut pops = 0usize;
        while let Some(Reverse(k)) = ws.heap.pop() {
            let i = comp[k as usize] as usize;
            if !ws.pend[i] {
                continue;
            }
            ws.pend[i] = false;
            pops += 1;
            if pops > limit {
                ws.heap.clear();
                return Err(AnalysisError::FixpointDiverged { iterations: pops });
            }
            let ev = self.eval_node(cid, i, ws);
            let same = ws.local_out[i]
                .as_ref()
                .is_some_and(|old| Arc::ptr_eq(old, &ev.out) || **old == *ev.out);
            if !same {
                ws.local_out[i] = Some(Arc::clone(&ev.out));
                for &s in self.top.succs(i) {
                    let s = s as usize;
                    if self.top.comp_id(s) == cid && !ws.pend[s] {
                        ws.pend[s] = true;
                        ws.heap.push(Reverse(ws.local_idx[s]));
                    }
                }
            }
            ws.local_eval[i] = Some(ev);
        }
        ws.c.iterations += pops;
        for &i in comp {
            let i = i as usize;
            let out = ws.local_out[i]
                .take()
                .expect("fixpoint computed every member");
            let eval = ws.local_eval[i]
                .take()
                .expect("fixpoint evaluated every member");
            let changed = self.changed_of(i, &out);
            self.publish(
                i,
                NodeOutcome {
                    out,
                    eval: Some(eval),
                    changed,
                    recomputed: true,
                },
            );
        }
        Ok(())
    }
}

/// Runs ready components on `threads` scoped workers. The condensation
/// DAG is walked with per-component indegree counters: a component enters
/// the ready queue when its last predecessor completes, so a worker never
/// reads an unpublished external input.
fn solve_parallel(
    shared: &Shared<'_>,
    n: usize,
    empty: &StatePair,
    threads: usize,
) -> Result<Counters, AnalysisError> {
    let top = shared.top;
    let n_comps = top.n_comps();
    let indeg: Vec<AtomicU32> = (0..n_comps)
        .map(|c| AtomicU32::new(top.comp_indegree(c)))
        .collect();
    let ready: Mutex<VecDeque<u32>> = Mutex::new(
        (0..n_comps as u32)
            .filter(|&c| top.comp_indegree(c as usize) == 0)
            .collect(),
    );
    let cvar = Condvar::new();
    let open = AtomicUsize::new(n_comps);
    let done = AtomicBool::new(n_comps == 0);
    let failure: Mutex<Option<AnalysisError>> = Mutex::new(None);

    let mut totals = Counters::default();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut ws = WorkerState::acquire(shared.cache, n, empty);
                    loop {
                        let cid = {
                            let mut q = ready.lock().expect("scheduler queue poisoned");
                            loop {
                                if done.load(Ordering::Acquire) {
                                    return ws.release(shared.cache);
                                }
                                if let Some(c) = q.pop_front() {
                                    break c;
                                }
                                q = cvar.wait(q).expect("scheduler queue poisoned");
                            }
                        } as usize;
                        match shared.process_comp(cid, &mut ws) {
                            Ok(()) => {
                                for &sc in top.comp_succs(cid) {
                                    if indeg[sc as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                        let mut q = ready.lock().expect("scheduler queue poisoned");
                                        q.push_back(sc);
                                        cvar.notify_one();
                                    }
                                }
                                if open.fetch_sub(1, Ordering::AcqRel) == 1 {
                                    // Flip `done` under the queue lock so a
                                    // worker between its `done` check and
                                    // `wait` cannot miss the wakeup.
                                    let _q = ready.lock().expect("scheduler queue poisoned");
                                    done.store(true, Ordering::Release);
                                    cvar.notify_all();
                                }
                            }
                            Err(e) => {
                                let mut f = failure.lock().expect("failure slot poisoned");
                                if f.is_none() {
                                    *f = Some(e);
                                }
                                drop(f);
                                let _q = ready.lock().expect("scheduler queue poisoned");
                                done.store(true, Ordering::Release);
                                cvar.notify_all();
                                return ws.c;
                            }
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            totals.merge(w.join().expect("classify worker panicked"));
        }
    });
    match failure.into_inner().expect("failure slot poisoned") {
        Some(e) => Err(e),
        None => Ok(totals),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_classify(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    prev: Option<PrevPass<'_>>,
    cache: &AnalysisCache,
    threads: usize,
) -> Result<ClassifyResult, AnalysisError> {
    let n = vivu.len();
    // No-information sentinel for predecessor-less nodes. Cloning it is
    // allocation-free (empty packed-word vectors) — see `rtpf_cache::no_info`.
    let empty: StatePair = rtpf_cache::no_info(config);

    // Adjacency (with back edges) and SCC condensation are identical for
    // every analysis of the lineage — fetched from the shared cache,
    // built on the first pass.
    let top = cache.topology(|| build_topology(vivu));

    let block_shift = config.block_bytes().trailing_zeros();
    // Canonicalize signatures through the lineage cache: a node whose
    // signature content is unchanged keeps the previous pass's `Arc`
    // (no hashing), everything else is interned so content-equal
    // signatures across candidate analyses share one pointer. The memo
    // key is then a pure pointer tuple. `dirty[i]` falls out for free.
    // One scratch buffer serves every node; the interner copies on miss.
    let mut scratch: Vec<(MemBlockId, Option<MemBlockId>)> = Vec::new();
    let mut sigs: Vec<NodeSig> = Vec::with_capacity(n);
    let dirty: Option<Vec<bool>> = match prev {
        Some(pv) => {
            let mut d = Vec::with_capacity(n);
            for i in 0..n {
                fill_node_sig(p, layout, acfg, block_shift, NodeId(i as u32), &mut scratch);
                if pv.sigs[i].as_slice() == scratch.as_slice() {
                    sigs.push(Arc::clone(&pv.sigs[i]));
                    d.push(false);
                } else {
                    sigs.push(cache.intern_sig(&scratch));
                    d.push(true);
                }
            }
            Some(d)
        }
        None => {
            for i in 0..n {
                fill_node_sig(p, layout, acfg, block_shift, NodeId(i as u32), &mut scratch);
                sigs.push(cache.intern_sig(&scratch));
            }
            None
        }
    };

    let published: Vec<OnceLock<NodeOutcome>> = (0..n).map(|_| OnceLock::new()).collect();
    let shared = Shared {
        top: &top,
        sigs: &sigs,
        cache,
        prev,
        dirty: dirty.as_deref(),
        hw_next_line,
        published: &published,
    };

    // One worker per ready component up to `threads`; a single worker
    // walks the condensation order in place, with no pool, no atomics
    // traffic, and the same deterministic per-component worklist.
    let threads = threads.max(1).min(top.n_comps().max(1));
    let totals = if threads == 1 {
        let mut ws = WorkerState::acquire(cache, n, &empty);
        for cid in 0..top.n_comps() {
            shared.process_comp(cid, &mut ws)?;
        }
        ws.release(cache)
    } else {
        solve_parallel(&shared, n, &empty, threads)?
    };

    let outcomes: Vec<NodeOutcome> = published
        .into_iter()
        .map(|o| o.into_inner().expect("scheduler published every node"))
        .collect();

    // Final recording pass: recomputed nodes publish the classifications
    // of their converged evaluation; skipped nodes copy the previous
    // results positionally.
    let m = acfg.len();
    let mut class = vec![Classification::Unclassified; m];
    let mut mem_block = vec![MemBlockId(0); m];
    let mut pf_block: Vec<Option<MemBlockId>> = vec![None; m];
    let mut nodes_reanalyzed = 0usize;
    for &nid in vivu.topo() {
        let i = nid.index();
        let oc = &outcomes[i];
        if !oc.recomputed {
            let prev = prev.expect("skipped nodes exist only in incremental mode");
            for (o, r) in prev
                .acfg
                .refs_of_node(nid)
                .iter()
                .zip(acfg.refs_of_node(nid))
            {
                class[r.index()] = prev.class[o.index()];
                mem_block[r.index()] = prev.mem_block[o.index()];
                pf_block[r.index()] = prev.pf_block[o.index()];
            }
            continue;
        }
        nodes_reanalyzed += 1;
        let ev = oc.eval.as_ref().expect("recomputed nodes were evaluated");
        let refs = acfg.refs_of_node(nid);
        debug_assert_eq!(refs.len(), ev.class.len());
        for ((&r, &cl), &(own, pf)) in refs.iter().zip(&ev.class).zip(sigs[i].iter()) {
            class[r.index()] = cl;
            mem_block[r.index()] = own;
            pf_block[r.index()] = pf;
        }
    }

    let out_states: Vec<Arc<StatePair>> = outcomes.into_iter().map(|o| o.out).collect();

    Ok(ClassifyResult {
        class,
        mem_block,
        pf_block,
        out_states,
        sigs,
        iterations: totals.iterations,
        evals: totals.evals,
        memo_hits: totals.memo_hits,
        states_interned: totals.states_interned,
        states_fresh: totals.states_fresh,
        nodes_reanalyzed,
        join_ns: totals.join_ns,
        transfer_ns: totals.transfer_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn run(shape: Shape, config: CacheConfig) -> (Program, Acfg, ClassifyResult) {
        let p = shape.compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &config).unwrap();
        (p, a, c)
    }

    #[test]
    fn straight_line_first_item_misses_rest_hit() {
        // 8 instructions = 32 bytes = two 16-byte blocks in a big cache.
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let (_, a, c) = run(Shape::code(8), cfg);
        let mut misses = 0;
        for r in a.refs() {
            if c.class[r.id.index()].counts_as_miss() {
                misses += 1;
            }
        }
        // One (cold) miss per distinct block.
        assert_eq!(misses, 2);
    }

    #[test]
    fn loop_rest_iterations_hit_when_cache_fits() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        // 5-instr body fits the cache: rest instance must be all hits.
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg).unwrap();
        for r in a.refs() {
            let node = v.node(r.node);
            let is_rest = node
                .ctx
                .frames()
                .iter()
                .any(|&(_, it)| it == crate::context::Iter::Rest);
            if is_rest {
                assert_eq!(
                    c.class[r.id.index()],
                    Classification::AlwaysHit,
                    "rest reference {} should hit",
                    r.id
                );
            }
        }
    }

    #[test]
    fn thrashing_loop_misses_in_rest() {
        // Direct-mapped 32-byte cache (two 16-byte lines); a 40-instr body
        // (160 B) cannot fit, so rest iterations keep missing somewhere.
        let cfg = CacheConfig::new(1, 16, 32).unwrap();
        let p = Shape::loop_(10, Shape::code(40)).compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg).unwrap();
        let rest_misses = a
            .refs()
            .iter()
            .filter(|r| {
                v.node(r.node)
                    .ctx
                    .frames()
                    .iter()
                    .any(|&(_, it)| it == crate::context::Iter::Rest)
                    && c.class[r.id.index()].counts_as_miss()
            })
            .count();
        assert!(rest_misses > 0);
    }

    #[test]
    fn prefetch_makes_downstream_reference_hit() {
        // Straight line long enough to span blocks; insert a prefetch for a
        // later block early, then the later block's first item must be
        // always-hit.
        let cfg = CacheConfig::new(4, 16, 256).unwrap();
        let mut p = Shape::code(12).compile("pf");
        let b0 = p.entry();
        // Target: the instruction at position 8 (block 2 with 16-B lines).
        let target = p.block(b0).instrs()[8];
        p.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg).unwrap();
        // Find the reference fetching `target`.
        let r = a.refs().iter().find(|r| r.instr == target).unwrap();
        assert_eq!(c.class[r.id.index()], Classification::AlwaysHit);
        assert!(c.pf_block.iter().filter(|b| b.is_some()).count() == 1);
    }

    #[test]
    fn next_line_semantics_convert_sequential_misses_to_hits() {
        // Reference [22]: with an always-on next-line prefetcher, the
        // sequential cold misses of straight-line code collapse to the
        // first block only (ideal timing).
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let p = Shape::code(32).compile("seq");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let plain = classify(&p, &layout, &v, &a, &cfg).unwrap();
        let hw = classify_with_hw(&p, &layout, &v, &a, &cfg, Some(1)).unwrap();
        let misses = |c: &ClassifyResult| c.class.iter().filter(|x| x.counts_as_miss()).count();
        assert_eq!(misses(&plain), 8, "32 instrs = 8 cold blocks");
        assert_eq!(misses(&hw), 1, "only the very first block misses");
    }

    #[test]
    fn conditional_merge_is_conservative() {
        // A tiny cache where then/else arms load conflicting blocks: after
        // the merge neither arm's block is guaranteed.
        let cfg = CacheConfig::new(1, 16, 16).unwrap(); // one line!
        let (_, a, c) = run(
            Shape::seq([
                Shape::if_else(1, Shape::code(8), Shape::code(8)),
                Shape::code(4),
            ]),
            cfg,
        );
        // At least one always-miss (cold code) and the merge code cannot be
        // all hits.
        let hits = c
            .class
            .iter()
            .filter(|c| matches!(c, Classification::AlwaysHit))
            .count();
        assert!(hits < a.len());
    }

    #[test]
    fn parallel_solve_matches_sequential() {
        // Non-trivial nesting so the condensation has real width and real
        // cyclic components; 3 workers must reproduce the 1-worker result
        // bit for bit.
        let cfg = CacheConfig::new(2, 16, 128).unwrap();
        let p = Shape::seq([
            Shape::code(6),
            Shape::loop_(
                8,
                Shape::seq([Shape::code(4), Shape::loop_(3, Shape::code(6))]),
            ),
            Shape::if_else(1, Shape::code(10), Shape::loop_(5, Shape::code(7))),
            Shape::code(5),
        ])
        .compile("par");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let seq = classify_parallel(&p, &layout, &v, &a, &cfg, None, 1).unwrap();
        let par = classify_parallel(&p, &layout, &v, &a, &cfg, None, 3).unwrap();
        assert_eq!(par.class, seq.class);
        assert_eq!(par.mem_block, seq.mem_block);
        assert_eq!(par.pf_block, seq.pf_block);
        assert_eq!(par.iterations, seq.iterations);
        assert_eq!(par.evals + par.memo_hits, seq.evals + seq.memo_hits);
        for (a, b) in par.out_states.iter().zip(&seq.out_states) {
            assert_eq!(**a, **b);
        }
    }

    #[test]
    fn incremental_after_insert_matches_from_scratch() {
        // Insert a prefetch mid-program and check the incremental pass
        // reproduces the from-scratch classification exactly while
        // recomputing only part of the graph.
        let cfg = CacheConfig::new(2, 16, 128).unwrap();
        let p1 = Shape::seq([
            Shape::code(6),
            Shape::loop_(8, Shape::code(10)),
            Shape::code(12),
        ])
        .compile("inc");
        let layout1 = Layout::of(&p1);
        let v = VivuGraph::build(&p1).unwrap();
        let a1 = Acfg::build(&p1, &v);
        let c1 = classify(&p1, &layout1, &v, &a1, &cfg).unwrap();

        let mut p2 = p1.clone();
        let b0 = p2.entry();
        let target = p2.block(b0).instrs()[4];
        p2.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let anchor = p2.block(b0).instrs()[0];
        let layout2 = Layout::anchored(&p2, anchor, layout1.addr(anchor));

        let a2 = Acfg::build(&p2, &v);
        let full = classify(&p2, &layout2, &v, &a2, &cfg).unwrap();
        let inc = classify_incremental(
            &p2,
            &layout2,
            &v,
            &a2,
            &cfg,
            None,
            PrevPass {
                acfg: &a1,
                class: &c1.class,
                mem_block: &c1.mem_block,
                pf_block: &c1.pf_block,
                out_states: &c1.out_states,
                sigs: &c1.sigs,
            },
            &AnalysisCache::new(),
            1,
        )
        .unwrap();
        assert_eq!(inc.class, full.class);
        assert_eq!(inc.mem_block, full.mem_block);
        assert_eq!(inc.pf_block, full.pf_block);
        assert!(
            inc.nodes_reanalyzed <= full.nodes_reanalyzed,
            "incremental should not redo more nodes than from-scratch"
        );
        for (i, o) in inc.out_states.iter().zip(&full.out_states) {
            assert_eq!(**i, **o);
        }
    }

    #[test]
    fn incremental_with_no_change_reuses_everything() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let p = Shape::loop_(10, Shape::code(8)).compile("same");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c1 = classify(&p, &layout, &v, &a, &cfg).unwrap();
        let inc = classify_incremental(
            &p,
            &layout,
            &v,
            &a,
            &cfg,
            None,
            PrevPass {
                acfg: &a,
                class: &c1.class,
                mem_block: &c1.mem_block,
                pf_block: &c1.pf_block,
                out_states: &c1.out_states,
                sigs: &c1.sigs,
            },
            &AnalysisCache::new(),
            1,
        )
        .unwrap();
        assert_eq!(inc.nodes_reanalyzed, 0);
        assert_eq!(inc.evals, 0);
        assert_eq!(inc.class, c1.class);
    }
}
