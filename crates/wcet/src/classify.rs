//! Must/may classification fixpoint over the VIVU graph.
//!
//! States propagate at basic-block (VIVU node) granularity; inside a node
//! every reference is classified against the running state and then folded
//! into it. The broken back edges are *included* in the join, and the whole
//! system is iterated to a fixpoint, so the rest instance of a loop sees
//! the states from later iterations — this keeps the classification sound
//! despite the acyclic ACFG used elsewhere.
//!
//! Software prefetch instructions have two effects: their own fetch (a
//! normal reference to their containing block) and the prefetched block
//! entering the cache. Following the semantics of next-N-line analysis
//! extension (reference [22] of the paper), the prefetched block is folded
//! into the abstract states at the prefetch point; the insertion criterion
//! of `rtpf-core` guarantees the latency is hidden on the WCET path.
//!
//! # Incremental re-analysis
//!
//! [`classify_incremental`] re-runs the fixpoint after a program edit that
//! preserves the CFG (prefetch insertion never adds blocks or edges). The
//! must fixpoint is the *greatest* fixpoint of a monotone system and the
//! may fixpoint the least one, so both are unique; the solver evaluates
//! the strongly connected components of the dataflow graph (VIVU edges
//! plus the broken back edges) in condensation order, which makes an
//! exact change-driven cutoff possible:
//!
//! * an SCC is **recomputed** (from the same ⊤/⊥ start a from-scratch run
//!   uses) iff one of its nodes' touched-block signature changed or one of
//!   its external inputs' out-states changed *in content*;
//! * otherwise it is **skipped** and keeps its previous out-states.
//!
//! By induction over the condensation order this reproduces the
//! from-scratch solution exactly: a recomputed SCC given exact inputs is
//! solved to its local extremal fixpoint, which is the restriction of the
//! global one; a skipped SCC has the same transfer functions *and* the
//! same inputs as in the previous pass, so its previous local fixpoint is
//! still the restriction of the global one. Because abstract cache states
//! forget a block after `assoc` conflicting accesses to its set, edits
//! decay with dataflow distance and most SCCs are skipped in practice —
//! the whole-closure alternative would mark nearly everything affected
//! whenever relocation shifts addresses near the entry.

use std::sync::Arc;

use rtpf_cache::{CacheConfig, Classification, StatePair};
use rtpf_isa::{InstrKind, Layout, MemBlockId, Program};

use crate::acfg::Acfg;
use crate::memo::{AnalysisCache, NodeEval, NodeSig, Topology};
use crate::vivu::{NodeId, VivuGraph};

/// Per-reference classification results.
#[derive(Clone, Debug)]
pub struct ClassifyResult {
    /// Classification per [`RefId`](crate::acfg::RefId) index.
    pub class: Vec<Classification>,
    /// Memory block fetched by each reference.
    pub mem_block: Vec<MemBlockId>,
    /// Block targeted by each reference's prefetch, if it is one.
    pub pf_block: Vec<Option<MemBlockId>>,
    /// Interned out-state (must, may) per VIVU node.
    pub out_states: Vec<Arc<StatePair>>,
    /// Touched-block signature per VIVU node (drives the incremental
    /// dirty check and the evaluation memo of the next pass).
    pub sigs: Vec<NodeSig>,
    /// Number of fixpoint iterations performed (diagnostics).
    pub iterations: usize,
    /// Node evaluations actually executed (memo misses).
    pub evals: u64,
    /// Node evaluations answered by the shared memo.
    pub memo_hits: u64,
    /// States answered from the interner.
    pub states_interned: u64,
    /// States allocated fresh.
    pub states_fresh: u64,
    /// Nodes whose states were recomputed (equals the node count for a
    /// from-scratch run).
    pub nodes_reanalyzed: usize,
}

/// The parts of a previous classification that seed an incremental run.
///
/// `acfg` must be the reference graph the previous results were computed
/// on; reference ids are matched positionally per node, which is valid
/// because prefetch insertion preserves the VIVU node set.
#[derive(Clone, Copy)]
pub struct PrevPass<'a> {
    pub acfg: &'a Acfg,
    pub class: &'a [Classification],
    pub mem_block: &'a [MemBlockId],
    pub pf_block: &'a [Option<MemBlockId>],
    pub out_states: &'a [Arc<StatePair>],
    pub sigs: &'a [NodeSig],
}

/// Runs the must/may fixpoint and classifies every reference.
pub fn classify(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
) -> ClassifyResult {
    classify_with_hw(p, layout, vivu, acfg, config, None)
}

/// [`classify`] extended with **next-N-line hardware prefetching**
/// semantics, reproducing the abstract-semantics extension of the paper's
/// reference [22]: every fetch of block `b` additionally folds blocks
/// `b+1 ..= b+n` into the abstract states (the "next-line always"
/// policy).
///
/// The resulting classification assumes ideal prefetch timing (the
/// prefetched line arrives before its first use), so the WCET computed
/// from it is *optimistic* for hardware prefetching — which is exactly
/// the comparison the paper draws: hardware prefetching has no safe
/// WCET story, software insertion does.
pub fn classify_with_hw(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
) -> ClassifyResult {
    let cache = AnalysisCache::new();
    run_classify(p, layout, vivu, acfg, config, hw_next_line, None, &cache)
}

/// [`classify_with_hw`] recording its evaluations into a caller-provided
/// lineage cache, so later incremental passes can reuse them.
pub(crate) fn classify_full_cached(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    cache: &AnalysisCache,
) -> ClassifyResult {
    run_classify(p, layout, vivu, acfg, config, hw_next_line, None, cache)
}

/// Re-classifies after a CFG-preserving program edit, recomputing only the
/// SCCs whose touched-block signature or inputs changed (see the module
/// docs) and answering repeated node evaluations from `cache`, which is
/// shared across every analysis of the lineage. Produces results
/// identical to [`classify_with_hw`] on the new program.
#[allow(clippy::too_many_arguments)]
pub fn classify_incremental(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    prev: PrevPass<'_>,
    cache: &AnalysisCache,
) -> ClassifyResult {
    run_classify(
        p,
        layout,
        vivu,
        acfg,
        config,
        hw_next_line,
        Some(prev),
        cache,
    )
}

/// Fills `buf` with one node's touched-block signature: the per-reference
/// sequence of `(own block, prefetch target block)` pairs, which
/// determines the node's transfer function entirely (hardware next-line
/// folds depend only on the fetched block). Reuses the caller's scratch
/// buffer so a classify pass allocates no per-node signature vectors.
fn fill_node_sig(
    p: &Program,
    layout: &Layout,
    acfg: &Acfg,
    block_bytes: u32,
    nid: NodeId,
    buf: &mut Vec<(MemBlockId, Option<MemBlockId>)>,
) {
    buf.clear();
    for &r in acfg.refs_of_node(nid) {
        let reference = acfg.reference(r);
        let own = layout.block_of(reference.instr, block_bytes);
        let pf = match p.instr(reference.instr).kind {
            InstrKind::Prefetch { target } => Some(layout.block_of(target, block_bytes)),
            _ => None,
        };
        buf.push((own, pf));
    }
}

/// Strongly connected components of the dataflow graph, in condensation
/// (topological) order. Iterative Tarjan; the algorithm emits SCCs in
/// reverse topological order, so the result is reversed before returning.
fn condensation(n: usize, succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < succs[v].len() {
                let w = succs[v][frame.1];
                frame.1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps.reverse();
    comps
}

/// Builds the fixpoint topology of a VIVU graph: adjacency with the
/// broken back edges restored, and its SCC condensation with members
/// sorted by topological position. Shared across a lineage via
/// [`AnalysisCache::topology`].
fn build_topology(vivu: &VivuGraph) -> Topology {
    let n = vivu.len();
    let mut preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.preds(NodeId(i as u32))
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>()
        })
        .collect();
    let mut succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.succs(NodeId(i as u32))
                .iter()
                .map(|s| s.index())
                .collect::<Vec<_>>()
        })
        .collect();
    for &(latch, header) in vivu.back_edges() {
        let hp = &mut preds[header.index()];
        if !hp.contains(&latch.index()) {
            hp.push(latch.index());
        }
        let ls = &mut succs[latch.index()];
        if !ls.contains(&header.index()) {
            ls.push(header.index());
        }
    }

    let mut comps = condensation(n, &succs);
    let mut pos = vec![0usize; n];
    for (k, nid) in vivu.topo().iter().enumerate() {
        pos[nid.index()] = k;
    }
    for comp in &mut comps {
        comp.sort_unstable_by_key(|&i| pos[i]);
    }

    Topology::from_parts(preds, succs, comps)
}

#[allow(clippy::too_many_arguments)]
fn run_classify(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
    prev: Option<PrevPass<'_>>,
    cache: &AnalysisCache,
) -> ClassifyResult {
    let n = vivu.len();
    // No-information sentinel for predecessor-less nodes. Cloning it is
    // allocation-free (empty packed-word vectors) — see `rtpf_cache::no_info`.
    let empty: StatePair = rtpf_cache::no_info(config);

    // Adjacency (with back edges) and SCC condensation are identical for
    // every analysis of the lineage — fetched from the shared cache,
    // built on the first pass.
    let top = cache.topology(|| build_topology(vivu));

    let block_bytes = config.block_bytes();
    // Canonicalize signatures through the lineage cache: a node whose
    // signature content is unchanged keeps the previous pass's `Arc`
    // (no hashing), everything else is interned so content-equal
    // signatures across candidate analyses share one pointer. The memo
    // key is then a pure pointer tuple. `dirty[i]` falls out for free.
    // One scratch buffer serves every node; the interner copies on miss.
    let mut scratch: Vec<(MemBlockId, Option<MemBlockId>)> = Vec::new();
    let mut sigs: Vec<NodeSig> = Vec::with_capacity(n);
    let dirty: Option<Vec<bool>> = match prev {
        Some(pv) => {
            let mut d = Vec::with_capacity(n);
            for i in 0..n {
                fill_node_sig(p, layout, acfg, block_bytes, NodeId(i as u32), &mut scratch);
                if pv.sigs[i].as_slice() == scratch.as_slice() {
                    sigs.push(Arc::clone(&pv.sigs[i]));
                    d.push(false);
                } else {
                    sigs.push(cache.intern_sig(&scratch));
                    d.push(true);
                }
            }
            Some(d)
        }
        None => {
            for i in 0..n {
                fill_node_sig(p, layout, acfg, block_bytes, NodeId(i as u32), &mut scratch);
                sigs.push(cache.intern_sig(&scratch));
            }
            None
        }
    };
    let touch = |state: &mut StatePair, b: MemBlockId| {
        state.0.update(b);
        state.1.update(b);
        if let Some(n) = hw_next_line {
            for k in 1..=u64::from(n) {
                let nb = MemBlockId(b.0 + k);
                state.0.update(nb);
                state.1.update(nb);
            }
        }
    };

    // Fixpoint, solved per strongly connected component in condensation
    // order (back edges force iteration inside an SCC; its nesting depth
    // bounds the rounds).
    //
    // Must analysis is an intersection-join ("available blocks") problem:
    // the sound *and precise* solution is the greatest fixpoint, reached
    // by descending from an optimistic start. Predecessors whose out-state
    // has not been computed yet are therefore *ignored* in the join
    // (treated as ⊤), exactly like uninitialized nodes in available-
    // expressions analysis; seeding them as "empty cache" would poison
    // every loop with its own not-yet-analysed back edge. The may
    // analysis (union join) is indifferent: skipping an uncomputed
    // predecessor equals joining with its ∅ bottom.
    //
    // In incremental mode (`prev` set), an SCC whose members' signatures
    // and external inputs are all unchanged is skipped wholesale — see the
    // module docs for the exactness argument. Individual evaluations
    // resolve through the lineage's shared memo, so even a recomputed SCC
    // costs real state work only where it genuinely diverges from every
    // analysis seen before.
    let mut out: Vec<Option<Arc<StatePair>>> = vec![None; n];
    let mut node_evals: Vec<Option<Arc<NodeEval>>> = vec![None; n];
    let mut pend = vec![false; n];
    let mut ins_buf: Vec<Arc<StatePair>> = Vec::new();
    // `changed[i]`: out-state content differs from the previous pass
    // (trivially true in a from-scratch run).
    let mut changed = vec![true; n];
    let mut recomputed = vec![false; n];
    let mut iterations = 0usize;
    let mut evals = 0u64;
    let mut memo_hits = 0u64;
    let mut states_interned = 0u64;
    let mut states_fresh = 0u64;
    for cid in 0..top.n_comps() {
        let comp = top.comp(cid);
        let recompute = match (prev, &dirty) {
            (Some(_), Some(dirty)) => comp.iter().any(|&i| {
                let i = i as usize;
                dirty[i]
                    || top.preds(i).iter().any(|&pr| {
                        let pr = pr as usize;
                        top.comp_id(pr) != cid && changed[pr]
                    })
            }),
            _ => true,
        };
        if !recompute {
            let pv = prev.expect("skipping requires a previous pass");
            for &i in comp {
                let i = i as usize;
                out[i] = Some(Arc::clone(&pv.out_states[i]));
                changed[i] = false;
            }
            continue;
        }
        // Evaluate node `i` against its current inputs: memo hit, or a
        // real join + per-reference classify/fold.
        let mut eval = |i: usize, out: &[Option<Arc<StatePair>>]| -> Arc<NodeEval> {
            ins_buf.clear();
            ins_buf.extend(
                top.preds(i)
                    .iter()
                    .filter_map(|&pr| out[pr as usize].clone()),
            );
            if let Some(hit) = cache.lookup(&sigs[i], &ins_buf) {
                memo_hits += 1;
                return hit;
            }
            evals += 1;
            let mut st = match ins_buf.split_first() {
                None => empty.clone(),
                Some((first, rest)) => {
                    let mut acc = (**first).clone();
                    for pr in rest {
                        acc.0 = acc.0.join(&pr.0);
                        acc.1 = acc.1.join(&pr.1);
                    }
                    acc
                }
            };
            let mut class = Vec::with_capacity(sigs[i].len());
            for &(own, pf) in sigs[i].iter() {
                class.push(Classification::of(own, &st.0, &st.1));
                touch(&mut st, own);
                if let Some(tb) = pf {
                    st.0.update(tb);
                    st.1.update(tb);
                }
            }
            let (stored, fresh) = cache.store(&sigs[i], &ins_buf, st, class);
            if fresh {
                states_fresh += 1;
            } else {
                states_interned += 1;
            }
            stored
        };
        if comp.len() == 1 && !top.preds(comp[0] as usize).contains(&comp[0]) {
            // Acyclic singleton: one evaluation is the exact solution.
            let i = comp[0] as usize;
            iterations += 1;
            let ev = eval(i, &out);
            out[i] = Some(Arc::clone(&ev.out));
            node_evals[i] = Some(ev);
        } else {
            // Chaotic iteration with change-driven re-evaluation: a member
            // is (re-)evaluated only while one of its inputs may have
            // changed since its last evaluation. Skipping is exact —
            // re-applying a transfer to unchanged inputs reproduces the
            // same output — and chaotic iteration from the extremal start
            // reaches the unique extremal fixpoint in any order.
            for &i in comp {
                pend[i as usize] = true;
            }
            loop {
                iterations += 1;
                for &i in comp {
                    let i = i as usize;
                    if !pend[i] {
                        continue;
                    }
                    pend[i] = false;
                    let ev = eval(i, &out);
                    let same = out[i]
                        .as_ref()
                        .is_some_and(|old| Arc::ptr_eq(old, &ev.out) || **old == *ev.out);
                    if !same {
                        out[i] = Some(Arc::clone(&ev.out));
                        for &s in top.succs(i) {
                            let s = s as usize;
                            if top.comp_id(s) == cid {
                                pend[s] = true;
                            }
                        }
                    }
                    node_evals[i] = Some(ev);
                }
                if !comp.iter().any(|&i| pend[i as usize]) {
                    break;
                }
                assert!(iterations < 1_000_000, "classification fixpoint diverged");
            }
        }
        for &i in comp {
            let i = i as usize;
            recomputed[i] = true;
            changed[i] = match prev {
                Some(pv) => {
                    let new = out[i].as_ref().expect("fixpoint computed every member");
                    !Arc::ptr_eq(new, &pv.out_states[i]) && **new != *pv.out_states[i]
                }
                None => true,
            };
        }
    }

    // Final recording pass: recomputed nodes publish the classifications
    // of their converged evaluation; skipped nodes copy the previous
    // results positionally.
    let m = acfg.len();
    let mut class = vec![Classification::Unclassified; m];
    let mut mem_block = vec![MemBlockId(0); m];
    let mut pf_block: Vec<Option<MemBlockId>> = vec![None; m];
    let mut nodes_reanalyzed = 0usize;
    for &nid in vivu.topo() {
        let i = nid.index();
        if !recomputed[i] {
            let prev = prev.expect("skipped nodes exist only in incremental mode");
            for (o, r) in prev
                .acfg
                .refs_of_node(nid)
                .iter()
                .zip(acfg.refs_of_node(nid))
            {
                class[r.index()] = prev.class[o.index()];
                mem_block[r.index()] = prev.mem_block[o.index()];
                pf_block[r.index()] = prev.pf_block[o.index()];
            }
            continue;
        }
        nodes_reanalyzed += 1;
        let ev = node_evals[i]
            .as_ref()
            .expect("recomputed nodes were evaluated");
        let refs = acfg.refs_of_node(nid);
        debug_assert_eq!(refs.len(), ev.class.len());
        for ((&r, &cl), &(own, pf)) in refs.iter().zip(&ev.class).zip(sigs[i].iter()) {
            class[r.index()] = cl;
            mem_block[r.index()] = own;
            pf_block[r.index()] = pf;
        }
    }

    let out_states: Vec<Arc<StatePair>> = out
        .into_iter()
        .map(|o| o.expect("fixpoint computed every node"))
        .collect();

    ClassifyResult {
        class,
        mem_block,
        pf_block,
        out_states,
        sigs,
        iterations,
        evals,
        memo_hits,
        states_interned,
        states_fresh,
        nodes_reanalyzed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn run(shape: Shape, config: CacheConfig) -> (Program, Acfg, ClassifyResult) {
        let p = shape.compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &config);
        (p, a, c)
    }

    #[test]
    fn straight_line_first_item_misses_rest_hit() {
        // 8 instructions = 32 bytes = two 16-byte blocks in a big cache.
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let (_, a, c) = run(Shape::code(8), cfg);
        let mut misses = 0;
        for r in a.refs() {
            if c.class[r.id.index()].counts_as_miss() {
                misses += 1;
            }
        }
        // One (cold) miss per distinct block.
        assert_eq!(misses, 2);
    }

    #[test]
    fn loop_rest_iterations_hit_when_cache_fits() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        // 5-instr body fits the cache: rest instance must be all hits.
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        for r in a.refs() {
            let node = v.node(r.node);
            let is_rest = node
                .ctx
                .frames()
                .iter()
                .any(|&(_, it)| it == crate::context::Iter::Rest);
            if is_rest {
                assert_eq!(
                    c.class[r.id.index()],
                    Classification::AlwaysHit,
                    "rest reference {} should hit",
                    r.id
                );
            }
        }
    }

    #[test]
    fn thrashing_loop_misses_in_rest() {
        // Direct-mapped 32-byte cache (two 16-byte lines); a 40-instr body
        // (160 B) cannot fit, so rest iterations keep missing somewhere.
        let cfg = CacheConfig::new(1, 16, 32).unwrap();
        let p = Shape::loop_(10, Shape::code(40)).compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        let rest_misses = a
            .refs()
            .iter()
            .filter(|r| {
                v.node(r.node)
                    .ctx
                    .frames()
                    .iter()
                    .any(|&(_, it)| it == crate::context::Iter::Rest)
                    && c.class[r.id.index()].counts_as_miss()
            })
            .count();
        assert!(rest_misses > 0);
    }

    #[test]
    fn prefetch_makes_downstream_reference_hit() {
        // Straight line long enough to span blocks; insert a prefetch for a
        // later block early, then the later block's first item must be
        // always-hit.
        let cfg = CacheConfig::new(4, 16, 256).unwrap();
        let mut p = Shape::code(12).compile("pf");
        let b0 = p.entry();
        // Target: the instruction at position 8 (block 2 with 16-B lines).
        let target = p.block(b0).instrs()[8];
        p.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        // Find the reference fetching `target`.
        let r = a.refs().iter().find(|r| r.instr == target).unwrap();
        assert_eq!(c.class[r.id.index()], Classification::AlwaysHit);
        assert!(c.pf_block.iter().filter(|b| b.is_some()).count() == 1);
    }

    #[test]
    fn next_line_semantics_convert_sequential_misses_to_hits() {
        // Reference [22]: with an always-on next-line prefetcher, the
        // sequential cold misses of straight-line code collapse to the
        // first block only (ideal timing).
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let p = Shape::code(32).compile("seq");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let plain = classify(&p, &layout, &v, &a, &cfg);
        let hw = classify_with_hw(&p, &layout, &v, &a, &cfg, Some(1));
        let misses = |c: &ClassifyResult| c.class.iter().filter(|x| x.counts_as_miss()).count();
        assert_eq!(misses(&plain), 8, "32 instrs = 8 cold blocks");
        assert_eq!(misses(&hw), 1, "only the very first block misses");
    }

    #[test]
    fn conditional_merge_is_conservative() {
        // A tiny cache where then/else arms load conflicting blocks: after
        // the merge neither arm's block is guaranteed.
        let cfg = CacheConfig::new(1, 16, 16).unwrap(); // one line!
        let (_, a, c) = run(
            Shape::seq([
                Shape::if_else(1, Shape::code(8), Shape::code(8)),
                Shape::code(4),
            ]),
            cfg,
        );
        // At least one always-miss (cold code) and the merge code cannot be
        // all hits.
        let hits = c
            .class
            .iter()
            .filter(|c| matches!(c, Classification::AlwaysHit))
            .count();
        assert!(hits < a.len());
    }

    #[test]
    fn incremental_after_insert_matches_from_scratch() {
        // Insert a prefetch mid-program and check the incremental pass
        // reproduces the from-scratch classification exactly while
        // recomputing only part of the graph.
        let cfg = CacheConfig::new(2, 16, 128).unwrap();
        let p1 = Shape::seq([
            Shape::code(6),
            Shape::loop_(8, Shape::code(10)),
            Shape::code(12),
        ])
        .compile("inc");
        let layout1 = Layout::of(&p1);
        let v = VivuGraph::build(&p1).unwrap();
        let a1 = Acfg::build(&p1, &v);
        let c1 = classify(&p1, &layout1, &v, &a1, &cfg);

        let mut p2 = p1.clone();
        let b0 = p2.entry();
        let target = p2.block(b0).instrs()[4];
        p2.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let anchor = p2.block(b0).instrs()[0];
        let layout2 = Layout::anchored(&p2, anchor, layout1.addr(anchor));

        let a2 = Acfg::build(&p2, &v);
        let full = classify(&p2, &layout2, &v, &a2, &cfg);
        let inc = classify_incremental(
            &p2,
            &layout2,
            &v,
            &a2,
            &cfg,
            None,
            PrevPass {
                acfg: &a1,
                class: &c1.class,
                mem_block: &c1.mem_block,
                pf_block: &c1.pf_block,
                out_states: &c1.out_states,
                sigs: &c1.sigs,
            },
            &AnalysisCache::new(),
        );
        assert_eq!(inc.class, full.class);
        assert_eq!(inc.mem_block, full.mem_block);
        assert_eq!(inc.pf_block, full.pf_block);
        assert!(
            inc.nodes_reanalyzed <= full.nodes_reanalyzed,
            "incremental should not redo more nodes than from-scratch"
        );
        for (i, o) in inc.out_states.iter().zip(&full.out_states) {
            assert_eq!(**i, **o);
        }
    }

    #[test]
    fn incremental_with_no_change_reuses_everything() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let p = Shape::loop_(10, Shape::code(8)).compile("same");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c1 = classify(&p, &layout, &v, &a, &cfg);
        let inc = classify_incremental(
            &p,
            &layout,
            &v,
            &a,
            &cfg,
            None,
            PrevPass {
                acfg: &a,
                class: &c1.class,
                mem_block: &c1.mem_block,
                pf_block: &c1.pf_block,
                out_states: &c1.out_states,
                sigs: &c1.sigs,
            },
            &AnalysisCache::new(),
        );
        assert_eq!(inc.nodes_reanalyzed, 0);
        assert_eq!(inc.evals, 0);
        assert_eq!(inc.class, c1.class);
    }
}
