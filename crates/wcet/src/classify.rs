//! Must/may classification fixpoint over the VIVU graph.
//!
//! States propagate at basic-block (VIVU node) granularity; inside a node
//! every reference is classified against the running state and then folded
//! into it. The broken back edges are *included* in the join, and the whole
//! system is iterated to a fixpoint, so the rest instance of a loop sees
//! the states from later iterations — this keeps the classification sound
//! despite the acyclic ACFG used elsewhere.
//!
//! Software prefetch instructions have two effects: their own fetch (a
//! normal reference to their containing block) and the prefetched block
//! entering the cache. Following the semantics of next-N-line analysis
//! extension (reference [22] of the paper), the prefetched block is folded
//! into the abstract states at the prefetch point; the insertion criterion
//! of `rtpf-core` guarantees the latency is hidden on the WCET path.

use rtpf_cache::{CacheConfig, Classification, MayState, MustState};
use rtpf_isa::{InstrKind, Layout, MemBlockId, Program};

use crate::acfg::Acfg;
use crate::vivu::VivuGraph;

/// Per-reference classification results.
#[derive(Clone, Debug)]
pub struct ClassifyResult {
    /// Classification per [`RefId`](crate::acfg::RefId) index.
    pub class: Vec<Classification>,
    /// Memory block fetched by each reference.
    pub mem_block: Vec<MemBlockId>,
    /// Number of fixpoint iterations performed (diagnostics).
    pub iterations: usize,
}

/// Runs the must/may fixpoint and classifies every reference.
pub fn classify(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
) -> ClassifyResult {
    classify_with_hw(p, layout, vivu, acfg, config, None)
}

/// [`classify`] extended with **next-N-line hardware prefetching**
/// semantics, reproducing the abstract-semantics extension of the paper's
/// reference [22]: every fetch of block `b` additionally folds blocks
/// `b+1 ..= b+n` into the abstract states (the "next-line always"
/// policy).
///
/// The resulting classification assumes ideal prefetch timing (the
/// prefetched line arrives before its first use), so the WCET computed
/// from it is *optimistic* for hardware prefetching — which is exactly
/// the comparison the paper draws: hardware prefetching has no safe
/// WCET story, software insertion does.
pub fn classify_with_hw(
    p: &Program,
    layout: &Layout,
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    hw_next_line: Option<u32>,
) -> ClassifyResult {
    let n = vivu.len();
    let empty = (MustState::new(config), MayState::new(config));
    // Out-states per node.
    let mut out: Vec<(MustState, MayState)> = vec![empty.clone(); n];
    let mut iterations = 0usize;

    // Predecessor lists including broken back edges.
    let mut all_preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.preds(crate::vivu::NodeId(i as u32))
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>()
        })
        .collect();
    for &(latch, header) in vivu.back_edges() {
        let hp = &mut all_preds[header.index()];
        if !hp.contains(&latch.index()) {
            hp.push(latch.index());
        }
    }

    let block_bytes = config.block_bytes();
    let touch = |state: &mut (MustState, MayState), b: rtpf_isa::MemBlockId| {
        state.0.update(b);
        state.1.update(b);
        if let Some(n) = hw_next_line {
            for k in 1..=u64::from(n) {
                let nb = rtpf_isa::MemBlockId(b.0 + k);
                state.0.update(nb);
                state.1.update(nb);
            }
        }
    };
    let transfer = |state: &mut (MustState, MayState), node_idx: usize| {
        for &r in acfg.refs_of_node(crate::vivu::NodeId(node_idx as u32)) {
            let reference = acfg.reference(r);
            let own = layout.block_of(reference.instr, block_bytes);
            touch(state, own);
            if let InstrKind::Prefetch { target } = p.instr(reference.instr).kind {
                let tb = layout.block_of(target, block_bytes);
                state.0.update(tb);
                state.1.update(tb);
            }
        }
    };

    // Fixpoint over out-states in topological order (back edges force
    // iteration; loop nesting depth bounds the rounds).
    //
    // Must analysis is an intersection-join ("available blocks") problem:
    // the sound *and precise* solution is the greatest fixpoint, reached
    // by descending from an optimistic start. Predecessors whose out-state
    // has not been computed yet are therefore *ignored* in the join
    // (treated as ⊤), exactly like uninitialized nodes in available-
    // expressions analysis; seeding them as "empty cache" would poison
    // every loop with its own not-yet-analysed back edge. The may
    // analysis (union join) is indifferent: skipping an uncomputed
    // predecessor equals joining with its ∅ bottom.
    let mut computed = vec![false; n];
    loop {
        iterations += 1;
        let mut changed = false;
        for &nid in vivu.topo() {
            let i = nid.index();
            let ready: Vec<usize> = all_preds[i]
                .iter()
                .copied()
                .filter(|&pr| computed[pr])
                .collect();
            let mut st = if ready.is_empty() {
                empty.clone()
            } else {
                let mut it = ready.iter();
                let first = *it.next().expect("non-empty");
                let mut acc = out[first].clone();
                for &pr in it {
                    acc.0 = acc.0.join(&out[pr].0);
                    acc.1 = acc.1.join(&out[pr].1);
                }
                acc
            };
            transfer(&mut st, i);
            if !computed[i] || st != out[i] {
                out[i] = st;
                computed[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        assert!(iterations < 1000, "classification fixpoint diverged");
    }

    // Final recording pass: classify each reference against the in-state.
    let mut class = vec![Classification::Unclassified; acfg.len()];
    let mut mem_block = vec![MemBlockId(0); acfg.len()];
    for &nid in vivu.topo() {
        let i = nid.index();
        let mut st = if all_preds[i].is_empty() {
            empty.clone()
        } else {
            let mut it = all_preds[i].iter();
            let first = *it.next().expect("non-empty");
            let mut acc = out[first].clone();
            for &pr in it {
                acc.0 = acc.0.join(&out[pr].0);
                acc.1 = acc.1.join(&out[pr].1);
            }
            acc
        };
        debug_assert!(all_preds[i].iter().all(|&pr| computed[pr]));
        for &r in acfg.refs_of_node(nid) {
            let reference = acfg.reference(r);
            let own = layout.block_of(reference.instr, block_bytes);
            mem_block[r.index()] = own;
            class[r.index()] = Classification::of(own, &st.0, &st.1);
            touch(&mut st, own);
            if let InstrKind::Prefetch { target } = p.instr(reference.instr).kind {
                let tb = layout.block_of(target, block_bytes);
                st.0.update(tb);
                st.1.update(tb);
            }
        }
    }

    ClassifyResult {
        class,
        mem_block,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn run(shape: Shape, config: CacheConfig) -> (Program, Acfg, ClassifyResult) {
        let p = shape.compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &config);
        (p, a, c)
    }

    #[test]
    fn straight_line_first_item_misses_rest_hit() {
        // 8 instructions = 32 bytes = two 16-byte blocks in a big cache.
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let (_, a, c) = run(Shape::code(8), cfg);
        let mut misses = 0;
        for r in a.refs() {
            if c.class[r.id.index()].counts_as_miss() {
                misses += 1;
            }
        }
        // One (cold) miss per distinct block.
        assert_eq!(misses, 2);
    }

    #[test]
    fn loop_rest_iterations_hit_when_cache_fits() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        // 5-instr body fits the cache: rest instance must be all hits.
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        for r in a.refs() {
            let node = v.node(r.node);
            let is_rest = node
                .ctx
                .frames()
                .iter()
                .any(|&(_, it)| it == crate::context::Iter::Rest);
            if is_rest {
                assert_eq!(
                    c.class[r.id.index()],
                    Classification::AlwaysHit,
                    "rest reference {} should hit",
                    r.id
                );
            }
        }
    }

    #[test]
    fn thrashing_loop_misses_in_rest() {
        // Direct-mapped 32-byte cache (two 16-byte lines); a 40-instr body
        // (160 B) cannot fit, so rest iterations keep missing somewhere.
        let cfg = CacheConfig::new(1, 16, 32).unwrap();
        let p = Shape::loop_(10, Shape::code(40)).compile("t");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        let rest_misses = a
            .refs()
            .iter()
            .filter(|r| {
                v.node(r.node)
                    .ctx
                    .frames()
                    .iter()
                    .any(|&(_, it)| it == crate::context::Iter::Rest)
                    && c.class[r.id.index()].counts_as_miss()
            })
            .count();
        assert!(rest_misses > 0);
    }

    #[test]
    fn prefetch_makes_downstream_reference_hit() {
        // Straight line long enough to span blocks; insert a prefetch for a
        // later block early, then the later block's first item must be
        // always-hit.
        let cfg = CacheConfig::new(4, 16, 256).unwrap();
        let mut p = Shape::code(12).compile("pf");
        let b0 = p.entry();
        // Target: the instruction at position 8 (block 2 with 16-B lines).
        let target = p.block(b0).instrs()[8];
        p.insert_instr(b0, 1, InstrKind::Prefetch { target }).unwrap();
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let c = classify(&p, &layout, &v, &a, &cfg);
        // Find the reference fetching `target`.
        let r = a.refs().iter().find(|r| r.instr == target).unwrap();
        assert_eq!(c.class[r.id.index()], Classification::AlwaysHit);
    }

    #[test]
    fn next_line_semantics_convert_sequential_misses_to_hits() {
        // Reference [22]: with an always-on next-line prefetcher, the
        // sequential cold misses of straight-line code collapse to the
        // first block only (ideal timing).
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let p = Shape::code(32).compile("seq");
        let layout = Layout::of(&p);
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        let plain = classify(&p, &layout, &v, &a, &cfg);
        let hw = classify_with_hw(&p, &layout, &v, &a, &cfg, Some(1));
        let misses = |c: &ClassifyResult| {
            c.class.iter().filter(|x| x.counts_as_miss()).count()
        };
        assert_eq!(misses(&plain), 8, "32 instrs = 8 cold blocks");
        assert_eq!(misses(&hw), 1, "only the very first block misses");
    }

    #[test]
    fn conditional_merge_is_conservative() {
        // A tiny cache where then/else arms load conflicting blocks: after
        // the merge neither arm's block is guaranteed.
        let cfg = CacheConfig::new(1, 16, 16).unwrap(); // one line!
        let (_, a, c) = run(
            Shape::seq([
                Shape::if_else(1, Shape::code(8), Shape::code(8)),
                Shape::code(4),
            ]),
            cfg,
        );
        // At least one always-miss (cold code) and the merge code cannot be
        // all hits.
        let hits = c
            .class
            .iter()
            .filter(|c| matches!(c, Classification::AlwaysHit))
            .count();
        assert!(hits < a.len());
    }
}
