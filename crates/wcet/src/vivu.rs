//! The VIVU transformation: virtual unrolling of every natural loop.
//!
//! Each basic block is replicated per [`Context`]: once for the first
//! iteration of each enclosing loop and once for the collapsed "rest"
//! iterations (the paper's `r²` / `r³⁺` instances in Figure 6). Back edges
//! within the rest instance are *broken* — recorded separately so the
//! classification fixpoint stays sound — and replaced by edges to the
//! loop's exit targets so every bounded execution corresponds to a path in
//! the acyclic graph.

use std::collections::HashMap;

use rtpf_isa::dom::Dominators;
use rtpf_isa::loops::LoopForest;
use rtpf_isa::{BlockId, Program};

use crate::context::{Context, Iter};
use crate::error::AnalysisError;

/// Budget on VIVU nodes before reporting context explosion.
const MAX_NODES: usize = 200_000;

/// Identity of a VIVU node (a basic block in a context).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block instance in a VIVU context.
#[derive(Clone, Debug)]
pub struct VivuNode {
    /// Identity of the node.
    pub id: NodeId,
    /// The underlying basic block.
    pub block: BlockId,
    /// The iteration context.
    pub ctx: Context,
    /// Worst-case executions of this instance per program run
    /// (product of `bound − 1` over enclosing rest frames).
    pub mult: u64,
}

/// The peeled, context-expanded control-flow graph.
///
/// # Example
///
/// ```
/// use rtpf_isa::shape::Shape;
/// use rtpf_wcet::VivuGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Shape::loop_(10, Shape::code(5)).compile("loop");
/// let g = VivuGraph::build(&p)?;
/// // The loop body exists twice: first iteration and collapsed rest.
/// assert!(g.len() > p.block_count());
/// assert_eq!(g.back_edges().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct VivuGraph {
    nodes: Vec<VivuNode>,
    /// Adjacency in compressed-sparse-row form, frozen after the build:
    /// `succ_dat[succ_off[i]..succ_off[i+1]]` are node `i`'s successors.
    /// Two flat arrays per direction instead of a `Vec` per node — the
    /// graph is rebuilt for every analysis, so construction allocations
    /// and traversal locality both matter.
    succ_off: Vec<u32>,
    succ_dat: Vec<NodeId>,
    pred_off: Vec<u32>,
    pred_dat: Vec<NodeId>,
    /// Broken back edges `(latch_node, header_node)`, needed for a sound
    /// classification fixpoint (state can flow around the rest instance).
    back_edges: Vec<(NodeId, NodeId)>,
    entry: NodeId,
    topo: Vec<NodeId>,
}

impl VivuGraph {
    /// Expands `p` (validated) into its VIVU context graph.
    ///
    /// # Errors
    ///
    /// Fails if the program is invalid or the expansion exceeds the node
    /// budget.
    pub fn build(p: &Program) -> Result<Self, AnalysisError> {
        p.validate()?;
        let dom = Dominators::compute(p);
        let forest = LoopForest::compute(p, &dom).map_err(|e| {
            AnalysisError::InvalidProgram(rtpf_isa::ValidateError::Irreducible(e.block()))
        })?;
        let bound = |h: BlockId| p.loop_bound(h).unwrap_or(1);

        let mut nodes: Vec<VivuNode> = Vec::new();
        let mut succs: Vec<Vec<NodeId>> = Vec::new();
        let mut preds: Vec<Vec<NodeId>> = Vec::new();
        let mut back_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut index: HashMap<(BlockId, Context), NodeId> = HashMap::new();

        let in_loop =
            |h: BlockId, b: BlockId| forest.loop_of(h).is_some_and(|l| l.body.contains(&b));

        let mut intern = |b: BlockId,
                          ctx: Context,
                          nodes: &mut Vec<VivuNode>,
                          succs: &mut Vec<Vec<NodeId>>,
                          preds: &mut Vec<Vec<NodeId>>,
                          work: &mut Vec<NodeId>|
         -> Result<NodeId, AnalysisError> {
            if let Some(&id) = index.get(&(b, ctx.clone())) {
                return Ok(id);
            }
            if nodes.len() >= MAX_NODES {
                return Err(AnalysisError::ContextExplosion {
                    contexts: nodes.len(),
                });
            }
            let id = NodeId(nodes.len() as u32);
            let mult = ctx.multiplicity(bound);
            nodes.push(VivuNode {
                id,
                block: b,
                ctx: ctx.clone(),
                mult,
            });
            succs.push(Vec::new());
            preds.push(Vec::new());
            index.insert((b, ctx), id);
            work.push(id);
            Ok(id)
        };

        let mut work: Vec<NodeId> = Vec::new();
        let entry_block = p.entry();
        let entry_ctx = if forest.loop_of(entry_block).is_some() {
            Context::root().push_first(entry_block)
        } else {
            Context::root()
        };
        let entry = intern(
            entry_block,
            entry_ctx,
            &mut nodes,
            &mut succs,
            &mut preds,
            &mut work,
        )?;

        // Context transition for a *forward* (non-back) CFG edge.
        let forward_ctx = |ctx: &Context, v: BlockId| -> Context {
            let popped = ctx.pop_while(|h| !in_loop(h, v));
            if forest.loop_of(v).is_some() {
                // An edge to a header from outside its loop enters iteration 1.
                let already_in = popped.frames().last().is_some_and(|&(h, _)| h == v);
                if already_in {
                    popped
                } else {
                    popped.push_first(v)
                }
            } else {
                popped
            }
        };

        while let Some(u) = work.pop() {
            let (ub, uctx) = (nodes[u.index()].block, nodes[u.index()].ctx.clone());
            for &(v, _) in p.succs(ub) {
                if forest.is_back_edge(ub, v) {
                    // Pop inner frames until the frame for loop v is on top.
                    let popped = uctx.pop_while(|h| h != v);
                    let frame = popped
                        .frames()
                        .last()
                        .copied()
                        .expect("back edge target frame present");
                    debug_assert_eq!(frame.0, v);
                    let b = bound(v);
                    let rest_feasible = b >= 2;
                    let goes_forward = frame.1 == Iter::First && rest_feasible;
                    if goes_forward {
                        // First → rest: a forward edge in the peeled graph.
                        let tctx = popped.to_rest(v);
                        let t = intern(v, tctx, &mut nodes, &mut succs, &mut preds, &mut work)?;
                        add_edge(&mut succs, &mut preds, u, t);
                    } else if frame.1 == Iter::Rest {
                        // Rest → rest: broken; record for the fixpoint and
                        // reroute to the loop's header-exit targets.
                        let tctx = popped.clone();
                        let t = intern(v, tctx, &mut nodes, &mut succs, &mut preds, &mut work)?;
                        back_edges.push((u, t));
                        for &(w, _) in p.succs(v) {
                            if !in_loop(v, w) {
                                let wctx = forward_ctx(&popped, w);
                                let wn =
                                    intern(w, wctx, &mut nodes, &mut succs, &mut preds, &mut work)?;
                                add_edge(&mut succs, &mut preds, u, wn);
                            }
                        }
                    } else {
                        // bound == 1: the body runs exactly once; the back
                        // edge can only lead out through the header's exits.
                        for &(w, _) in p.succs(v) {
                            if !in_loop(v, w) {
                                let wctx = forward_ctx(&popped, w);
                                let wn =
                                    intern(w, wctx, &mut nodes, &mut succs, &mut preds, &mut work)?;
                                add_edge(&mut succs, &mut preds, u, wn);
                            }
                        }
                    }
                } else {
                    // Loops execute at least once (the benchmarks'
                    // counted-`for` semantics): the first-iteration header
                    // instance must enter the body, so its loop-exit edges
                    // are infeasible and dropped. Without this, the must
                    // join at every loop exit intersects with the
                    // "zero iterations" path and loses all guarantees the
                    // loop established.
                    if forest.loop_of(ub).is_some()
                        && uctx
                            .frames()
                            .last()
                            .is_some_and(|&(h, it)| h == ub && it == Iter::First)
                        && !in_loop(ub, v)
                    {
                        continue;
                    }
                    let tctx = forward_ctx(&uctx, v);
                    let t = intern(v, tctx, &mut nodes, &mut succs, &mut preds, &mut work)?;
                    add_edge(&mut succs, &mut preds, u, t);
                }
            }
        }

        let topo = topo_order(&nodes, &succs, &preds)
            .map_err(|_| AnalysisError::Ipet("VIVU graph is not acyclic".into()))?;

        let (succ_off, succ_dat) = to_csr(&succs);
        let (pred_off, pred_dat) = to_csr(&preds);
        Ok(VivuGraph {
            nodes,
            succ_off,
            succ_dat,
            pred_off,
            pred_dat,
            back_edges,
            entry,
            topo,
        })
    }

    /// All nodes, indexed by [`NodeId`].
    #[inline]
    pub fn nodes(&self) -> &[VivuNode] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &VivuNode {
        &self.nodes[id.index()]
    }

    /// Acyclic successors of `id` (back edges excluded).
    #[inline]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.succ_dat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Acyclic predecessors of `id`.
    #[inline]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.pred_dat[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// The broken back edges `(latch, header)` of every rest instance.
    #[inline]
    pub fn back_edges(&self) -> &[(NodeId, NodeId)] {
        &self.back_edges
    }

    /// Entry node.
    #[inline]
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Nodes with no acyclic successors (program exits and dead-end
    /// latches).
    pub fn exits(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.succs(n).is_empty())
            .collect()
    }

    /// A topological order of the acyclic edge relation.
    #[inline]
    pub fn topo(&self) -> &[NodeId] {
        &self.topo
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true for a valid program).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for `(block, ctx)`, if it was reachable.
    pub fn find(&self, block: BlockId, ctx: &Context) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.block == block && &n.ctx == ctx)
            .map(|n| n.id)
    }
}

/// Flattens build-time adjacency lists into offset + data arrays.
fn to_csr(lists: &[Vec<NodeId>]) -> (Vec<u32>, Vec<NodeId>) {
    let mut off = Vec::with_capacity(lists.len() + 1);
    let mut dat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    off.push(0);
    for l in lists {
        dat.extend_from_slice(l);
        off.push(dat.len() as u32);
    }
    (off, dat)
}

fn add_edge(succs: &mut [Vec<NodeId>], preds: &mut [Vec<NodeId>], u: NodeId, v: NodeId) {
    if !succs[u.index()].contains(&v) {
        succs[u.index()].push(v);
        preds[v.index()].push(u);
    }
}

fn topo_order(
    nodes: &[VivuNode],
    succs: &[Vec<NodeId>],
    preds: &[Vec<NodeId>],
) -> Result<Vec<NodeId>, ()> {
    let n = nodes.len();
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut queue: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|i| indeg[i.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        order.push(u);
        for &v in &succs[u.index()] {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    #[test]
    fn straight_line_is_isomorphic() {
        let p = Shape::seq([
            Shape::code(4),
            Shape::if_else(1, Shape::code(2), Shape::code(3)),
        ])
        .compile("s");
        let g = VivuGraph::build(&p).unwrap();
        assert_eq!(g.len(), p.block_count());
        assert!(g.back_edges().is_empty());
    }

    #[test]
    fn single_loop_is_peeled_once() {
        // Figure 6 of the paper: loop body instantiated twice.
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let g = VivuGraph::build(&p).unwrap();
        // entry + header(F) + body(F) + header(R) + body(R) + exit
        assert_eq!(g.len(), 6);
        assert_eq!(g.back_edges().len(), 1, "one broken rest back edge");
        // Multiplicities: first instances 1, rest instances bound−1 = 9.
        let mut mults: Vec<u64> = g.nodes().iter().map(|n| n.mult).collect();
        mults.sort_unstable();
        assert_eq!(mults, vec![1, 1, 1, 1, 9, 9]);
    }

    #[test]
    fn rest_latch_gains_exit_edge() {
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let g = VivuGraph::build(&p).unwrap();
        let (latch, header) = g.back_edges()[0];
        // The broken back edge is rerouted to the header's exit target.
        assert!(!g.succs(latch).is_empty(), "latch must not dead-end");
        assert!(!g.succs(latch).contains(&header));
        // Exactly one exit node (the loop exit continues to program exit).
        let exits = g.exits();
        assert_eq!(exits.len(), 1);
    }

    #[test]
    fn nested_loops_expand_multiplicatively() {
        let p = Shape::loop_(4, Shape::loop_(8, Shape::code(3))).compile("n");
        let g = VivuGraph::build(&p).unwrap();
        // Inner loop appears under outer First and outer Rest.
        let max_mult = g.nodes().iter().map(|n| n.mult).max().unwrap();
        assert_eq!(max_mult, 3 * 7); // (4−1) × (8−1)
        assert_eq!(g.back_edges().len(), 3); // inner@outerF, inner@outerR, outer
    }

    #[test]
    fn bound_one_loop_has_no_rest_instance() {
        let p = Shape::loop_(1, Shape::code(5)).compile("one");
        let g = VivuGraph::build(&p).unwrap();
        assert!(g.back_edges().is_empty());
        assert!(g.nodes().iter().all(|n| n.mult == 1));
        // Still reaches the exit.
        assert!(!g.exits().is_empty());
    }

    #[test]
    fn topo_order_is_consistent() {
        let p = Shape::loop_(4, Shape::if_else(1, Shape::code(2), Shape::code(3))).compile("t");
        let g = VivuGraph::build(&p).unwrap();
        let pos: std::collections::HashMap<NodeId, usize> =
            g.topo().iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in 0..g.len() as u32 {
            let n = NodeId(n);
            for &s in g.succs(n) {
                assert!(pos[&n] < pos[&s], "topo violates edge {n:?} -> {s:?}");
            }
        }
    }

    /// Supplement S.3 (Figure 6): a cyclic CFG whose back edge VIVU
    /// breaks, instantiating the body as `r²` (first) and `r³⁺` (rest),
    /// with the loop effect encoded in the conditional flow.
    #[test]
    fn figure6_loop() {
        let p = Shape::seq([
            Shape::code(1),
            Shape::loop_(5, Shape::code(3)),
            Shape::code(1),
        ])
        .compile("fig6");
        let g = VivuGraph::build(&p).unwrap();
        // The body block exists in exactly two instances: first and rest.
        let body_instances: Vec<&VivuNode> = g
            .nodes()
            .iter()
            .filter(|n| p.block(n.block).len() == 3)
            .collect();
        assert_eq!(body_instances.len(), 2, "body peeled exactly once");
        let iters: Vec<Iter> = body_instances
            .iter()
            .map(|n| n.ctx.frames().last().expect("in loop").1)
            .collect();
        assert!(iters.contains(&Iter::First));
        assert!(iters.contains(&Iter::Rest));
        // The broken back edge is exactly the rest instance's self-cycle.
        assert_eq!(g.back_edges().len(), 1);
        let (latch, header) = g.back_edges()[0];
        assert_eq!(
            g.node(latch).ctx.frames().last().expect("latch in loop").1,
            Iter::Rest
        );
        assert_eq!(g.node(header).block, g.node(latch).ctx.frames()[0].0);
    }

    #[test]
    fn conditional_inside_loop_replicates_both_arms() {
        let p = Shape::loop_(6, Shape::if_else(1, Shape::code(2), Shape::code(3))).compile("c");
        let g = VivuGraph::build(&p).unwrap();
        // Each loop-body block appears in first and rest instances.
        let body_blocks = p.block_count() - 2; // minus entry and loop exit
        assert!(g.len() >= body_blocks + 2);
        let rest_nodes = g
            .nodes()
            .iter()
            .filter(|n| n.ctx.frames().iter().any(|&(_, it)| it == Iter::Rest))
            .count();
        assert!(rest_nodes >= 4, "both arms must exist in the rest instance");
    }
}
