//! IPET: implicit path enumeration over the VIVU graph.
//!
//! The objective `maximize Σ t_w(bb)·n_bb` (paper Eq. 1) is solved two
//! ways: exactly and fast via a node-weighted longest path on the acyclic
//! VIVU graph (node weight = per-execution time × context multiplicity),
//! and via the general ILP encoding with flow-conservation constraints,
//! used to cross-validate the fast path in tests.

use rtpf_ilp::dag::Dag;
use rtpf_ilp::{Cmp, LinearProgram};

use crate::error::AnalysisError;
use crate::vivu::{NodeId, VivuGraph};

/// Result of the IPET optimization.
#[derive(Clone, Debug)]
pub struct IpetResult {
    /// The memory system's contribution to the WCET, `τ_w` (Eq. 3).
    pub tau_w: u64,
    /// Whether each VIVU node lies on the WCET path.
    pub on_path: Vec<bool>,
    /// WCET-scenario execution count `n^w` per VIVU node
    /// (multiplicity if on the path, 0 otherwise).
    pub n_w: Vec<u64>,
}

/// Solves IPET as a longest path on the acyclic VIVU graph.
///
/// `node_weight[i]` must be the **total** WCET-scenario contribution of
/// node `i` per program run, i.e. `Σ_r t_w(r) × mult(node)` over the node's
/// references.
///
/// # Errors
///
/// Returns [`AnalysisError::Ipet`] if the graph is malformed.
pub fn solve_dag(vivu: &VivuGraph, node_weight: &[u64]) -> Result<IpetResult, AnalysisError> {
    let n = vivu.len();
    assert_eq!(node_weight.len(), n, "one weight per VIVU node");
    // Virtual source (n) and sink (n + 1).
    let mut weights = node_weight.to_vec();
    weights.push(0);
    weights.push(0);
    let mut dag = Dag::new(weights);
    for u in 0..n {
        for &v in vivu.succs(NodeId(u as u32)) {
            dag.add_edge(u, v.index())
                .map_err(|e| AnalysisError::Ipet(e.to_string()))?;
        }
    }
    dag.add_edge(n, vivu.entry().index())
        .map_err(|e| AnalysisError::Ipet(e.to_string()))?;
    for e in vivu.exits() {
        dag.add_edge(e.index(), n + 1)
            .map_err(|e| AnalysisError::Ipet(e.to_string()))?;
    }
    let lp = dag
        .longest_path(n, n + 1)
        .map_err(|e| AnalysisError::Ipet(e.to_string()))?;
    let mut on_path = vec![false; n];
    for &node in &lp.path {
        if node < n {
            on_path[node] = true;
        }
    }
    let n_w: Vec<u64> = (0..n)
        .map(|i| {
            if on_path[i] {
                vivu.node(NodeId(i as u32)).mult
            } else {
                0
            }
        })
        .collect();
    Ok(IpetResult {
        tau_w: lp.value,
        on_path,
        n_w,
    })
}

/// Solves the same instance with the general ILP encoding (edge-flow
/// formulation). Exponentially slower than [`solve_dag`]; used for
/// cross-validation and as the reference implementation of Eq. 1.
///
/// # Errors
///
/// Returns [`AnalysisError::Ipet`] if the instance is infeasible.
pub fn solve_ilp(vivu: &VivuGraph, node_weight: &[u64]) -> Result<u64, AnalysisError> {
    let n = vivu.len();
    // Collect edges including source (index n) and sink (n + 1).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for &v in vivu.succs(NodeId(u as u32)) {
            edges.push((u, v.index()));
        }
    }
    edges.push((n, vivu.entry().index()));
    for e in vivu.exits() {
        edges.push((e.index(), n + 1));
    }
    let m = edges.len();
    let mut lp = LinearProgram::new(m);
    // Objective: weight of a node × its in-flow.
    for (e, &(_, v)) in edges.iter().enumerate() {
        if v < n {
            let w = node_weight[v] as f64;
            if w != 0.0 {
                let cur = lp.objective()[e];
                lp.set_objective_coeff(e, cur + w);
            }
        }
    }
    // Source emits one unit.
    let src_out: Vec<(usize, f64)> = edges
        .iter()
        .enumerate()
        .filter(|(_, &(u, _))| u == n)
        .map(|(e, _)| (e, 1.0))
        .collect();
    lp.add_constraint(&src_out, Cmp::Eq, 1.0);
    // Conservation at every real node.
    for v in 0..n {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for (e, &(a, b)) in edges.iter().enumerate() {
            if b == v {
                row.push((e, 1.0));
            }
            if a == v {
                row.push((e, -1.0));
            }
        }
        if !row.is_empty() {
            lp.add_constraint(&row, Cmp::Eq, 0.0);
        }
    }
    let sol = rtpf_ilp::ilp::solve(&lp)
        .optimal()
        .ok_or_else(|| AnalysisError::Ipet("infeasible flow".into()))?;
    Ok(sol.value.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn weights_all_one_times_mult(v: &VivuGraph) -> Vec<u64> {
        v.nodes().iter().map(|n| n.mult).collect()
    }

    #[test]
    fn dag_and_ilp_agree_on_a_loop() {
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let v = VivuGraph::build(&p).unwrap();
        let w = weights_all_one_times_mult(&v);
        let dag = solve_dag(&v, &w).unwrap();
        let ilp = solve_ilp(&v, &w).unwrap();
        assert_eq!(dag.tau_w, ilp);
    }

    #[test]
    fn dag_and_ilp_agree_on_nested_conditionals() {
        let p = Shape::loop_(
            5,
            Shape::if_else(1, Shape::loop_(3, Shape::code(4)), Shape::code(2)),
        )
        .compile("n");
        let v = VivuGraph::build(&p).unwrap();
        let w = weights_all_one_times_mult(&v);
        assert_eq!(solve_dag(&v, &w).unwrap().tau_w, solve_ilp(&v, &w).unwrap());
    }

    #[test]
    fn wcet_path_takes_heavier_arm() {
        let p = Shape::if_else(1, Shape::code(20), Shape::code(7)).compile("d");
        let v = VivuGraph::build(&p).unwrap();
        // Weight = number of instructions (1 cycle each, mult = 1).
        let w: Vec<u64> = v
            .nodes()
            .iter()
            .map(|n| p.block(n.block).len() as u64)
            .collect();
        let r = solve_dag(&v, &w).unwrap();
        // The heavy arm (20 instrs) is on the path, the light one is not.
        let heavy_on = v
            .nodes()
            .iter()
            .any(|n| p.block(n.block).len() == 20 && r.on_path[n.id.index()]);
        let light_on = v
            .nodes()
            .iter()
            .any(|n| p.block(n.block).len() == 7 && r.on_path[n.id.index()]);
        assert!(heavy_on);
        assert!(!light_on);
    }

    #[test]
    fn n_w_is_mult_on_path_zero_off_path() {
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let v = VivuGraph::build(&p).unwrap();
        let w = weights_all_one_times_mult(&v);
        let r = solve_dag(&v, &w).unwrap();
        for n in v.nodes() {
            if r.on_path[n.id.index()] {
                assert_eq!(r.n_w[n.id.index()], n.mult);
            } else {
                assert_eq!(r.n_w[n.id.index()], 0);
            }
        }
    }

    #[test]
    fn loop_wcet_accounts_all_iterations() {
        // Body of 5 instrs × bound 10 → the path must count 1×5 (first)
        // + 9×5 (rest) = 50 body-instruction executions, plus entry/header/
        // exit code.
        let p = Shape::loop_(10, Shape::code(5)).compile("l");
        let v = VivuGraph::build(&p).unwrap();
        let w: Vec<u64> = v
            .nodes()
            .iter()
            .map(|n| p.block(n.block).len() as u64 * n.mult)
            .collect();
        let r = solve_dag(&v, &w).unwrap();
        // Total instruction executions on the WCET path ≥ 50.
        assert!(r.tau_w >= 50, "tau_w = {}", r.tau_w);
    }
}
