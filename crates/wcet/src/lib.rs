//! Cache-aware WCET analysis: VIVU, ACFG, and IPET.
//!
//! This crate substitutes for the WCET analyzer the paper's authors built
//! on references [8] (Ferdinand-style abstract cache semantics + VIVU) and
//! [21] / [11] (IPET). The pipeline is:
//!
//! 1. [`vivu`] — *Virtual Inlining, Virtual Unrolling*: peel every natural
//!    loop once, distinguishing the **first** iteration from the **rest**,
//!    producing an acyclic context graph (plus the real back edges, kept
//!    for sound fixpoint iteration);
//! 2. [`classify`] — must/may abstract interpretation at reference
//!    granularity over the context graph, yielding a
//!    [`Classification`](rtpf_cache::Classification) and a worst-case
//!    access time `t_w(r)` for every reference;
//! 3. [`ipet`] — the implicit path enumeration: maximize `Σ t_w(bb)·n_bb`.
//!    On the acyclic VIVU graph this equals a node-weighted longest path
//!    (solved exactly by `rtpf-ilp::dag`); the general ILP encoding is
//!    provided for cross-validation;
//! 4. [`acfg`] — the reference-level DAG (the paper's ACFG, Definition 6)
//!    consumed by the prefetch optimizer in `rtpf-core`.
//!
//! The entry point is [`analysis::WcetAnalysis::analyze`].
//!
//! # Example
//!
//! ```
//! use rtpf_cache::{CacheConfig, MemTiming};
//! use rtpf_isa::shape::Shape;
//! use rtpf_wcet::WcetAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Shape::loop_(10, Shape::code(24)).compile("loop");
//! let config = CacheConfig::new(2, 16, 256)?;
//! let a = WcetAnalysis::analyze(&p, &config, &MemTiming::default())?;
//! assert!(a.tau_w() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod acfg;
pub mod analysis;
pub mod classify;
pub mod context;
pub mod error;
pub mod ipet;
mod l2;
pub mod memo;
pub mod persistence;
pub mod profile;
pub mod refine;
pub mod vivu;

pub use acfg::{Acfg, RefId, Reference};
pub use analysis::WcetAnalysis;
pub use context::{Context, Iter};
pub use error::AnalysisError;
pub use memo::AnalysisCache;
pub use persistence::{persistence_report, tau_w_first_miss, PersistenceReport};
pub use profile::AnalysisProfile;
pub use refine::RefineStats;
pub use vivu::{NodeId, VivuGraph, VivuNode};
