//! Second-level classification: the Hardy & Puaut filtered must/may pass.
//!
//! Runs as a deterministic sequential post-pass after the L1 fixpoint and
//! its refinement stage, so the *refined* L1 classification feeds each
//! reference's [`CacheAccessClassification`]: an L1 always-hit never
//! reaches L2 (`Never`), an L1 always-miss always does (`Always`), and an
//! unclassified L1 outcome gives the `Uncertain` filter, whose sound L2
//! update is the join of the state with and without the access applied
//! (see [`rtpf_cache::classify_update_l2`]).
//!
//! Software-prefetch targets take the `Uncertain` update unconditionally:
//! whether the prefetched block accesses L2 depends on its (unclassified)
//! L1 residency at the prefetch point, so the join-update is the only
//! sound choice.
//!
//! The pass is recomputed from scratch on every
//! [`finish`](crate::analysis::WcetAnalysis), which keeps incremental and
//! full analyses bit-identical for free — the inputs (refined L1 classes,
//! node signatures) are already proven identical by the L1 machinery.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rtpf_cache::{
    classify_update_l2, join_pairs_into, no_info, CacheAccessClassification, CacheConfig,
    Classification, StatePair,
};

use crate::acfg::Acfg;
use crate::error::AnalysisError;
use crate::memo::NodeSig;
use crate::vivu::{NodeId, VivuGraph};

/// Per-reference outcome of the L2 pass.
#[derive(Clone, Debug, Default)]
pub(crate) struct L2Result {
    /// L2 classification per reference. For a `Never`-filtered reference
    /// this is [`Classification::Unclassified`] — no claim is made, and
    /// the value is never consulted (the L1 always-hit fixes the cost).
    /// For `Uncertain`-filtered references the classification holds
    /// conditionally, on the executions where the access reaches L2.
    pub class: Vec<Classification>,
    /// The L1-outcome filter each reference's L2 update ran under.
    pub cac: Vec<CacheAccessClassification>,
}

/// Safety guard against a broken transfer/join pair, mirroring the L1
/// fixpoint's per-component budget.
const EVALS_PER_NODE: usize = 1_000_000;

/// Classifies every reference against the L2 geometry, with updates
/// filtered by the refined L1 classification.
///
/// A worklist fixpoint over the VIVU graph with its back edges restored,
/// processed in topological-position priority order. Uncomputed
/// predecessors are ignored (the optimistic start: absent constraints for
/// the must intersection, absent blocks for the may union); iteration
/// repairs them.
pub(crate) fn classify_l2(
    vivu: &VivuGraph,
    acfg: &Acfg,
    l2: &CacheConfig,
    l1_class: &[Classification],
    sigs: &[NodeSig],
) -> Result<L2Result, AnalysisError> {
    let n = vivu.len();
    let cac: Vec<CacheAccessClassification> = l1_class
        .iter()
        .map(|&c| CacheAccessClassification::from_l1(c))
        .collect();

    // Adjacency with back edges restored (the VIVU graph proper is the
    // acyclic forward expansion; loop latch → header edges live apart).
    let mut preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.preds(NodeId(i as u32))
                .iter()
                .map(|p| p.index())
                .collect()
        })
        .collect();
    let mut succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            vivu.succs(NodeId(i as u32))
                .iter()
                .map(|s| s.index())
                .collect()
        })
        .collect();
    for &(latch, header) in vivu.back_edges() {
        if !preds[header.index()].contains(&latch.index()) {
            preds[header.index()].push(latch.index());
        }
        if !succs[latch.index()].contains(&header.index()) {
            succs[latch.index()].push(header.index());
        }
    }

    let mut pos = vec![0usize; n];
    for (k, nid) in vivu.topo().iter().enumerate() {
        pos[nid.index()] = k;
    }

    let seed = no_info(l2);
    let mut outs: Vec<Option<Arc<StatePair>>> = vec![None; n];
    let mut work: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(n);
    let mut pending = vec![false; n];
    for &nid in vivu.topo() {
        work.push(Reverse((pos[nid.index()], nid.index())));
        pending[nid.index()] = true;
    }

    let mut ins: Vec<Arc<StatePair>> = Vec::new();
    let mut cursors: Vec<usize> = Vec::new();
    let mut scratch = seed.clone();
    let limit = n.saturating_add(1).saturating_mul(EVALS_PER_NODE);
    let mut evals = 0usize;

    while let Some(Reverse((_, i))) = work.pop() {
        pending[i] = false;
        evals += 1;
        if evals > limit {
            return Err(AnalysisError::FixpointDiverged { iterations: evals });
        }

        ins.clear();
        ins.extend(preds[i].iter().filter_map(|&p| outs[p].clone()));
        join_pairs_into(&mut scratch, &ins, &mut cursors);

        let mut state = scratch.clone();
        transfer(
            &mut state,
            &sigs[i],
            acfg.refs_of_node(NodeId(i as u32)),
            &cac,
            None,
        );

        let changed = match &outs[i] {
            Some(prev) => **prev != state,
            None => true,
        };
        if changed {
            outs[i] = Some(Arc::new(state));
            for &s in &succs[i] {
                if !pending[s] {
                    pending[s] = true;
                    work.push(Reverse((pos[s], s)));
                }
            }
        }
    }

    // Converged: one recording pass computes each node's final in-state
    // from the settled outs and classifies its references against it.
    let mut class = vec![Classification::Unclassified; acfg.len()];
    for &nid in vivu.topo() {
        let i = nid.index();
        ins.clear();
        ins.extend(preds[i].iter().filter_map(|&p| outs[p].clone()));
        join_pairs_into(&mut scratch, &ins, &mut cursors);
        let mut state = scratch.clone();
        transfer(
            &mut state,
            &sigs[i],
            acfg.refs_of_node(nid),
            &cac,
            Some(&mut class),
        );
    }

    Ok(L2Result { class, cac })
}

/// Walks one node's references through the filtered L2 update, optionally
/// recording per-reference classifications.
fn transfer(
    state: &mut StatePair,
    sig: &NodeSig,
    refs: &[crate::acfg::RefId],
    cac: &[CacheAccessClassification],
    mut record: Option<&mut Vec<Classification>>,
) {
    debug_assert_eq!(sig.len(), refs.len());
    for (&(own, pf), &rid) in sig.iter().zip(refs) {
        let class = classify_update_l2(state, own, cac[rid.index()]);
        if let Some(out) = record.as_deref_mut() {
            out[rid.index()] = class;
        }
        if let Some(target) = pf {
            // The target reaches L2 iff it is not L1-resident at the
            // prefetch point, which no level-1 fact pins down: join-update.
            classify_update_l2(state, target, CacheAccessClassification::Uncertain);
        }
    }
}
