//! VIVU calling/iteration contexts.

use std::fmt;

use rtpf_isa::BlockId;

/// Which peeled instance of a loop a context refers to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Iter {
    /// The first iteration of the loop (cold-cache behaviour).
    First,
    /// Iterations 2..bound, collapsed into one instance (warm behaviour).
    Rest,
}

impl fmt::Display for Iter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Iter::First => f.write_str("first"),
            Iter::Rest => f.write_str("rest"),
        }
    }
}

/// A VIVU context: the stack of enclosing loops with, for each, the peeled
/// instance the analysis is in. Outermost loop first.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Context(Vec<(BlockId, Iter)>);

impl Context {
    /// The empty (top-level) context.
    pub fn root() -> Self {
        Context(Vec::new())
    }

    /// The enclosing-loop stack, outermost first.
    #[inline]
    pub fn frames(&self) -> &[(BlockId, Iter)] {
        &self.0
    }

    /// Nesting depth of the context.
    #[inline]
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Returns this context extended by entering loop `header`'s first
    /// iteration.
    pub fn push_first(&self, header: BlockId) -> Context {
        let mut v = self.0.clone();
        v.push((header, Iter::First));
        Context(v)
    }

    /// Returns this context with the innermost frame switched to
    /// [`Iter::Rest`].
    ///
    /// # Panics
    ///
    /// Panics if the context is empty or its innermost frame is for a
    /// different header.
    pub fn to_rest(&self, header: BlockId) -> Context {
        let mut v = self.0.clone();
        let top = v.last_mut().expect("to_rest on empty context");
        assert_eq!(top.0, header, "innermost frame is for a different loop");
        top.1 = Iter::Rest;
        Context(v)
    }

    /// Returns this context with frames popped until `keep` returns true
    /// for the innermost remaining header (used on loop exits).
    pub fn pop_while(&self, mut discard: impl FnMut(BlockId) -> bool) -> Context {
        let mut v = self.0.clone();
        while let Some(&(h, _)) = v.last() {
            if discard(h) {
                v.pop();
            } else {
                break;
            }
        }
        Context(v)
    }

    /// Multiplicity of the context: how many times per program run a block
    /// in this context executes at most, given `bound(header)` = maximum
    /// body executions per loop entry.
    ///
    /// First iterations contribute a factor of the *enclosing* entry count
    /// (1); rest instances contribute `bound − 1`.
    pub fn multiplicity(&self, mut bound: impl FnMut(BlockId) -> u32) -> u64 {
        let mut m: u64 = 1;
        for &(h, it) in &self.0 {
            match it {
                Iter::First => {}
                Iter::Rest => m = m.saturating_mul(u64::from(bound(h).saturating_sub(1))),
            }
        }
        m
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("⟨⟩");
        }
        let parts: Vec<String> = self.0.iter().map(|(h, it)| format!("{h}:{it}")).collect();
        write!(f, "⟨{}⟩", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_rest() {
        let c = Context::root().push_first(BlockId(1));
        assert_eq!(c.depth(), 1);
        assert_eq!(c.frames()[0], (BlockId(1), Iter::First));
        let r = c.to_rest(BlockId(1));
        assert_eq!(r.frames()[0], (BlockId(1), Iter::Rest));
        assert_ne!(c, r);
    }

    #[test]
    fn pop_on_loop_exit() {
        let c = Context::root()
            .push_first(BlockId(1))
            .push_first(BlockId(2));
        // Exit the inner loop only.
        let out = c.pop_while(|h| h == BlockId(2));
        assert_eq!(out.depth(), 1);
        // Exit everything.
        let top = c.pop_while(|_| true);
        assert_eq!(top, Context::root());
    }

    #[test]
    fn multiplicity_products() {
        let bounds = |h: BlockId| if h == BlockId(1) { 10 } else { 4 };
        let ff = Context::root()
            .push_first(BlockId(1))
            .push_first(BlockId(2));
        assert_eq!(ff.multiplicity(bounds), 1);
        let fr = ff.to_rest(BlockId(2));
        assert_eq!(fr.multiplicity(bounds), 3); // inner bound 4 → rest ×3
        let rr = Context::root()
            .push_first(BlockId(1))
            .to_rest(BlockId(1))
            .push_first(BlockId(2))
            .to_rest(BlockId(2));
        assert_eq!(rr.multiplicity(bounds), 9 * 3);
    }

    #[test]
    #[should_panic(expected = "different loop")]
    fn to_rest_checks_header() {
        let _ = Context::root().push_first(BlockId(1)).to_rest(BlockId(9));
    }

    #[test]
    fn display_is_readable() {
        let c = Context::root().push_first(BlockId(3)).to_rest(BlockId(3));
        assert_eq!(c.to_string(), "⟨bb3:rest⟩");
        assert_eq!(Context::root().to_string(), "⟨⟩");
    }
}
