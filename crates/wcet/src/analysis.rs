//! End-to-end WCET analysis: VIVU → classification → IPET.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use rtpf_cache::{
    CacheAccessClassification, CacheConfig, Classification, HierarchyConfig, MemTiming,
    RefineConfig, RefineMark, StatePair,
};
use rtpf_isa::{Layout, MemBlockId, Program};

use crate::acfg::{Acfg, RefId};
use crate::classify::{self, ClassifyResult, PrevPass};
use crate::error::AnalysisError;
use crate::ipet;
use crate::l2;
use crate::memo::{AnalysisCache, NodeSig};
use crate::profile::AnalysisProfile;
use crate::refine::{self, RefineStats};
use crate::vivu::{NodeId, VivuGraph};

/// Result of analysing one program under one cache configuration.
///
/// Holds everything the prefetch optimizer needs: the reference graph, the
/// per-reference classification and worst-case access time `t_w(r)`, the
/// WCET-scenario execution counts `n^w`, and the total memory contribution
/// `τ_w` to the WCET.
///
/// The analysis also retains its per-context abstract cache states, so a
/// follow-up analysis of the *same CFG* (e.g. after the optimizer inserts
/// a prefetch instruction) can run incrementally via
/// [`reanalyze_after_insert`](WcetAnalysis::reanalyze_after_insert).
#[derive(Clone, Debug)]
pub struct WcetAnalysis {
    layout: Layout,
    vivu: Arc<VivuGraph>,
    acfg: Acfg,
    config: CacheConfig,
    /// Second-level geometry, when the analysed hierarchy has one. `None`
    /// keeps every L2 code path inert and the analysis bit-identical to
    /// the historical single-level one.
    l2: Option<CacheConfig>,
    /// Per-reference L2 classification (empty when `l2` is `None`),
    /// computed by the Hardy & Puaut filtered post-pass.
    l2_class: Vec<Classification>,
    /// Per-reference L1-outcome filter the L2 updates ran under (empty
    /// when `l2` is `None`).
    l2_cac: Vec<CacheAccessClassification>,
    timing: MemTiming,
    hw_next_line: Option<u32>,
    refine: RefineConfig,
    /// Worker threads for the classify fixpoint and the refinement
    /// fan-out; inherited by incremental re-analyses of this lineage.
    threads: usize,
    /// Fingerprint of the analysed program's CFG (blocks, edges, loop
    /// bounds); incremental re-analysis requires it to be unchanged.
    cfg_sig: u64,
    /// Final classification: the cheap fixpoint result, with every
    /// upgrade the refinement stage proved applied on top. Feeds `t_w`,
    /// IPET, and the optimizer's profitability inputs.
    class: Vec<Classification>,
    /// The *unrefined* fixpoint classification. Incremental re-analysis
    /// seeds from this vector, never the refined one: the skipped-SCC
    /// positional copy must reproduce exactly what the fixpoint would
    /// compute, and a positionally-copied refined upgrade could go stale
    /// when another context of the same cache set changes. Refinement
    /// instead re-runs deterministically after every (re-)classification.
    cheap_class: Vec<Classification>,
    /// What the refinement stage did to each reference.
    marks: Vec<RefineMark>,
    refine_stats: RefineStats,
    mem_block: Vec<MemBlockId>,
    pf_block: Vec<Option<MemBlockId>>,
    out_states: Vec<Arc<StatePair>>,
    /// Per-node touched-block signatures, kept for change detection in the
    /// next incremental step.
    sigs: Vec<NodeSig>,
    /// Evaluation memo shared across the whole analysis lineage (this
    /// analysis and everything derived from it via
    /// [`reanalyze_after_insert`](WcetAnalysis::reanalyze_after_insert)).
    cache: Arc<AnalysisCache>,
    t_w: Vec<u64>,
    n_w: Vec<u64>,
    on_path: Vec<bool>,
    tau_w: u64,
    profile: AnalysisProfile,
}

/// Hash of everything the VIVU construction depends on: entry, block set,
/// edges (with kinds), and loop bounds. Instruction edits that keep this
/// stable keep the context graph valid.
fn cfg_signature(p: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    p.entry().hash(&mut h);
    p.block_count().hash(&mut h);
    for b in p.block_ids() {
        b.hash(&mut h);
        p.succs(b).hash(&mut h);
        p.loop_bound(b).hash(&mut h);
    }
    h.finish()
}

impl WcetAnalysis {
    /// Analyses `p` under the default base layout.
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze(
        p: &Program,
        config: &CacheConfig,
        timing: &MemTiming,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_with_layout(p, Layout::of(p), config, timing)
    }

    /// Analyses `p` under an explicit layout (used by the optimizer after
    /// relocation).
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_with_layout(
        p: &Program,
        layout: Layout,
        config: &CacheConfig,
        timing: &MemTiming,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(
            p,
            layout,
            &HierarchyConfig::l1_only(*config),
            timing,
            None,
            RefineConfig::default(),
            1,
        )
    }

    /// [`analyze_with_layout`](WcetAnalysis::analyze_with_layout) with an
    /// explicit refinement configuration (the engine threads its
    /// fingerprinted `RefineConfig` through here). Refinement only runs
    /// for FIFO/tree-PLRU; under LRU or with refinement disabled the
    /// result is bit-identical to the unrefined analysis.
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_refined(
        p: &Program,
        layout: Layout,
        config: &CacheConfig,
        timing: &MemTiming,
        refine: RefineConfig,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(
            p,
            layout,
            &HierarchyConfig::l1_only(*config),
            timing,
            None,
            refine,
            1,
        )
    }

    /// [`analyze_refined`](WcetAnalysis::analyze_refined) solving the
    /// classify fixpoint's ready SCCs — and the refinement stage's per-set
    /// explorations — on `threads` scoped worker threads (`1` =
    /// sequential). Results are bit-identical at any thread count; the
    /// knob only trades wall-clock for cores. Incremental re-analyses
    /// derived from this analysis inherit the same thread count.
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_parallel(
        p: &Program,
        layout: Layout,
        config: &CacheConfig,
        timing: &MemTiming,
        refine: RefineConfig,
        threads: usize,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(
            p,
            layout,
            &HierarchyConfig::l1_only(*config),
            timing,
            None,
            refine,
            threads,
        )
    }

    /// [`analyze_parallel`](WcetAnalysis::analyze_parallel) over a full
    /// cache [`HierarchyConfig`]. With a single-level hierarchy this is
    /// bit-identical to the single-level entry points; with an L2 level
    /// the refined L1 classification drives Hardy & Puaut's filtered L2
    /// must/may pass, and `t_w` charges
    /// [`MemTiming::l2_hit_cycles`] for L1 misses the L2 analysis proves
    /// always-hit.
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_hierarchy(
        p: &Program,
        layout: Layout,
        hierarchy: &HierarchyConfig,
        timing: &MemTiming,
        refine: RefineConfig,
        threads: usize,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(p, layout, hierarchy, timing, None, refine, threads)
    }

    /// Analyses `p` assuming an always-on **next-N-line hardware
    /// prefetcher** (the abstract-semantics extension of the paper's
    /// reference [22]). The bound assumes ideal prefetch timing and is
    /// therefore optimistic — see
    /// [`classify_with_hw`](crate::classify::classify_with_hw).
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_with_hw_next_line(
        p: &Program,
        config: &CacheConfig,
        timing: &MemTiming,
        n: u32,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(
            p,
            Layout::of(p),
            &HierarchyConfig::l1_only(*config),
            timing,
            Some(n),
            RefineConfig::default(),
            1,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn analyze_full(
        p: &Program,
        layout: Layout,
        hierarchy: &HierarchyConfig,
        timing: &MemTiming,
        hw_next_line: Option<u32>,
        refine: RefineConfig,
        threads: usize,
    ) -> Result<Self, AnalysisError> {
        let t0 = Instant::now();
        let vivu = Arc::new(VivuGraph::build(p)?);
        let acfg = Acfg::build(p, &vivu);
        let vivu_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let cache = Arc::new(AnalysisCache::new());
        let cls = classify::classify_full_cached(
            p,
            &layout,
            &vivu,
            &acfg,
            hierarchy.l1(),
            hw_next_line,
            &cache,
            threads,
        )?;
        let fixpoint_ns = t1.elapsed().as_nanos() as u64;

        Self::finish(
            p,
            layout,
            vivu,
            acfg,
            hierarchy,
            timing,
            hw_next_line,
            refine,
            threads,
            cls,
            cache,
            vivu_ns,
            fixpoint_ns,
            false,
        )
    }

    /// Shared tail of full and incremental analysis: timing vector, node
    /// weights, IPET, and profile assembly.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        p: &Program,
        layout: Layout,
        vivu: Arc<VivuGraph>,
        acfg: Acfg,
        hierarchy: &HierarchyConfig,
        timing: &MemTiming,
        hw_next_line: Option<u32>,
        refine: RefineConfig,
        threads: usize,
        cls: ClassifyResult,
        cache: Arc<AnalysisCache>,
        vivu_ns: u64,
        fixpoint_ns: u64,
        incremental: bool,
    ) -> Result<Self, AnalysisError> {
        let config = hierarchy.l1();
        // Exact refinement of the cheap classification (a deterministic
        // post-pass, so incremental and full analyses stay bit-identical).
        // The unrefined vector is retained: it alone seeds the next
        // incremental step.
        let cheap_class = cls.class;
        let mut class = cheap_class.clone();
        let t_refine = Instant::now();
        let (marks, refine_stats) = refine::refine_classification(
            &vivu,
            &acfg,
            config,
            refine,
            hw_next_line,
            &cls.sigs,
            &cls.mem_block,
            &mut class,
            threads,
        );
        let refine_ns = t_refine.elapsed().as_nanos() as u64;

        // Second-level classification: a deterministic post-pass fed by
        // the *refined* L1 classes (the level-wise composition — refine
        // runs per level in the sense that its upgrades tighten the L2
        // filter). Recomputed from scratch every finish, so incremental
        // and full analyses agree by construction. The hardware next-line
        // model stays a single-level analysis.
        let l2_cfg = if hw_next_line.is_some() {
            None
        } else {
            hierarchy.l2().copied()
        };
        let (l2_class, l2_cac) = match &l2_cfg {
            Some(l2cfg) => {
                let r = l2::classify_l2(&vivu, &acfg, l2cfg, &class, &cls.sigs)?;
                (r.class, r.cac)
            }
            None => (Vec::new(), Vec::new()),
        };

        // Per-reference worst-case access time, from the refined view.
        // With an L2 level, an L1 miss the L2 analysis proves always-hit
        // is served in `l2_hit_cycles` instead of the DRAM time.
        let l2_hit_cycles = timing.l2_hit_cycles.unwrap_or(timing.miss_cycles);
        let t_w: Vec<u64> = class
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if !c.counts_as_miss() {
                    timing.hit_cycles
                } else if l2_cfg.is_some() && l2_class[i] == Classification::AlwaysHit {
                    l2_hit_cycles
                } else {
                    timing.miss_cycles
                }
            })
            .collect();

        let t2 = Instant::now();
        // Node weights: Σ t_w over the node's references × multiplicity.
        let node_weight: Vec<u64> = (0..vivu.len())
            .map(|i| {
                let n = NodeId(i as u32);
                let sum: u64 = acfg.refs_of_node(n).iter().map(|r| t_w[r.index()]).sum();
                sum.saturating_mul(vivu.node(n).mult)
            })
            .collect();

        let ipet = ipet::solve_dag(&vivu, &node_weight)?;
        let n_w: Vec<u64> = acfg
            .refs()
            .iter()
            .map(|r| ipet.n_w[r.node.index()])
            .collect();
        let ipet_ns = t2.elapsed().as_nanos() as u64;

        let profile = AnalysisProfile {
            vivu_ns,
            fixpoint_ns,
            join_ns: cls.join_ns,
            transfer_ns: cls.transfer_ns,
            refine_ns,
            ipet_ns,
            relocation_ns: 0,
            fixpoint_evals: cls.evals,
            memo_hits: cls.memo_hits,
            states_interned: cls.states_interned,
            states_fresh: cls.states_fresh,
            full_analyses: u64::from(!incremental),
            incremental_analyses: u64::from(incremental),
            nodes_total: vivu.len() as u64,
            nodes_reanalyzed: cls.nodes_reanalyzed as u64,
            ..AnalysisProfile::default()
        };

        Ok(WcetAnalysis {
            layout,
            vivu,
            acfg,
            config: *config,
            l2: l2_cfg,
            l2_class,
            l2_cac,
            timing: *timing,
            hw_next_line,
            refine,
            threads,
            cfg_sig: cfg_signature(p),
            class,
            cheap_class,
            marks,
            refine_stats,
            mem_block: cls.mem_block,
            pf_block: cls.pf_block,
            out_states: cls.out_states,
            sigs: cls.sigs,
            cache,
            t_w,
            n_w,
            on_path: ipet.on_path,
            tau_w: ipet.tau_w,
            profile,
        })
    }

    /// Re-analyses `p2` (the analysed program after one or more
    /// instruction insertions that preserve the CFG — blocks, edges, and
    /// loop bounds) by reusing this analysis's VIVU context graph and
    /// abstract cache states. Only condensation components holding a
    /// context whose touched-block signature changed — or receiving a
    /// changed input — are pushed through the must/may fixpoint, and
    /// recomputed node evaluations resolve from the lineage's shared memo
    /// whenever the same transfer was already applied to the same inputs;
    /// IPET re-runs in full (it is a cheap DAG longest-path).
    ///
    /// The result is *identical* to a from-scratch
    /// [`analyze_with_layout`](WcetAnalysis::analyze_with_layout) of
    /// `(p2, layout2)` — see the `classify` module docs for the fixpoint
    /// uniqueness argument; debug builds cross-check this. If the CFG
    /// *did* change, the call transparently falls back to a full
    /// analysis.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as a full analysis.
    pub fn reanalyze_after_insert(
        &self,
        p2: &Program,
        layout2: Layout,
    ) -> Result<Self, AnalysisError> {
        if cfg_signature(p2) != self.cfg_sig {
            return Self::analyze_full(
                p2,
                layout2,
                &self.hierarchy(),
                &self.timing,
                self.hw_next_line,
                self.refine,
                self.threads,
            );
        }

        let t0 = Instant::now();
        let vivu = Arc::clone(&self.vivu);
        let acfg = Acfg::build(p2, &vivu);
        let vivu_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let cls = classify::classify_incremental(
            p2,
            &layout2,
            &vivu,
            &acfg,
            &self.config,
            self.hw_next_line,
            PrevPass {
                acfg: &self.acfg,
                // Seed from the *cheap* classification: the skipped-SCC
                // positional copy must reproduce the fixpoint's own
                // output; refinement re-runs on top in `finish`.
                class: &self.cheap_class,
                mem_block: &self.mem_block,
                pf_block: &self.pf_block,
                out_states: &self.out_states,
                sigs: &self.sigs,
            },
            &self.cache,
            self.threads,
        )?;
        let fixpoint_ns = t1.elapsed().as_nanos() as u64;

        let result = Self::finish(
            p2,
            layout2,
            vivu,
            acfg,
            &self.hierarchy(),
            &self.timing,
            self.hw_next_line,
            self.refine,
            self.threads,
            cls,
            Arc::clone(&self.cache),
            vivu_ns,
            fixpoint_ns,
            true,
        )?;

        #[cfg(debug_assertions)]
        {
            let full = Self::analyze_full(
                p2,
                result.layout.clone(),
                &self.hierarchy(),
                &self.timing,
                self.hw_next_line,
                self.refine,
                self.threads,
            )?;
            debug_assert_eq!(
                result.tau_w, full.tau_w,
                "incremental re-analysis diverged from from-scratch τ_w"
            );
            debug_assert_eq!(
                result.class, full.class,
                "incremental re-analysis diverged from from-scratch classification"
            );
            debug_assert_eq!(
                result.cheap_class, full.cheap_class,
                "incremental re-analysis diverged from from-scratch cheap classification"
            );
        }

        Ok(result)
    }

    /// The memory system's contribution to the WCET (`τ_w`, Eq. 3).
    #[inline]
    pub fn tau_w(&self) -> u64 {
        self.tau_w
    }

    /// The layout the analysis ran under.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The VIVU context graph.
    #[inline]
    pub fn vivu(&self) -> &VivuGraph {
        &self.vivu
    }

    /// The reference graph (ACFG).
    #[inline]
    pub fn acfg(&self) -> &Acfg {
        &self.acfg
    }

    /// The cache geometry analysed against (the L1 level).
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The second-level geometry, when the analysed hierarchy has one.
    #[inline]
    pub fn l2_config(&self) -> Option<&CacheConfig> {
        self.l2.as_ref()
    }

    /// The full hierarchy this analysis ran under.
    pub fn hierarchy(&self) -> HierarchyConfig {
        match self.l2 {
            Some(l2) => HierarchyConfig::two_level(self.config, l2)
                .expect("hierarchy validated at analysis entry"),
            None => HierarchyConfig::l1_only(self.config),
        }
    }

    /// L2 classification of reference `r` — `None` for a single-level
    /// hierarchy. For a reference whose access never reaches L2 (L1
    /// always-hit) the value is
    /// [`Classification::Unclassified`]: no claim is made.
    #[inline]
    pub fn l2_classification(&self, r: RefId) -> Option<Classification> {
        self.l2.map(|_| self.l2_class[r.index()])
    }

    /// The L1-outcome filter reference `r`'s L2 update ran under — `None`
    /// for a single-level hierarchy.
    #[inline]
    pub fn l2_cac(&self, r: RefId) -> Option<CacheAccessClassification> {
        self.l2.map(|_| self.l2_cac[r.index()])
    }

    /// The timing model analysed against.
    #[inline]
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Per-phase timings and work counters for this analysis run.
    #[inline]
    pub fn profile(&self) -> &AnalysisProfile {
        &self.profile
    }

    /// Classification of reference `r` (refined, when the refinement
    /// stage upgraded it).
    #[inline]
    pub fn classification(&self, r: RefId) -> Classification {
        self.class[r.index()]
    }

    /// The cheap (unrefined) fixpoint classification of reference `r`.
    /// Differs from [`classification`](WcetAnalysis::classification) only
    /// on references the refinement stage upgraded.
    #[inline]
    pub fn cheap_classification(&self, r: RefId) -> Classification {
        self.cheap_class[r.index()]
    }

    /// What the refinement stage did to reference `r`.
    #[inline]
    pub fn refine_mark(&self, r: RefId) -> RefineMark {
        self.marks[r.index()]
    }

    /// The refinement configuration this analysis ran under.
    #[inline]
    pub fn refine_config(&self) -> RefineConfig {
        self.refine
    }

    /// Outcome counters of the refinement stage.
    #[inline]
    pub fn refine_stats(&self) -> &RefineStats {
        &self.refine_stats
    }

    /// Worst-case access time `t_w(r)` in cycles.
    #[inline]
    pub fn t_w(&self, r: RefId) -> u64 {
        self.t_w[r.index()]
    }

    /// WCET-scenario execution count of `r`'s basic-block instance
    /// (`n^w_{B(r)}`).
    #[inline]
    pub fn n_w(&self, r: RefId) -> u64 {
        self.n_w[r.index()]
    }

    /// Whether `r` lies on the WCET path.
    #[inline]
    pub fn on_wcet_path(&self, r: RefId) -> bool {
        self.n_w[r.index()] > 0
    }

    /// Whether the VIVU node lies on the WCET path.
    #[inline]
    pub fn node_on_wcet_path(&self, n: NodeId) -> bool {
        self.on_path[n.index()]
    }

    /// Memory block fetched by reference `r`.
    #[inline]
    pub fn mem_block(&self, r: RefId) -> MemBlockId {
        self.mem_block[r.index()]
    }

    /// Memory block loaded by reference `r`'s prefetch, if `r` is one.
    #[inline]
    pub fn pf_block(&self, r: RefId) -> Option<MemBlockId> {
        self.pf_block[r.index()]
    }

    /// Overall contribution of reference `r` to the WCET
    /// (`τ_w(r) = t_w(r) × n^w`, Eq. 2).
    #[inline]
    pub fn tau_of(&self, r: RefId) -> u64 {
        self.t_w[r.index()] * self.n_w[r.index()]
    }

    /// Number of classified-miss references weighted by WCET counts
    /// (misses the WCET bound accounts for).
    pub fn wcet_misses(&self) -> u64 {
        self.acfg
            .refs()
            .iter()
            .filter(|r| self.class[r.id.index()].counts_as_miss())
            .map(|r| self.n_w[r.id.index()])
            .sum()
    }

    /// Total accesses on the WCET path.
    pub fn wcet_accesses(&self) -> u64 {
        self.acfg
            .refs()
            .iter()
            .map(|r| self.n_w[r.id.index()])
            .sum()
    }

    /// Static counts of always-hit / always-miss / unclassified references.
    pub fn classification_counts(&self) -> (usize, usize, usize) {
        let mut hit = 0;
        let mut miss = 0;
        let mut unk = 0;
        for c in &self.class {
            match c {
                Classification::AlwaysHit => hit += 1,
                Classification::AlwaysMiss => miss += 1,
                Classification::Unclassified => unk += 1,
            }
        }
        (hit, miss, unk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn analyze(shape: Shape, config: CacheConfig) -> WcetAnalysis {
        let p = shape.compile("t");
        WcetAnalysis::analyze(&p, &config, &MemTiming::default()).unwrap()
    }

    #[test]
    fn tau_w_equals_sum_of_reference_contributions() {
        let a = analyze(
            Shape::loop_(10, Shape::if_else(1, Shape::code(6), Shape::code(2))),
            CacheConfig::new(2, 16, 256).unwrap(),
        );
        let sum: u64 = a.acfg().refs().iter().map(|r| a.tau_of(r.id)).sum();
        assert_eq!(sum, a.tau_w());
    }

    #[test]
    fn bigger_cache_never_increases_tau_w() {
        let shape = Shape::loop_(20, Shape::code(60));
        let small = analyze(shape.clone(), CacheConfig::new(2, 16, 128).unwrap());
        let large = analyze(shape, CacheConfig::new(2, 16, 4096).unwrap());
        assert!(large.tau_w() <= small.tau_w());
    }

    #[test]
    fn warm_loop_wcet_dominated_by_first_iteration_misses() {
        // Body fits in cache: rest iterations all hit, so WCET ≈
        // cold misses + (iterations × hits).
        let cfg = CacheConfig::new(4, 16, 1024).unwrap();
        let a = analyze(Shape::loop_(100, Shape::code(16)), cfg);
        let t = MemTiming::default();
        // All instructions execute ≈ 100×16 times at hit cost; misses only
        // on first touch of each block (16 instrs = 4 blocks + wrapper).
        let lower = 100 * 16 * t.hit_cycles;
        let upper = lower + 40 * t.miss_cycles;
        assert!(a.tau_w() >= lower, "tau {} < {lower}", a.tau_w());
        assert!(a.tau_w() <= upper, "tau {} > {upper}", a.tau_w());
    }

    #[test]
    fn miss_counts_drop_with_capacity() {
        let shape = Shape::loop_(10, Shape::code(120));
        let small = analyze(shape.clone(), CacheConfig::new(1, 16, 128).unwrap());
        let large = analyze(shape, CacheConfig::new(4, 32, 8192).unwrap());
        assert!(large.wcet_misses() < small.wcet_misses());
    }

    #[test]
    fn accessors_are_consistent() {
        let a = analyze(Shape::code(10), CacheConfig::new(2, 16, 256).unwrap());
        for r in a.acfg().refs() {
            assert!(a.t_w(r.id) >= 1);
            if a.on_wcet_path(r.id) {
                assert!(a.n_w(r.id) >= 1);
                assert!(a.node_on_wcet_path(r.node));
            }
        }
        let (h, m, u) = a.classification_counts();
        assert_eq!(h + m + u, a.acfg().len());
        let prof = a.profile();
        assert_eq!(prof.full_analyses, 1);
        assert_eq!(prof.incremental_analyses, 0);
        assert_eq!(prof.nodes_total, a.vivu().len() as u64);
    }

    #[test]
    fn straight_line_wcet_is_exact() {
        // 8 instrs on two 16-B blocks, big cache: 2 misses + 6 hits.
        let t = MemTiming::default();
        let a = analyze(Shape::code(8), CacheConfig::new(2, 16, 256).unwrap());
        assert_eq!(a.tau_w(), 2 * t.miss_cycles + 6 * t.hit_cycles);
    }

    #[test]
    fn reanalyze_after_insert_matches_full() {
        use rtpf_isa::{InstrKind, Layout};
        let cfg = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        let p1 = Shape::seq([Shape::code(6), Shape::loop_(8, Shape::code(12))]).compile("ra");
        let a1 = WcetAnalysis::analyze(&p1, &cfg, &timing).unwrap();

        let mut p2 = p1.clone();
        let b0 = p2.entry();
        let target = p2.block(b0).instrs()[4];
        p2.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let anchor = p2.block(b0).instrs()[0];
        let layout2 = Layout::anchored(&p2, anchor, a1.layout().addr(anchor));

        let inc = a1.reanalyze_after_insert(&p2, layout2.clone()).unwrap();
        let full = WcetAnalysis::analyze_with_layout(&p2, layout2, &cfg, &timing).unwrap();
        assert_eq!(inc.tau_w(), full.tau_w());
        assert_eq!(inc.wcet_misses(), full.wcet_misses());
        assert_eq!(inc.classification_counts(), full.classification_counts());
        assert_eq!(inc.profile().incremental_analyses, 1);
        assert!(inc.profile().nodes_reanalyzed <= inc.profile().nodes_total);
    }

    #[test]
    fn reanalyze_falls_back_when_cfg_changes() {
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let timing = MemTiming::default();
        let p1 = Shape::code(8).compile("fb");
        let a1 = WcetAnalysis::analyze(&p1, &cfg, &timing).unwrap();
        // A structurally different program: the fallback path must produce
        // a correct full analysis rather than touching stale state.
        let p2 = Shape::seq([
            Shape::code(4),
            Shape::if_else(1, Shape::code(4), Shape::code(4)),
        ])
        .compile("fb2");
        let inc = a1
            .reanalyze_after_insert(&p2, rtpf_isa::Layout::of(&p2))
            .unwrap();
        let full = WcetAnalysis::analyze(&p2, &cfg, &timing).unwrap();
        assert_eq!(inc.tau_w(), full.tau_w());
        assert_eq!(inc.profile().full_analyses, 1);
    }
}
