//! End-to-end WCET analysis: VIVU → classification → IPET.

use rtpf_cache::{CacheConfig, Classification, MemTiming};
use rtpf_isa::{Layout, MemBlockId, Program};

use crate::acfg::{Acfg, RefId};
use crate::classify;
use crate::error::AnalysisError;
use crate::ipet;
use crate::vivu::{NodeId, VivuGraph};

/// Result of analysing one program under one cache configuration.
///
/// Holds everything the prefetch optimizer needs: the reference graph, the
/// per-reference classification and worst-case access time `t_w(r)`, the
/// WCET-scenario execution counts `n^w`, and the total memory contribution
/// `τ_w` to the WCET.
#[derive(Clone, Debug)]
pub struct WcetAnalysis {
    layout: Layout,
    vivu: VivuGraph,
    acfg: Acfg,
    config: CacheConfig,
    timing: MemTiming,
    class: Vec<Classification>,
    mem_block: Vec<MemBlockId>,
    t_w: Vec<u64>,
    n_w: Vec<u64>,
    on_path: Vec<bool>,
    tau_w: u64,
}

impl WcetAnalysis {
    /// Analyses `p` under the default base layout.
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze(
        p: &Program,
        config: &CacheConfig,
        timing: &MemTiming,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_with_layout(p, Layout::of(p), config, timing)
    }

    /// Analyses `p` under an explicit layout (used by the optimizer after
    /// relocation).
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_with_layout(
        p: &Program,
        layout: Layout,
        config: &CacheConfig,
        timing: &MemTiming,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(p, layout, config, timing, None)
    }

    /// Analyses `p` assuming an always-on **next-N-line hardware
    /// prefetcher** (the abstract-semantics extension of the paper's
    /// reference [22]). The bound assumes ideal prefetch timing and is
    /// therefore optimistic — see
    /// [`classify_with_hw`](crate::classify::classify_with_hw).
    ///
    /// # Errors
    ///
    /// Fails if `p` is structurally invalid or the analysis blows its
    /// context budget.
    pub fn analyze_with_hw_next_line(
        p: &Program,
        config: &CacheConfig,
        timing: &MemTiming,
        n: u32,
    ) -> Result<Self, AnalysisError> {
        Self::analyze_full(p, Layout::of(p), config, timing, Some(n))
    }

    fn analyze_full(
        p: &Program,
        layout: Layout,
        config: &CacheConfig,
        timing: &MemTiming,
        hw_next_line: Option<u32>,
    ) -> Result<Self, AnalysisError> {
        let vivu = VivuGraph::build(p)?;
        let acfg = Acfg::build(p, &vivu);
        let cls = classify::classify_with_hw(p, &layout, &vivu, &acfg, config, hw_next_line);

        // Per-reference worst-case access time.
        let t_w: Vec<u64> = cls
            .class
            .iter()
            .map(|c| timing.access_cycles(!c.counts_as_miss()))
            .collect();

        // Node weights: Σ t_w over the node's references × multiplicity.
        let node_weight: Vec<u64> = (0..vivu.len())
            .map(|i| {
                let n = NodeId(i as u32);
                let sum: u64 = acfg
                    .refs_of_node(n)
                    .iter()
                    .map(|r| t_w[r.index()])
                    .sum();
                sum.saturating_mul(vivu.node(n).mult)
            })
            .collect();

        let ipet = ipet::solve_dag(&vivu, &node_weight)?;
        let n_w: Vec<u64> = acfg
            .refs()
            .iter()
            .map(|r| ipet.n_w[r.node.index()])
            .collect();

        Ok(WcetAnalysis {
            layout,
            vivu,
            acfg,
            config: *config,
            timing: *timing,
            class: cls.class,
            mem_block: cls.mem_block,
            t_w,
            n_w,
            on_path: ipet.on_path,
            tau_w: ipet.tau_w,
        })
    }

    /// The memory system's contribution to the WCET (`τ_w`, Eq. 3).
    #[inline]
    pub fn tau_w(&self) -> u64 {
        self.tau_w
    }

    /// The layout the analysis ran under.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The VIVU context graph.
    #[inline]
    pub fn vivu(&self) -> &VivuGraph {
        &self.vivu
    }

    /// The reference graph (ACFG).
    #[inline]
    pub fn acfg(&self) -> &Acfg {
        &self.acfg
    }

    /// The cache geometry analysed against.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The timing model analysed against.
    #[inline]
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Classification of reference `r`.
    #[inline]
    pub fn classification(&self, r: RefId) -> Classification {
        self.class[r.index()]
    }

    /// Worst-case access time `t_w(r)` in cycles.
    #[inline]
    pub fn t_w(&self, r: RefId) -> u64 {
        self.t_w[r.index()]
    }

    /// WCET-scenario execution count of `r`'s basic-block instance
    /// (`n^w_{B(r)}`).
    #[inline]
    pub fn n_w(&self, r: RefId) -> u64 {
        self.n_w[r.index()]
    }

    /// Whether `r` lies on the WCET path.
    #[inline]
    pub fn on_wcet_path(&self, r: RefId) -> bool {
        self.n_w[r.index()] > 0
    }

    /// Whether the VIVU node lies on the WCET path.
    #[inline]
    pub fn node_on_wcet_path(&self, n: NodeId) -> bool {
        self.on_path[n.index()]
    }

    /// Memory block fetched by reference `r`.
    #[inline]
    pub fn mem_block(&self, r: RefId) -> MemBlockId {
        self.mem_block[r.index()]
    }

    /// Overall contribution of reference `r` to the WCET
    /// (`τ_w(r) = t_w(r) × n^w`, Eq. 2).
    #[inline]
    pub fn tau_of(&self, r: RefId) -> u64 {
        self.t_w[r.index()] * self.n_w[r.index()]
    }

    /// Number of classified-miss references weighted by WCET counts
    /// (misses the WCET bound accounts for).
    pub fn wcet_misses(&self) -> u64 {
        self.acfg
            .refs()
            .iter()
            .filter(|r| self.class[r.id.index()].counts_as_miss())
            .map(|r| self.n_w[r.id.index()])
            .sum()
    }

    /// Total accesses on the WCET path.
    pub fn wcet_accesses(&self) -> u64 {
        self.acfg.refs().iter().map(|r| self.n_w[r.id.index()]).sum()
    }

    /// Static counts of always-hit / always-miss / unclassified references.
    pub fn classification_counts(&self) -> (usize, usize, usize) {
        let mut hit = 0;
        let mut miss = 0;
        let mut unk = 0;
        for c in &self.class {
            match c {
                Classification::AlwaysHit => hit += 1,
                Classification::AlwaysMiss => miss += 1,
                Classification::Unclassified => unk += 1,
            }
        }
        (hit, miss, unk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn analyze(shape: Shape, config: CacheConfig) -> WcetAnalysis {
        let p = shape.compile("t");
        WcetAnalysis::analyze(&p, &config, &MemTiming::default()).unwrap()
    }

    #[test]
    fn tau_w_equals_sum_of_reference_contributions() {
        let a = analyze(
            Shape::loop_(10, Shape::if_else(1, Shape::code(6), Shape::code(2))),
            CacheConfig::new(2, 16, 256).unwrap(),
        );
        let sum: u64 = a.acfg().refs().iter().map(|r| a.tau_of(r.id)).sum();
        assert_eq!(sum, a.tau_w());
    }

    #[test]
    fn bigger_cache_never_increases_tau_w() {
        let shape = Shape::loop_(20, Shape::code(60));
        let small = analyze(shape.clone(), CacheConfig::new(2, 16, 128).unwrap());
        let large = analyze(shape, CacheConfig::new(2, 16, 4096).unwrap());
        assert!(large.tau_w() <= small.tau_w());
    }

    #[test]
    fn warm_loop_wcet_dominated_by_first_iteration_misses() {
        // Body fits in cache: rest iterations all hit, so WCET ≈
        // cold misses + (iterations × hits).
        let cfg = CacheConfig::new(4, 16, 1024).unwrap();
        let a = analyze(Shape::loop_(100, Shape::code(16)), cfg);
        let t = MemTiming::default();
        // All instructions execute ≈ 100×16 times at hit cost; misses only
        // on first touch of each block (16 instrs = 4 blocks + wrapper).
        let lower = 100 * 16 * t.hit_cycles;
        let upper = lower + 40 * t.miss_cycles;
        assert!(a.tau_w() >= lower, "tau {} < {lower}", a.tau_w());
        assert!(a.tau_w() <= upper, "tau {} > {upper}", a.tau_w());
    }

    #[test]
    fn miss_counts_drop_with_capacity() {
        let shape = Shape::loop_(10, Shape::code(120));
        let small = analyze(shape.clone(), CacheConfig::new(1, 16, 128).unwrap());
        let large = analyze(shape, CacheConfig::new(4, 32, 8192).unwrap());
        assert!(large.wcet_misses() < small.wcet_misses());
    }

    #[test]
    fn accessors_are_consistent() {
        let a = analyze(Shape::code(10), CacheConfig::new(2, 16, 256).unwrap());
        for r in a.acfg().refs() {
            assert!(a.t_w(r.id) >= 1);
            if a.on_wcet_path(r.id) {
                assert!(a.n_w(r.id) >= 1);
                assert!(a.node_on_wcet_path(r.node));
            }
        }
        let (h, m, u) = a.classification_counts();
        assert_eq!(h + m + u, a.acfg().len());
    }

    #[test]
    fn straight_line_wcet_is_exact() {
        // 8 instrs on two 16-B blocks, big cache: 2 misses + 6 hits.
        let t = MemTiming::default();
        let a = analyze(Shape::code(8), CacheConfig::new(2, 16, 256).unwrap());
        assert_eq!(a.tau_w(), 2 * t.miss_cycles + 6 * t.hit_cycles);
    }
}
