//! The abstract control-flow graph over *references* (paper Definition 6).
//!
//! Every instruction fetch in a VIVU context is a reference `r ∈ R`; edges
//! give the execution order. The graph is polar (virtual source/sink are
//! implicit: [`Acfg::entry_refs`] / nodes without successors) and acyclic —
//! back edges were already broken by VIVU. The prefetch optimizer walks
//! this graph in reverse topological order (the paper's `ACFG*` is its
//! reversal, which we expose as [`Acfg::preds`] rather than materializing a
//! second graph).

use rtpf_isa::{InstrId, Program};

use crate::vivu::{NodeId, VivuGraph};

/// Identity of a reference (an instruction fetch in one VIVU context).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RefId(pub u32);

impl RefId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RefId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One reference: which instruction, in which VIVU node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reference {
    /// Identity of the reference.
    pub id: RefId,
    /// The fetched instruction.
    pub instr: InstrId,
    /// The VIVU context instance performing the fetch.
    pub node: NodeId,
}

/// The acyclic reference graph.
#[derive(Clone, Debug)]
pub struct Acfg {
    refs: Vec<Reference>,
    succs: Vec<Vec<RefId>>,
    preds: Vec<Vec<RefId>>,
    entry_refs: Vec<RefId>,
    topo: Vec<RefId>,
    node_refs: Vec<Vec<RefId>>,
}

impl Acfg {
    /// Builds the reference graph of `p` over its VIVU expansion.
    pub fn build(p: &Program, vivu: &VivuGraph) -> Acfg {
        let mut refs: Vec<Reference> = Vec::new();
        let mut node_refs: Vec<Vec<RefId>> = vec![Vec::new(); vivu.len()];

        // Allocate references node by node in topological order so that the
        // flattened order is itself topological.
        for &n in vivu.topo() {
            let block = vivu.node(n).block;
            for &i in p.block(block).instrs() {
                let id = RefId(refs.len() as u32);
                refs.push(Reference { id, instr: i, node: n });
                node_refs[n.index()].push(id);
            }
        }

        let mut succs: Vec<Vec<RefId>> = vec![Vec::new(); refs.len()];
        let mut preds: Vec<Vec<RefId>> = vec![Vec::new(); refs.len()];

        // Intra-node chains.
        for chain in &node_refs {
            for w in chain.windows(2) {
                succs[w[0].index()].push(w[1]);
                preds[w[1].index()].push(w[0]);
            }
        }

        // `first_of[n]`: the references where execution continues when it
        // reaches node `n`; resolves through empty nodes. Computed in
        // reverse topological order so successors are ready.
        let mut first_of: Vec<Vec<RefId>> = vec![Vec::new(); vivu.len()];
        for &n in vivu.topo().iter().rev() {
            if let Some(&f) = node_refs[n.index()].first() {
                first_of[n.index()] = vec![f];
            } else {
                let mut firsts: Vec<RefId> = Vec::new();
                for &s in vivu.succs(n) {
                    for &f in &first_of[s.index()] {
                        if !firsts.contains(&f) {
                            firsts.push(f);
                        }
                    }
                }
                first_of[n.index()] = firsts;
            }
        }

        // Inter-node edges: last reference of a node to the first
        // reference(s) of each successor.
        for n in 0..vivu.len() {
            let Some(&last) = node_refs[n].last() else {
                continue;
            };
            for &s in vivu.succs(NodeId(n as u32)) {
                for &f in &first_of[s.index()] {
                    if !succs[last.index()].contains(&f) {
                        succs[last.index()].push(f);
                        preds[f.index()].push(last);
                    }
                }
            }
        }

        let entry_refs = first_of[vivu.entry().index()].clone();
        let topo: Vec<RefId> = vivu
            .topo()
            .iter()
            .flat_map(|&n| node_refs[n.index()].iter().copied())
            .collect();

        Acfg {
            refs,
            succs,
            preds,
            entry_refs,
            topo,
            node_refs,
        }
    }

    /// All references.
    #[inline]
    pub fn refs(&self) -> &[Reference] {
        &self.refs
    }

    /// Reference lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn reference(&self, id: RefId) -> Reference {
        self.refs[id.index()]
    }

    /// Execution-order successors of `id`.
    #[inline]
    pub fn succs(&self, id: RefId) -> &[RefId] {
        &self.succs[id.index()]
    }

    /// Execution-order predecessors of `id` (the successors in the paper's
    /// reversed `ACFG*`).
    #[inline]
    pub fn preds(&self, id: RefId) -> &[RefId] {
        &self.preds[id.index()]
    }

    /// References where execution starts (targets of the virtual source).
    #[inline]
    pub fn entry_refs(&self) -> &[RefId] {
        &self.entry_refs
    }

    /// References with no successors (sources of the virtual sink).
    pub fn exit_refs(&self) -> Vec<RefId> {
        (0..self.refs.len() as u32)
            .map(RefId)
            .filter(|r| self.succs[r.index()].is_empty())
            .collect()
    }

    /// A topological order of the references (execution order).
    #[inline]
    pub fn topo(&self) -> &[RefId] {
        &self.topo
    }

    /// References of a VIVU node, in instruction order.
    #[inline]
    pub fn refs_of_node(&self, n: NodeId) -> &[RefId] {
        &self.node_refs[n.index()]
    }

    /// Number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the program has no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn build(shape: Shape) -> (Program, VivuGraph, Acfg) {
        let p = shape.compile("t");
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        (p, v, a)
    }

    #[test]
    fn straight_line_is_a_chain() {
        let (p, _, a) = build(Shape::code(8));
        assert_eq!(a.len(), p.instr_count());
        assert_eq!(a.entry_refs().len(), 1);
        assert_eq!(a.exit_refs().len(), 1);
        for r in a.refs() {
            assert!(a.succs(r.id).len() <= 1);
            assert!(a.preds(r.id).len() <= 1);
        }
    }

    #[test]
    fn loop_references_appear_twice() {
        let (p, _, a) = build(Shape::loop_(10, Shape::code(5)));
        // Loop header and body referenced in first and rest contexts.
        assert!(a.len() > p.instr_count());
        use std::collections::HashMap;
        let mut count: HashMap<rtpf_isa::InstrId, usize> = HashMap::new();
        for r in a.refs() {
            *count.entry(r.instr).or_default() += 1;
        }
        assert!(count.values().all(|&c| c <= 2));
        assert!(count.values().any(|&c| c == 2));
    }

    #[test]
    fn topo_respects_edges() {
        let (_, _, a) = build(Shape::loop_(
            4,
            Shape::if_else(1, Shape::code(3), Shape::code(2)),
        ));
        let pos: std::collections::HashMap<RefId, usize> =
            a.topo().iter().enumerate().map(|(i, &r)| (r, i)).collect();
        for r in a.refs() {
            for &s in a.succs(r.id) {
                assert!(pos[&r.id] < pos[&s]);
            }
        }
        assert_eq!(a.topo().len(), a.len());
    }

    #[test]
    fn merge_points_have_multiple_preds() {
        let (_, _, a) = build(Shape::if_else(1, Shape::code(3), Shape::code(2)));
        let merges = a
            .refs()
            .iter()
            .filter(|r| a.preds(r.id).len() >= 2)
            .count();
        assert_eq!(merges, 1, "exactly the join after the diamond");
    }

    #[test]
    fn node_refs_partition_all_references() {
        let (_, v, a) = build(Shape::loop_(3, Shape::code(4)));
        let total: usize = (0..v.len())
            .map(|n| a.refs_of_node(crate::vivu::NodeId(n as u32)).len())
            .sum();
        assert_eq!(total, a.len());
    }
}
