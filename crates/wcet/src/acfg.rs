//! The abstract control-flow graph over *references* (paper Definition 6).
//!
//! Every instruction fetch in a VIVU context is a reference `r ∈ R`; edges
//! give the execution order. The graph is polar (virtual source/sink are
//! implicit: [`Acfg::entry_refs`] / nodes without successors) and acyclic —
//! back edges were already broken by VIVU. The prefetch optimizer walks
//! this graph in reverse topological order (the paper's `ACFG*` is its
//! reversal, which we expose as [`Acfg::preds`] rather than materializing a
//! second graph).

use rtpf_isa::{InstrId, Program};

use crate::vivu::{NodeId, VivuGraph};

/// Identity of a reference (an instruction fetch in one VIVU context).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RefId(pub u32);

impl RefId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RefId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One reference: which instruction, in which VIVU node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reference {
    /// Identity of the reference.
    pub id: RefId,
    /// The fetched instruction.
    pub instr: InstrId,
    /// The VIVU context instance performing the fetch.
    pub node: NodeId,
}

/// The acyclic reference graph.
///
/// References are allocated node by node in topological order, so ids are
/// contiguous per VIVU node and the id sequence is itself a topological
/// order. Adjacency is stored in compressed (offset + flat data) form —
/// the graph is rebuilt for every candidate program the optimizer
/// verifies, and one flat allocation beats thousands of per-reference
/// vectors.
#[derive(Clone, Debug)]
pub struct Acfg {
    refs: Vec<Reference>,
    /// Identity sequence `r0, r1, …`; backs [`topo`](Acfg::topo) and the
    /// per-node slices of [`refs_of_node`](Acfg::refs_of_node).
    ids: Vec<RefId>,
    succ_off: Vec<u32>,
    succ_dat: Vec<RefId>,
    pred_off: Vec<u32>,
    pred_dat: Vec<RefId>,
    entry_refs: Vec<RefId>,
    /// Per VIVU node: the id range `[node_start[n], node_end[n])`.
    node_start: Vec<u32>,
    node_end: Vec<u32>,
}

impl Acfg {
    /// Builds the reference graph of `p` over its VIVU expansion.
    pub fn build(p: &Program, vivu: &VivuGraph) -> Acfg {
        let n = vivu.len();
        let mut refs: Vec<Reference> = Vec::new();
        let mut node_start = vec![0u32; n];
        let mut node_end = vec![0u32; n];

        // Allocate references node by node in topological order so that the
        // flattened order is itself topological.
        for &nd in vivu.topo() {
            let block = vivu.node(nd).block;
            node_start[nd.index()] = refs.len() as u32;
            for &i in p.block(block).instrs() {
                let id = RefId(refs.len() as u32);
                refs.push(Reference {
                    id,
                    instr: i,
                    node: nd,
                });
            }
            node_end[nd.index()] = refs.len() as u32;
        }
        let m = refs.len();
        let ids: Vec<RefId> = (0..m as u32).map(RefId).collect();

        // `first_of[n]`: the references where execution continues when it
        // reaches node `n`; resolves through empty nodes. Computed in
        // reverse topological order so successors are ready.
        let mut first_of: Vec<Vec<RefId>> = vec![Vec::new(); n];
        for &nd in vivu.topo().iter().rev() {
            let i = nd.index();
            if node_start[i] != node_end[i] {
                first_of[i] = vec![RefId(node_start[i])];
            } else {
                let mut firsts: Vec<RefId> = Vec::new();
                for &s in vivu.succs(nd) {
                    for &f in &first_of[s.index()] {
                        if !firsts.contains(&f) {
                            firsts.push(f);
                        }
                    }
                }
                first_of[i] = firsts;
            }
        }

        // Inter-node edges: last reference of a node to the first
        // reference(s) of each successor (deduplicated).
        let mut inter: Vec<(RefId, RefId)> = Vec::new();
        for nd in 0..n {
            if node_start[nd] == node_end[nd] {
                continue;
            }
            let last = RefId(node_end[nd] - 1);
            let before = inter.len();
            for &s in vivu.succs(NodeId(nd as u32)) {
                for &f in &first_of[s.index()] {
                    if !inter[before..].iter().any(|&(_, t)| t == f) {
                        inter.push((last, f));
                    }
                }
            }
        }

        // Degree counts → offsets → fill, preserving the edge order of the
        // nested-vector representation (intra-node chains first, then
        // inter-node edges in node-index order).
        let mut succ_off = vec![0u32; m + 1];
        let mut pred_off = vec![0u32; m + 1];
        for nd in 0..n {
            if node_end[nd] > node_start[nd] {
                for k in node_start[nd]..node_end[nd] - 1 {
                    succ_off[k as usize + 1] += 1;
                    pred_off[k as usize + 2] += 1;
                }
            }
        }
        for &(from, to) in &inter {
            succ_off[from.index() + 1] += 1;
            pred_off[to.index() + 1] += 1;
        }
        for i in 0..m {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ_cur: Vec<u32> = succ_off[..m].to_vec();
        let mut pred_cur: Vec<u32> = pred_off[..m].to_vec();
        let mut succ_dat = vec![RefId(0); succ_off[m] as usize];
        let mut pred_dat = vec![RefId(0); pred_off[m] as usize];
        for nd in 0..n {
            if node_end[nd] > node_start[nd] {
                for k in node_start[nd]..node_end[nd] - 1 {
                    succ_dat[succ_cur[k as usize] as usize] = RefId(k + 1);
                    succ_cur[k as usize] += 1;
                    pred_dat[pred_cur[k as usize + 1] as usize] = RefId(k);
                    pred_cur[k as usize + 1] += 1;
                }
            }
        }
        for &(from, to) in &inter {
            succ_dat[succ_cur[from.index()] as usize] = to;
            succ_cur[from.index()] += 1;
            pred_dat[pred_cur[to.index()] as usize] = from;
            pred_cur[to.index()] += 1;
        }

        let entry_refs = first_of[vivu.entry().index()].clone();

        Acfg {
            refs,
            ids,
            succ_off,
            succ_dat,
            pred_off,
            pred_dat,
            entry_refs,
            node_start,
            node_end,
        }
    }

    /// All references.
    #[inline]
    pub fn refs(&self) -> &[Reference] {
        &self.refs
    }

    /// Reference lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn reference(&self, id: RefId) -> Reference {
        self.refs[id.index()]
    }

    /// Execution-order successors of `id`.
    #[inline]
    pub fn succs(&self, id: RefId) -> &[RefId] {
        let i = id.index();
        &self.succ_dat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Execution-order predecessors of `id` (the successors in the paper's
    /// reversed `ACFG*`).
    #[inline]
    pub fn preds(&self, id: RefId) -> &[RefId] {
        let i = id.index();
        &self.pred_dat[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// References where execution starts (targets of the virtual source).
    #[inline]
    pub fn entry_refs(&self) -> &[RefId] {
        &self.entry_refs
    }

    /// References with no successors (sources of the virtual sink).
    pub fn exit_refs(&self) -> Vec<RefId> {
        (0..self.refs.len())
            .filter(|&i| self.succ_off[i] == self.succ_off[i + 1])
            .map(|i| RefId(i as u32))
            .collect()
    }

    /// A topological order of the references (execution order).
    #[inline]
    pub fn topo(&self) -> &[RefId] {
        &self.ids
    }

    /// References of a VIVU node, in instruction order.
    #[inline]
    pub fn refs_of_node(&self, n: NodeId) -> &[RefId] {
        let i = n.index();
        &self.ids[self.node_start[i] as usize..self.node_end[i] as usize]
    }

    /// Number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the program has no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn build(shape: Shape) -> (Program, VivuGraph, Acfg) {
        let p = shape.compile("t");
        let v = VivuGraph::build(&p).unwrap();
        let a = Acfg::build(&p, &v);
        (p, v, a)
    }

    #[test]
    fn straight_line_is_a_chain() {
        let (p, _, a) = build(Shape::code(8));
        assert_eq!(a.len(), p.instr_count());
        assert_eq!(a.entry_refs().len(), 1);
        assert_eq!(a.exit_refs().len(), 1);
        for r in a.refs() {
            assert!(a.succs(r.id).len() <= 1);
            assert!(a.preds(r.id).len() <= 1);
        }
    }

    #[test]
    fn loop_references_appear_twice() {
        let (p, _, a) = build(Shape::loop_(10, Shape::code(5)));
        // Loop header and body referenced in first and rest contexts.
        assert!(a.len() > p.instr_count());
        use std::collections::HashMap;
        let mut count: HashMap<rtpf_isa::InstrId, usize> = HashMap::new();
        for r in a.refs() {
            *count.entry(r.instr).or_default() += 1;
        }
        assert!(count.values().all(|&c| c <= 2));
        assert!(count.values().any(|&c| c == 2));
    }

    #[test]
    fn topo_respects_edges() {
        let (_, _, a) = build(Shape::loop_(
            4,
            Shape::if_else(1, Shape::code(3), Shape::code(2)),
        ));
        let pos: std::collections::HashMap<RefId, usize> =
            a.topo().iter().enumerate().map(|(i, &r)| (r, i)).collect();
        for r in a.refs() {
            for &s in a.succs(r.id) {
                assert!(pos[&r.id] < pos[&s]);
            }
        }
        assert_eq!(a.topo().len(), a.len());
    }

    #[test]
    fn merge_points_have_multiple_preds() {
        let (_, _, a) = build(Shape::if_else(1, Shape::code(3), Shape::code(2)));
        let merges = a.refs().iter().filter(|r| a.preds(r.id).len() >= 2).count();
        assert_eq!(merges, 1, "exactly the join after the diamond");
    }

    #[test]
    fn node_refs_partition_all_references() {
        let (_, v, a) = build(Shape::loop_(3, Shape::code(4)));
        let total: usize = (0..v.len())
            .map(|n| a.refs_of_node(crate::vivu::NodeId(n as u32)).len())
            .sum();
        assert_eq!(total, a.len());
    }
}
