//! Analysis errors.

use std::error::Error;
use std::fmt;

use rtpf_isa::{BlockId, ValidateError};

/// Error raised by WCET analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// The input program failed structural validation.
    InvalidProgram(ValidateError),
    /// The VIVU expansion exceeded the context budget (pathologically deep
    /// loop nesting).
    ContextExplosion {
        /// Number of contexts produced before giving up.
        contexts: usize,
    },
    /// The IPET instance was unexpectedly infeasible or cyclic.
    Ipet(String),
    /// A loop header lost its bound between validation and analysis.
    MissingBound(BlockId),
    /// The must/may classification fixpoint exceeded its iteration guard.
    /// The solver descends a finite lattice, so this indicates a broken
    /// transfer function or join, not a property of the input program —
    /// but callers get a typed stage failure instead of a panic.
    FixpointDiverged {
        /// Worklist evaluations performed in the diverging component
        /// before giving up.
        iterations: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            AnalysisError::ContextExplosion { contexts } => {
                write!(f, "VIVU produced {contexts} contexts, over budget")
            }
            AnalysisError::Ipet(msg) => write!(f, "IPET failed: {msg}"),
            AnalysisError::MissingBound(b) => write!(f, "missing loop bound at {b}"),
            AnalysisError::FixpointDiverged { iterations } => {
                write!(
                    f,
                    "classification fixpoint diverged after {iterations} evaluations"
                )
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for AnalysisError {
    fn from(e: ValidateError) -> Self {
        AnalysisError::InvalidProgram(e)
    }
}
