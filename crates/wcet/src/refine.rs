//! Per-set exact refinement behind the classify fixpoint (DESIGN.md §12).
//!
//! For every cache set holding a reference the cheap competitiveness-based
//! FIFO/tree-PLRU analysis left unclassified, this pass runs a focused
//! finite-state exploration over the VIVU context graph (with the loop
//! back edges restored): the least fixpoint of *sets of concrete per-set
//! policy states* ([`SetState`] — the exact FIFO insertion queue / PLRU
//! tree bits projected onto that one cache set), seeded cold at
//! predecessor-less nodes, unioned (and deduplicated) at join points, and
//! pushed through each node's touched-block signature exactly as the
//! concrete cache would execute it.
//!
//! The explored state sets over-approximate every state any bounded
//! concrete walk can reach at a node, so the verdict is sound: an
//! unclassified reference that hits in **every** explored in-state is
//! upgraded to always-hit, one that misses in every state to always-miss,
//! anything mixed stays unclassified. A per-node state budget
//! ([`RefineConfig::max_states`]) bounds the exploration; exceeding it
//! abandons the *whole* set — concluding from a partial exploration would
//! be unsound — and keeps the cheap classification for its references.
//!
//! The per-set explorations are completely independent — each reads only
//! the shared graph and touches only references mapping to its own set —
//! so they fan out across the solver's worker threads (the `threads` knob)
//! and their outcomes are applied sequentially in sorted set order, which
//! keeps the pass deterministic at any thread count.
//!
//! The pass runs deterministically after every classification (full and
//! incremental alike), so an incremental re-analysis still produces
//! bit-identical results to a from-scratch run.

use std::sync::atomic::{AtomicUsize, Ordering};

use rtpf_cache::{CacheConfig, Classification, RefineConfig, RefineMark, SetState};
use rtpf_isa::MemBlockId;

use crate::acfg::Acfg;
use crate::memo::NodeSig;
use crate::vivu::{NodeId, VivuGraph};

/// Outcome counters of one refinement pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RefineStats {
    /// Cache sets with at least one unclassified reference (exploration
    /// targets).
    pub sets_targeted: u32,
    /// Targeted sets abandoned because a node's state set outgrew the
    /// budget; their references keep the cheap classification.
    pub sets_exhausted: u32,
    /// References upgraded unclassified → always-hit.
    pub refined_hits: u32,
    /// References upgraded unclassified → always-miss.
    pub refined_misses: u32,
}

/// Read-only context shared by every per-set exploration.
struct Ctx<'a> {
    acfg: &'a Acfg,
    sigs: &'a [NodeSig],
    mem_block: &'a [MemBlockId],
    /// Snapshot of the cheap classification the upgrades are judged
    /// against; a set's exploration only reads entries of its own set.
    class: &'a [Classification],
    topo: &'a [NodeId],
    preds: &'a [Vec<u32>],
    succs: &'a [Vec<u32>],
    /// Flattened per-node access sequence (own block, then prefetch
    /// target, per reference — the order the concrete walk executes).
    accesses: &'a [Vec<MemBlockId>],
    /// Sorted set-index footprint per node, for quick "does this node
    /// touch set s" checks.
    footprint: &'a [Vec<u64>],
    policy: rtpf_cache::ReplacementPolicy,
    assoc: u32,
    n_sets: u64,
    budget: usize,
}

impl Ctx<'_> {
    #[inline]
    fn set_of(&self, b: MemBlockId) -> u64 {
        b.0 % self.n_sets
    }
}

/// What one set's exploration concluded. Applied to `class`/`marks`
/// sequentially, in sorted set order.
struct SetOutcome {
    exhausted: bool,
    /// `(reference index, upgraded classification)` pairs.
    refined: Vec<(usize, Classification)>,
    /// References examined without enough evidence to upgrade.
    examined: Vec<usize>,
}

/// Per-worker exploration scratch, node-indexed and reused across sets.
struct Scratch {
    out: Vec<Vec<SetState>>,
    pending: Vec<bool>,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            out: vec![Vec::new(); n],
            pending: vec![false; n],
        }
    }
}

/// Runs the exploration and verdict for one cache set. Pure with respect
/// to shared state: reads `ctx`, mutates only `scratch` and the returned
/// outcome.
fn explore_set(ctx: &Ctx<'_>, set: u64, scratch: &mut Scratch) -> SetOutcome {
    let mut outcome = SetOutcome {
        exhausted: false,
        refined: Vec::new(),
        examined: Vec::new(),
    };
    for o in &mut scratch.out {
        o.clear();
    }
    scratch.pending.fill(true);

    // Chaotic iteration in topological order: forward edges resolve
    // within a sweep, back edges re-arm their headers for the next
    // one. State sets only grow (the transfer distributes over
    // union), so the budget bounds termination.
    'fixpoint: loop {
        let mut progressed = false;
        for &node in ctx.topo {
            let i = node.index();
            if !std::mem::replace(&mut scratch.pending[i], false) {
                continue;
            }
            let mut ins: Vec<SetState> = Vec::new();
            if ctx.preds[i].is_empty() {
                ins.push(SetState::cold());
            } else {
                for &p in &ctx.preds[i] {
                    ins.extend(scratch.out[p as usize].iter().cloned());
                }
                ins.sort_unstable();
                ins.dedup();
                if ins.is_empty() {
                    continue; // not reached yet; a pred update re-arms us
                }
            }
            if ins.len() > ctx.budget {
                outcome.exhausted = true;
                break 'fixpoint;
            }
            if ctx.footprint[i].binary_search(&set).is_ok() {
                for st in &mut ins {
                    for &b in &ctx.accesses[i] {
                        if ctx.set_of(b) == set {
                            st.access(ctx.policy, ctx.assoc, b.0);
                        }
                    }
                }
                ins.sort_unstable();
                ins.dedup();
            }
            if ins != scratch.out[i] {
                scratch.out[i] = ins;
                for &s in &ctx.succs[i] {
                    scratch.pending[s as usize] = true;
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    if outcome.exhausted {
        for r in ctx.acfg.refs() {
            let ri = r.id.index();
            if ctx.class[ri] == Classification::Unclassified && ctx.set_of(ctx.mem_block[ri]) == set
            {
                outcome.examined.push(ri);
            }
        }
        return outcome;
    }

    // Verdict: replay every in-state through each node holding an
    // unclassified reference of this set. Unanimous outcomes upgrade;
    // anything mixed (or unreachable) stays cheap.
    for &node in ctx.topo {
        let i = node.index();
        let rids = ctx.acfg.refs_of_node(node);
        let sig = &ctx.sigs[i];
        let wanted = rids.iter().zip(sig.iter()).any(|(r, &(own, _))| {
            ctx.class[r.index()] == Classification::Unclassified && ctx.set_of(own) == set
        });
        if !wanted {
            continue;
        }
        let mut ins: Vec<SetState> = Vec::new();
        if ctx.preds[i].is_empty() {
            ins.push(SetState::cold());
        } else {
            for &p in &ctx.preds[i] {
                ins.extend(scratch.out[p as usize].iter().cloned());
            }
            ins.sort_unstable();
            ins.dedup();
        }
        let mut all_hit = vec![true; sig.len()];
        let mut all_miss = vec![true; sig.len()];
        for st0 in &ins {
            let mut st = st0.clone();
            for (j, &(own, pf)) in sig.iter().enumerate() {
                if ctx.set_of(own) == set {
                    if st.access(ctx.policy, ctx.assoc, own.0) {
                        all_miss[j] = false;
                    } else {
                        all_hit[j] = false;
                    }
                }
                if let Some(t) = pf {
                    if ctx.set_of(t) == set {
                        st.access(ctx.policy, ctx.assoc, t.0);
                    }
                }
            }
        }
        for (j, &r) in rids.iter().enumerate() {
            let ri = r.index();
            if ctx.class[ri] != Classification::Unclassified || ctx.set_of(sig[j].0) != set {
                continue;
            }
            if ins.is_empty() {
                // Unreachable in the exploration (hence in every
                // concrete walk): no evidence either way.
                outcome.examined.push(ri);
            } else if all_hit[j] {
                outcome.refined.push((ri, Classification::AlwaysHit));
            } else if all_miss[j] {
                outcome.refined.push((ri, Classification::AlwaysMiss));
            } else {
                outcome.examined.push(ri);
            }
        }
    }
    outcome
}

/// Refines `class` in place and reports what happened to each reference.
///
/// `sigs` are the per-node touched-block signatures of the classify pass
/// (own fetched block plus prefetch target per reference, in node-local
/// order) — exactly the access sequence a concrete walk executes at the
/// node. `mem_block` maps each reference to its fetched block. `threads`
/// bounds the worker pool the per-set explorations fan out on (`1` =
/// sequential in place); results are identical at any thread count.
///
/// The pass is a no-op (all marks [`RefineMark::Untouched`]) when
/// disabled, under LRU (the cheap domain is already exact), or when a
/// hardware next-line prefetcher is modelled (its folds are not part of
/// the concrete per-set replay).
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_classification(
    vivu: &VivuGraph,
    acfg: &Acfg,
    config: &CacheConfig,
    refine: RefineConfig,
    hw_next_line: Option<u32>,
    sigs: &[NodeSig],
    mem_block: &[MemBlockId],
    class: &mut [Classification],
    threads: usize,
) -> (Vec<RefineMark>, RefineStats) {
    let mut marks = vec![RefineMark::Untouched; class.len()];
    let mut stats = RefineStats::default();
    if !refine.applies_to(config.policy()) || hw_next_line.is_some() {
        return (marks, stats);
    }
    let n_sets = u64::from(config.n_sets());
    let set_of = |b: MemBlockId| b.0 % n_sets;

    // Sets to explore: every set with an unclassified reference. (Under
    // FIFO/PLRU all of these are sentinel-caused — `NcCause::Sentinel` —
    // since the may domain is unbounded; a future bounded-may policy
    // would order sentinel sets first here.)
    let mut targets: Vec<u64> = acfg
        .refs()
        .iter()
        .filter(|r| class[r.id.index()] == Classification::Unclassified)
        .map(|r| set_of(mem_block[r.id.index()]))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.is_empty() {
        return (marks, stats);
    }

    // VIVU adjacency with the loop back edges restored: the exploration
    // must cover arbitrarily many iterations, not just the peeled DAG.
    let n = vivu.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, out) in succs.iter_mut().enumerate() {
        for &s in vivu.succs(NodeId(i as u32)) {
            preds[s.index()].push(i as u32);
            out.push(s.0);
        }
    }
    for &(from, to) in vivu.back_edges() {
        preds[to.index()].push(from.0);
        succs[from.index()].push(to.0);
    }

    let mut accesses: Vec<Vec<MemBlockId>> = Vec::with_capacity(n);
    let mut footprint: Vec<Vec<u64>> = Vec::with_capacity(n);
    for sig in sigs.iter().take(n) {
        let mut acc = Vec::with_capacity(sig.len());
        for &(own, pf) in sig.iter() {
            acc.push(own);
            if let Some(t) = pf {
                acc.push(t);
            }
        }
        let mut fp: Vec<u64> = acc.iter().map(|&b| set_of(b)).collect();
        fp.sort_unstable();
        fp.dedup();
        accesses.push(acc);
        footprint.push(fp);
    }

    let ctx = Ctx {
        acfg,
        sigs,
        mem_block,
        class,
        topo: vivu.topo(),
        preds: &preds,
        succs: &succs,
        accesses: &accesses,
        footprint: &footprint,
        policy: config.policy(),
        assoc: config.assoc(),
        n_sets,
        budget: refine.max_states as usize,
    };

    let workers = threads.max(1).min(targets.len());
    let outcomes: Vec<SetOutcome> = if workers <= 1 {
        let mut scratch = Scratch::new(n);
        targets
            .iter()
            .map(|&set| explore_set(&ctx, set, &mut scratch))
            .collect()
    } else {
        // Fan the independent per-set fixpoints out over a scoped pool:
        // workers claim target indices from an atomic counter, and the
        // outcomes are re-sorted into target order before applying.
        let next = &AtomicUsize::new(0);
        let ctx = &ctx;
        let targets = &targets;
        let mut indexed: Vec<(usize, SetOutcome)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut scratch = Scratch::new(n);
                        let mut got: Vec<(usize, SetOutcome)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&set) = targets.get(k) else {
                                return got;
                            };
                            got.push((k, explore_set(ctx, set, &mut scratch)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("refine worker panicked"))
                .collect()
        });
        indexed.sort_unstable_by_key(|&(k, _)| k);
        indexed.into_iter().map(|(_, o)| o).collect()
    };

    for outcome in outcomes {
        stats.sets_targeted += 1;
        if outcome.exhausted {
            stats.sets_exhausted += 1;
            for ri in outcome.examined {
                marks[ri] = RefineMark::Examined;
            }
            continue;
        }
        for (ri, cl) in outcome.refined {
            class[ri] = cl;
            marks[ri] = RefineMark::Refined;
            match cl {
                Classification::AlwaysHit => stats.refined_hits += 1,
                Classification::AlwaysMiss => stats.refined_misses += 1,
                Classification::Unclassified => unreachable!("refinement never downgrades"),
            }
        }
        for ri in outcome.examined {
            marks[ri] = RefineMark::Examined;
        }
    }
    (marks, stats)
}

#[cfg(test)]
mod tests {
    use rtpf_cache::{
        CacheConfig, Classification, MemTiming, RefineConfig, RefineMark, ReplacementPolicy,
    };
    use rtpf_isa::shape::Shape;
    use rtpf_isa::Layout;

    use crate::analysis::WcetAnalysis;

    fn analyze(shape: &Shape, policy: ReplacementPolicy, refine: RefineConfig) -> WcetAnalysis {
        analyze_in(shape, policy, refine, CacheConfig::new(2, 16, 256).unwrap())
    }

    fn analyze_in(
        shape: &Shape,
        policy: ReplacementPolicy,
        refine: RefineConfig,
        geometry: CacheConfig,
    ) -> WcetAnalysis {
        let p = shape.clone().compile("refine-t");
        let cfg = geometry.with_policy(policy).unwrap();
        WcetAnalysis::analyze_refined(&p, Layout::of(&p), &cfg, &MemTiming::default(), refine)
            .unwrap()
    }

    #[test]
    fn refinement_upgrades_warm_loop_references_under_fifo_and_plru() {
        // A loop whose working set exactly fills the one 4-way set of a
        // 64 B cache: every rest-iteration reference concretely always
        // hits, but the competitiveness-reduced must analysis (FIFO at 1
        // effective way, tree-PLRU at log2(4)+1 = 3) loses the rotation
        // and leaves many unclassified. The exact exploration must
        // recover hits the cheap pass missed, and never lose precision.
        let shape = Shape::loop_(10, Shape::code(12));
        let geometry = CacheConfig::new(4, 16, 64).unwrap();
        for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Plru] {
            let off = analyze_in(&shape, policy, RefineConfig::off(), geometry);
            let on = analyze_in(&shape, policy, RefineConfig::on(), geometry);
            let (hit_off, _, unk_off) = off.classification_counts();
            let (hit_on, _, unk_on) = on.classification_counts();
            assert!(
                hit_on > hit_off,
                "{policy}: refinement found no extra hits ({hit_off} → {hit_on})"
            );
            assert!(unk_on < unk_off, "{policy}: unclassified did not shrink");
            assert!(
                on.tau_w() < off.tau_w(),
                "{policy}: extra always-hits must lower τ_w"
            );
            // The cheap view is preserved verbatim either way.
            for r in on.acfg().refs() {
                assert_eq!(on.cheap_classification(r.id), off.classification(r.id));
                match on.refine_mark(r.id) {
                    RefineMark::Untouched => {
                        assert_ne!(on.cheap_classification(r.id), Classification::Unclassified);
                    }
                    RefineMark::Examined => {
                        assert_eq!(on.classification(r.id), Classification::Unclassified);
                    }
                    RefineMark::Refined => {
                        assert_eq!(on.cheap_classification(r.id), Classification::Unclassified);
                        assert_ne!(on.classification(r.id), Classification::Unclassified);
                    }
                }
            }
            let stats = on.refine_stats();
            assert!(stats.sets_targeted > 0);
            assert_eq!(
                u64::from(stats.refined_hits) + u64::from(stats.refined_misses),
                on.acfg()
                    .refs()
                    .iter()
                    .filter(|r| on.refine_mark(r.id) == RefineMark::Refined)
                    .count() as u64
            );
            // With refinement off the stage must not have run at all.
            assert!(off
                .acfg()
                .refs()
                .iter()
                .all(|r| off.refine_mark(r.id) == RefineMark::Untouched));
            assert_eq!(*off.refine_stats(), super::RefineStats::default());
        }
    }

    #[test]
    fn parallel_refinement_matches_sequential() {
        // Multiple targeted sets (working set spans several cache sets),
        // so the parallel fan-out has real work to distribute. 1-thread
        // and 3-thread passes must agree bit for bit.
        let shape = Shape::seq([
            Shape::loop_(10, Shape::code(24)),
            Shape::if_else(1, Shape::code(12), Shape::code(8)),
        ]);
        let p = shape.compile("refine-par");
        let cfg = CacheConfig::new(2, 16, 128)
            .unwrap()
            .with_policy(ReplacementPolicy::Fifo)
            .unwrap();
        let timing = MemTiming::default();
        let seq = WcetAnalysis::analyze_parallel(
            &p,
            Layout::of(&p),
            &cfg,
            &timing,
            RefineConfig::on(),
            1,
        )
        .unwrap();
        let par = WcetAnalysis::analyze_parallel(
            &p,
            Layout::of(&p),
            &cfg,
            &timing,
            RefineConfig::on(),
            3,
        )
        .unwrap();
        assert_eq!(seq.tau_w(), par.tau_w());
        assert_eq!(seq.refine_stats(), par.refine_stats());
        for r in seq.acfg().refs() {
            assert_eq!(seq.classification(r.id), par.classification(r.id));
            assert_eq!(seq.refine_mark(r.id), par.refine_mark(r.id));
        }
    }

    #[test]
    fn lru_analysis_is_untouched_by_refinement() {
        // LRU's abstract domain is exact; the stage must not run, and the
        // result must be bit-identical with refinement on or off.
        let shape = Shape::seq([
            Shape::code(12),
            Shape::loop_(6, Shape::if_else(1, Shape::code(8), Shape::code(4))),
        ]);
        let off = analyze(&shape, ReplacementPolicy::Lru, RefineConfig::off());
        let on = analyze(&shape, ReplacementPolicy::Lru, RefineConfig::on());
        assert_eq!(on.tau_w(), off.tau_w());
        for r in on.acfg().refs() {
            assert_eq!(on.classification(r.id), off.classification(r.id));
            assert_eq!(on.refine_mark(r.id), RefineMark::Untouched);
        }
        assert_eq!(*on.refine_stats(), super::RefineStats::default());
    }

    #[test]
    fn a_starved_budget_falls_back_to_the_cheap_result() {
        let shape = Shape::loop_(10, Shape::if_else(2, Shape::code(10), Shape::code(6)));
        let off = analyze(&shape, ReplacementPolicy::Fifo, RefineConfig::off());
        let starved = analyze(
            &shape,
            ReplacementPolicy::Fifo,
            RefineConfig {
                enabled: true,
                max_states: 0,
            },
        );
        // Budget 0: every targeted set exhausts immediately; the cheap
        // classification survives untouched and every NC target is marked
        // examined (not upgraded).
        assert_eq!(starved.tau_w(), off.tau_w());
        let stats = starved.refine_stats();
        assert!(stats.sets_targeted > 0);
        assert_eq!(stats.sets_exhausted, stats.sets_targeted);
        assert_eq!(stats.refined_hits + stats.refined_misses, 0);
        for r in starved.acfg().refs() {
            assert_eq!(starved.classification(r.id), off.classification(r.id));
            match starved.classification(r.id) {
                Classification::Unclassified => {
                    assert_eq!(starved.refine_mark(r.id), RefineMark::Examined);
                }
                _ => assert_eq!(starved.refine_mark(r.id), RefineMark::Untouched),
            }
        }
    }

    #[test]
    fn incremental_reanalysis_stays_exact_under_refinement() {
        use rtpf_isa::InstrKind;
        // The optimizer's hot path: insert a prefetch, re-analyse
        // incrementally, and demand bit-identical results to a
        // from-scratch refined analysis (debug builds also cross-check
        // inside `reanalyze_after_insert` itself).
        let cfg = CacheConfig::new(2, 16, 128)
            .unwrap()
            .with_policy(ReplacementPolicy::Fifo)
            .unwrap();
        let timing = MemTiming::default();
        let p1 = Shape::seq([Shape::code(6), Shape::loop_(8, Shape::code(12))]).compile("ri");
        let a1 = WcetAnalysis::analyze(&p1, &cfg, &timing).unwrap();

        let mut p2 = p1.clone();
        let b0 = p2.entry();
        let target = p2.block(b0).instrs()[4];
        p2.insert_instr(b0, 1, InstrKind::Prefetch { target })
            .unwrap();
        let anchor = p2.block(b0).instrs()[0];
        let layout2 = Layout::anchored(&p2, anchor, a1.layout().addr(anchor));

        let inc = a1.reanalyze_after_insert(&p2, layout2.clone()).unwrap();
        let full = WcetAnalysis::analyze_with_layout(&p2, layout2, &cfg, &timing).unwrap();
        assert_eq!(inc.tau_w(), full.tau_w());
        assert_eq!(inc.classification_counts(), full.classification_counts());
        for r in inc.acfg().refs() {
            assert_eq!(inc.classification(r.id), full.classification(r.id));
            assert_eq!(
                inc.cheap_classification(r.id),
                full.cheap_classification(r.id)
            );
            assert_eq!(inc.refine_mark(r.id), full.refine_mark(r.id));
        }
    }
}
