//! Property test: incremental re-analysis after a prefetch insertion is
//! indistinguishable from a from-scratch analysis — same `τ_w`, same
//! per-reference classifications and WCET counts — across random program
//! shapes, random insertion points, and the paper's k1..k36 cache
//! configurations.

use proptest::prelude::*;

use rtpf_cache::{CacheConfig, MemTiming};
use rtpf_isa::shape::Shape;
use rtpf_isa::{InstrId, InstrKind, Layout, Program};
use rtpf_wcet::WcetAnalysis;

/// Random structured programs: bounded depth, bounded loop bounds.
fn shapes() -> impl Strategy<Value = Shape> {
    let leaf = (1u32..30).prop_map(Shape::code);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::seq),
            (0u32..3, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Shape::if_else(c, a, b)),
            (0u32..3, inner.clone()).prop_map(|(c, a)| Shape::if_then(c, a)),
            (1u32..8, inner.clone()).prop_map(|(n, b)| Shape::loop_(n, b)),
        ]
    })
}

fn all_instrs(p: &Program) -> Vec<InstrId> {
    p.block_ids()
        .flat_map(|b| p.block(b).instrs().to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reanalyze_after_insert_equals_from_scratch(
        shape in shapes(),
        ki in 0usize..36,
        anchor_sel in 0usize..10_000,
        target_sel in 0usize..10_000,
    ) {
        let timing = MemTiming::default();
        let p1 = shape.compile("prop");
        let (_, config) = CacheConfig::paper_configs().swap_remove(ki);
        let a1 = WcetAnalysis::analyze(&p1, &config, &timing).expect("base analysis");

        // Insert a prefetch of a random target before a random anchor,
        // relocating exactly like the optimizer does.
        let instrs = all_instrs(&p1);
        let anchor = instrs[anchor_sel % instrs.len()];
        let target = instrs[target_sel % instrs.len()];
        let mut p2 = p1.clone();
        let bb = p2.block_of(anchor);
        let pos = p2.pos_in_block(anchor);
        p2.insert_instr(bb, pos, InstrKind::Prefetch { target })
            .expect("insertion at an existing position");
        let layout2 = Layout::anchored(&p2, anchor, a1.layout().addr(anchor));

        let inc = a1
            .reanalyze_after_insert(&p2, layout2.clone())
            .expect("incremental analysis");
        let full = WcetAnalysis::analyze_with_layout(&p2, layout2, &config, &timing)
            .expect("from-scratch analysis");

        prop_assert_eq!(inc.tau_w(), full.tau_w());
        prop_assert_eq!(inc.wcet_misses(), full.wcet_misses());
        prop_assert_eq!(inc.wcet_accesses(), full.wcet_accesses());
        prop_assert_eq!(inc.classification_counts(), full.classification_counts());
        for r in full.acfg().refs() {
            prop_assert_eq!(inc.classification(r.id), full.classification(r.id));
            prop_assert_eq!(inc.mem_block(r.id), full.mem_block(r.id));
            prop_assert_eq!(inc.n_w(r.id), full.n_w(r.id));
            prop_assert_eq!(inc.t_w(r.id), full.t_w(r.id));
        }
        prop_assert_eq!(inc.profile().incremental_analyses, 1);
    }

    #[test]
    fn reanalyze_chains_across_multiple_insertions(
        shape in shapes(),
        ki in 0usize..36,
        sels in prop::collection::vec((0usize..10_000, 0usize..10_000), 2..5),
    ) {
        // Repeated incremental steps (each seeded by the previous
        // incremental result) must stay glued to the from-scratch truth —
        // this is exactly the optimizer's accept path.
        let timing = MemTiming::default();
        let mut p = shape.compile("prop");
        let (_, config) = CacheConfig::paper_configs().swap_remove(ki);
        let mut cur = WcetAnalysis::analyze(&p, &config, &timing).expect("base analysis");
        for (anchor_sel, target_sel) in sels {
            let instrs = all_instrs(&p);
            let anchor = instrs[anchor_sel % instrs.len()];
            let target = instrs[target_sel % instrs.len()];
            let mut p2 = p.clone();
            let bb = p2.block_of(anchor);
            let pos = p2.pos_in_block(anchor);
            p2.insert_instr(bb, pos, InstrKind::Prefetch { target })
                .expect("insertion at an existing position");
            let layout2 = Layout::anchored(&p2, anchor, cur.layout().addr(anchor));
            let inc = cur
                .reanalyze_after_insert(&p2, layout2.clone())
                .expect("incremental analysis");
            let full = WcetAnalysis::analyze_with_layout(&p2, layout2, &config, &timing)
                .expect("from-scratch analysis");
            prop_assert_eq!(inc.tau_w(), full.tau_w());
            prop_assert_eq!(inc.classification_counts(), full.classification_counts());
            p = p2;
            cur = inc;
        }
    }
}
