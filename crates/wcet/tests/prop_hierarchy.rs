//! Property tests for the two-level hierarchy analysis.
//!
//! Pins the three load-bearing facts of the Hardy & Puaut composition:
//! the single-level hierarchy is bit-identical to the historical
//! single-level analysis; an L1 always-hit reference contributes zero L2
//! accesses to the abstract update (its access classification is
//! `Never`); and the two-level bound never exceeds the single-level one
//! (an L2 can only absorb misses, not create them).

use proptest::prelude::*;

use rtpf_cache::{
    CacheAccessClassification, CacheConfig, Classification, HierarchyConfig, MemTiming,
};
use rtpf_isa::shape::Shape;
use rtpf_isa::{InstrId, InstrKind, Layout, Program};
use rtpf_wcet::WcetAnalysis;

/// Random structured programs: bounded depth, bounded loop bounds.
fn shapes() -> impl Strategy<Value = Shape> {
    let leaf = (1u32..30).prop_map(Shape::code);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::seq),
            (0u32..3, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Shape::if_else(c, a, b)),
            (0u32..3, inner.clone()).prop_map(|(c, a)| Shape::if_then(c, a)),
            (1u32..8, inner.clone()).prop_map(|(n, b)| Shape::loop_(n, b)),
        ]
    })
}

/// L1 geometries small enough to generate real misses on the generated
/// programs, paired with a strictly larger same-block-size L2.
fn hierarchies() -> impl Strategy<Value = HierarchyConfig> {
    (0usize..4, 0usize..3).prop_map(|(l1_sel, l2_mult)| {
        let l1s = [
            CacheConfig::new(1, 16, 128).unwrap(),
            CacheConfig::new(2, 16, 256).unwrap(),
            CacheConfig::new(1, 32, 256).unwrap(),
            CacheConfig::new(4, 16, 512).unwrap(),
        ];
        let l1 = l1s[l1_sel];
        let l2 = CacheConfig::new(
            4,
            l1.block_bytes(),
            l1.capacity_bytes() << (l2_mult as u32 + 1),
        )
        .unwrap();
        HierarchyConfig::two_level(l1, l2).unwrap()
    })
}

fn timing() -> MemTiming {
    MemTiming::with_miss_penalty(20).with_l2_hit(8)
}

fn all_instrs(p: &Program) -> Vec<InstrId> {
    p.block_ids()
        .flat_map(|b| p.block(b).instrs().to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degenerate_hierarchy_is_bit_identical_to_single_level(
        shape in shapes(),
        ki in 0usize..36,
    ) {
        let timing = MemTiming::default();
        let p = shape.compile("prop");
        let (_, config) = CacheConfig::paper_configs().swap_remove(ki);
        let single = WcetAnalysis::analyze(&p, &config, &timing).expect("single-level");
        let hier = WcetAnalysis::analyze_hierarchy(
            &p,
            Layout::of(&p),
            &HierarchyConfig::l1_only(config),
            &timing,
            Default::default(),
            1,
        )
        .expect("degenerate hierarchy");
        prop_assert_eq!(single.tau_w(), hier.tau_w());
        prop_assert_eq!(single.wcet_misses(), hier.wcet_misses());
        prop_assert_eq!(single.classification_counts(), hier.classification_counts());
        for r in single.acfg().refs() {
            prop_assert_eq!(single.classification(r.id), hier.classification(r.id));
            prop_assert_eq!(single.t_w(r.id), hier.t_w(r.id));
            prop_assert_eq!(single.n_w(r.id), hier.n_w(r.id));
            prop_assert_eq!(hier.l2_classification(r.id), None);
            prop_assert_eq!(hier.l2_cac(r.id), None);
        }
    }

    #[test]
    fn l1_always_hit_references_never_access_l2(
        shape in shapes(),
        hierarchy in hierarchies(),
    ) {
        let p = shape.compile("prop");
        let a = WcetAnalysis::analyze_hierarchy(
            &p,
            Layout::of(&p),
            &hierarchy,
            &timing(),
            Default::default(),
            1,
        )
        .expect("two-level analysis");
        for r in a.acfg().refs() {
            let cac = a.l2_cac(r.id).expect("two-level hierarchy has a CAC");
            match a.classification(r.id) {
                Classification::AlwaysHit => {
                    // The filter: an L1 always-hit contributes zero L2
                    // accesses to the abstract update.
                    prop_assert_eq!(cac, CacheAccessClassification::Never);
                    prop_assert!(!cac.may_access());
                    // And its cost is the L1 hit, regardless of L2.
                    prop_assert_eq!(a.t_w(r.id), timing().hit_cycles);
                }
                Classification::AlwaysMiss => {
                    prop_assert_eq!(cac, CacheAccessClassification::Always);
                }
                Classification::Unclassified => {
                    prop_assert_eq!(cac, CacheAccessClassification::Uncertain);
                }
            }
        }
    }

    #[test]
    fn l2_never_worsens_the_single_level_bound(
        shape in shapes(),
        hierarchy in hierarchies(),
    ) {
        let p = shape.compile("prop");
        let t = timing();
        let single = WcetAnalysis::analyze(&p, hierarchy.l1(), &t).expect("single-level");
        let hier = WcetAnalysis::analyze_hierarchy(
            &p,
            Layout::of(&p),
            &hierarchy,
            &t,
            Default::default(),
            1,
        )
        .expect("two-level analysis");
        // Per reference, charging an L2 hit can only lower the bound.
        for r in single.acfg().refs() {
            prop_assert!(hier.t_w(r.id) <= single.t_w(r.id));
        }
        prop_assert!(hier.tau_w() <= single.tau_w());
    }

    #[test]
    fn hierarchy_reanalyze_after_insert_equals_from_scratch(
        shape in shapes(),
        hierarchy in hierarchies(),
        anchor_sel in 0usize..10_000,
        target_sel in 0usize..10_000,
    ) {
        let t = timing();
        let p1 = shape.compile("prop");
        let a1 = WcetAnalysis::analyze_hierarchy(
            &p1,
            Layout::of(&p1),
            &hierarchy,
            &t,
            Default::default(),
            1,
        )
        .expect("base analysis");

        let instrs = all_instrs(&p1);
        let anchor = instrs[anchor_sel % instrs.len()];
        let target = instrs[target_sel % instrs.len()];
        let mut p2 = p1.clone();
        let bb = p2.block_of(anchor);
        let pos = p2.pos_in_block(anchor);
        p2.insert_instr(bb, pos, InstrKind::Prefetch { target })
            .expect("insertion at an existing position");
        let layout2 = Layout::anchored(&p2, anchor, a1.layout().addr(anchor));

        let inc = a1
            .reanalyze_after_insert(&p2, layout2.clone())
            .expect("incremental analysis");
        let full = WcetAnalysis::analyze_hierarchy(
            &p2,
            layout2,
            &hierarchy,
            &t,
            Default::default(),
            1,
        )
        .expect("from-scratch analysis");

        prop_assert_eq!(inc.tau_w(), full.tau_w());
        prop_assert_eq!(inc.classification_counts(), full.classification_counts());
        for r in full.acfg().refs() {
            prop_assert_eq!(inc.classification(r.id), full.classification(r.id));
            prop_assert_eq!(inc.l2_classification(r.id), full.l2_classification(r.id));
            prop_assert_eq!(inc.l2_cac(r.id), full.l2_cac(r.id));
            prop_assert_eq!(inc.t_w(r.id), full.t_w(r.id));
        }
    }
}
