//! Thread-count invariance of the full analysis: `analyze_parallel` at
//! any worker count must be indistinguishable from the sequential run —
//! same `τ_w`, same per-reference classifications, marks and WCET counts,
//! same deterministic work counters — across the benchmark suite, the
//! paper's Table 2 geometries, and all three replacement policies.
//!
//! This is the executable form of the DESIGN.md §13 argument: the must
//! and may fixpoints are extremal and therefore unique, each SCC is
//! solved by exactly one worker with a deterministic priority worklist,
//! and cross-SCC inputs are published write-once — so chaotic scheduling
//! of ready SCCs cannot change a single output byte.

use rtpf_cache::{CacheConfig, MemTiming, RefineConfig, ReplacementPolicy};
use rtpf_isa::Layout;
use rtpf_wcet::WcetAnalysis;

/// Cheap-but-diverse suite slice: branchy, loop-nest and state-machine
/// shapes spanning small and large reference footprints.
const PROGRAMS: [&str; 6] = ["bs", "crc", "fft1", "insertsort", "matmult", "statemate"];

/// Geometry extremes plus mid-grid points of Table 2 (index into
/// `paper_configs`): direct-mapped/small, high-assoc/large, and the
/// middle of the grid where SCCs are plentiful.
const CONFIG_IDX: [usize; 6] = [0, 7, 13, 20, 28, 35];

fn assert_same(
    name: &str,
    k: usize,
    policy: ReplacementPolicy,
    seq: &WcetAnalysis,
    par: &WcetAnalysis,
) {
    let ctx = format!("{name} k{} {policy}", k + 1);
    assert_eq!(seq.tau_w(), par.tau_w(), "tau_w diverged for {ctx}");
    assert_eq!(
        seq.classification_counts(),
        par.classification_counts(),
        "classification counts diverged for {ctx}"
    );
    assert_eq!(
        seq.wcet_misses(),
        par.wcet_misses(),
        "WCET misses diverged for {ctx}"
    );
    for r in seq.acfg().refs() {
        assert_eq!(
            seq.classification(r.id),
            par.classification(r.id),
            "classification of {:?} diverged for {ctx}",
            r.id
        );
        assert_eq!(
            seq.cheap_classification(r.id),
            par.cheap_classification(r.id),
            "cheap classification of {:?} diverged for {ctx}",
            r.id
        );
        assert_eq!(
            seq.refine_mark(r.id),
            par.refine_mark(r.id),
            "refine mark of {:?} diverged for {ctx}",
            r.id
        );
        assert_eq!(seq.mem_block(r.id), par.mem_block(r.id));
        assert_eq!(seq.n_w(r.id), par.n_w(r.id));
        assert_eq!(seq.t_w(r.id), par.t_w(r.id));
    }
    assert_eq!(
        seq.refine_stats(),
        par.refine_stats(),
        "refinement stats diverged for {ctx}"
    );
    // The eval/memo-hit *split* is racy under a shared memo, but the sum
    // (work per node) and the pop count are deterministic.
    let sp = seq.profile();
    let pp = par.profile();
    assert_eq!(
        sp.fixpoint_evals + sp.memo_hits,
        pp.fixpoint_evals + pp.memo_hits,
        "total node evaluations diverged for {ctx}"
    );
    assert_eq!(
        sp.states_interned + sp.states_fresh,
        pp.states_interned + pp.states_fresh,
        "total interner traffic diverged for {ctx}"
    );
}

#[test]
fn parallel_analysis_matches_sequential_across_suite_and_policies() {
    let timing = MemTiming::default();
    let configs = CacheConfig::paper_configs();
    for name in PROGRAMS {
        let b = rtpf_suite::by_name(name).expect("suite program");
        for &ki in &CONFIG_IDX {
            let (_, geo) = &configs[ki];
            for policy in ReplacementPolicy::ALL {
                let config = geo.with_policy(policy).expect("Table 2 supports policy");
                let seq = WcetAnalysis::analyze_parallel(
                    &b.program,
                    Layout::of(&b.program),
                    &config,
                    &timing,
                    RefineConfig::on(),
                    1,
                )
                .expect("sequential analysis");
                for threads in [2, 3] {
                    let par = WcetAnalysis::analyze_parallel(
                        &b.program,
                        Layout::of(&b.program),
                        &config,
                        &timing,
                        RefineConfig::on(),
                        threads,
                    )
                    .expect("parallel analysis");
                    assert_same(name, ki, policy, &seq, &par);
                }
            }
        }
    }
}
