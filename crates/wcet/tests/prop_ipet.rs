//! Property test: the longest-path IPET fast path agrees with the
//! general ILP encoding on random structured programs — the equivalence
//! the whole analysis pipeline rests on.

use proptest::prelude::*;

use rtpf_isa::shape::Shape;
use rtpf_wcet::{ipet, VivuGraph};

fn shapes() -> impl Strategy<Value = Shape> {
    let leaf = (1u32..12).prop_map(Shape::code);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Shape::seq),
            (0u32..2, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Shape::if_else(c, a, b)),
            (1u32..6, inner).prop_map(|(n, b)| Shape::loop_(n, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dag_and_ilp_ipet_agree(shape in shapes()) {
        let p = shape.compile("prop");
        let v = VivuGraph::build(&p).expect("builds");
        let w: Vec<u64> = v
            .nodes()
            .iter()
            .map(|n| p.block(n.block).len() as u64 * n.mult)
            .collect();
        let dag = ipet::solve_dag(&v, &w).expect("dag solves");
        let ilp = ipet::solve_ilp(&v, &w).expect("ilp solves");
        prop_assert_eq!(dag.tau_w, ilp);
        // n_w is the multiplicity on-path and zero off-path.
        for n in v.nodes() {
            if dag.on_path[n.id.index()] {
                prop_assert_eq!(dag.n_w[n.id.index()], n.mult);
            } else {
                prop_assert_eq!(dag.n_w[n.id.index()], 0);
            }
        }
    }

    #[test]
    fn vivu_multiset_preserves_instructions(shape in shapes()) {
        // Every instruction appears in ≥ 1 context; contexts are bounded
        // by 2^depth; the graph is acyclic over its forward edges.
        let p = shape.compile("prop");
        let v = VivuGraph::build(&p).expect("builds");
        let mut seen = vec![0usize; p.block_count()];
        for n in v.nodes() {
            seen[n.block.index()] += 1;
        }
        for b in p.block_ids() {
            prop_assert!(seen[b.index()] >= 1, "{b} lost by VIVU");
        }
        // Topological order covers every node exactly once.
        prop_assert_eq!(v.topo().len(), v.len());
    }
}
