//! Policy-generic soundness properties.
//!
//! The cache abstraction is generic over the replacement policy; FIFO
//! and tree-PLRU run their must/may/persistence domains through
//! relative-competitiveness reductions to LRU (DESIGN.md §10). Those
//! reductions are allowed to lose precision but never soundness, so the
//! property is the same for every policy:
//!
//! * the abstract classifier never reports *always-hit* where the
//!   concrete policy misses (RTPF020), nor *always-miss* where it hits
//!   (RTPF022) — over sampled suite programs × Table 2 configurations;
//! * conversely, a deliberately broken classifier is still caught under
//!   every policy, proving the concrete walks actually exercise the
//!   configured policy rather than silently falling back to LRU.

use proptest::prelude::*;

use rtpf_audit::{
    audit_soundness, audit_soundness_with, Code, DiagnosticSink, SeverityConfig, SoundnessOptions,
};
use rtpf_cache::{CacheConfig, Classification, MemTiming, ReplacementPolicy};

/// The CI policy: `--deny warnings`.
fn deny_warnings() -> SeverityConfig {
    let mut c = SeverityConfig::new();
    c.deny_warnings = true;
    c
}

fn fired(sink: &DiagnosticSink, code: Code) -> bool {
    sink.diagnostics().iter().any(|d| d.code == code)
}

fn policy_config(ki: usize, poli: usize) -> CacheConfig {
    let (_, config) = CacheConfig::paper_configs()[ki].clone();
    config
        .with_policy(ReplacementPolicy::ALL[poli])
        .expect("Table 2 associativities support every policy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampled (benchmark, configuration, policy) triples classify
    /// soundly: the concrete cross-check, walking the exact configured
    /// policy, finds zero contradictions.
    #[test]
    fn every_policy_classifies_soundly(
        pi in 0usize..37,
        ki in 0usize..36,
        poli in 0usize..3,
    ) {
        let b = &rtpf_suite::catalog()[pi];
        let config = policy_config(ki, poli);
        let mut sink = DiagnosticSink::new(deny_warnings());
        let timing = MemTiming::default();
        let opts = SoundnessOptions { walks: 4, ..SoundnessOptions::default() };
        let sum = audit_soundness(&b.program, &config, &timing, &mut sink, &opts)
            .expect("suite program analyses");
        prop_assert_eq!(
            sum.unsound, 0,
            "{} under {}: {}", b.name, config.policy(), sink.render_text()
        );
        prop_assert!(!sink.has_denials(), "{}:\n{}", b.name, sink.render_text());
    }

    /// An everything-is-always-hit classifier is caught under every
    /// policy: the first fetch of a cold cache misses no matter how the
    /// sets are managed, and the walks use the configured policy.
    #[test]
    fn broken_classifier_is_caught_under_every_policy(
        pi in 0usize..37,
        ki in 0usize..36,
        poli in 0usize..3,
    ) {
        let b = &rtpf_suite::catalog()[pi];
        let config = policy_config(ki, poli);
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let timing = MemTiming::default();
        let opts = SoundnessOptions { walks: 2, ..SoundnessOptions::default() };
        audit_soundness_with(&b.program, &config, &timing, &mut sink, &opts, |_, _| {
            Classification::AlwaysHit
        })
        .expect("suite program analyses");
        prop_assert!(
            fired(&sink, Code::UnsoundAlwaysHit),
            "{} under {} not caught", b.name, config.policy()
        );
        prop_assert!(sink.has_denials());
    }
}
