//! Property tests for the audit subsystem.
//!
//! Two families:
//!
//! 1. **Cleanliness** — every suite benchmark audits clean at deny level
//!    (with warnings promoted to deny, as CI runs it) under sampled paper
//!    cache configurations. The release CI job covers the full 37 × 36
//!    cross product; the proptest here keeps a sampled version in the
//!    debug test run.
//! 2. **Injected corruptions** — each documented defect class (dropped
//!    edge, zeroed or missing loop bound, misclassified access, dangling
//!    prefetch target) is caught by exactly the RTPF0xx code the catalog
//!    promises.

use proptest::prelude::*;

use rtpf_audit::{
    audit_ir, audit_soundness, audit_soundness_with, Code, DiagnosticSink, SeverityConfig,
    SoundnessOptions,
};
use rtpf_cache::{CacheConfig, Classification, MemTiming};
use rtpf_isa::{EdgeKind, InstrKind, Program};

/// The CI policy: `--deny warnings`.
fn deny_warnings() -> SeverityConfig {
    let mut c = SeverityConfig::new();
    c.deny_warnings = true;
    c
}

fn fired(sink: &DiagnosticSink, code: Code) -> bool {
    sink.diagnostics().iter().any(|d| d.code == code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampled (benchmark, configuration) pairs are clean at deny level:
    /// IR lints raise nothing above note, and the concrete cross-check
    /// finds no unsound classification.
    #[test]
    fn suite_audits_clean_at_deny_level(pi in 0usize..37, ki in 0usize..36) {
        let b = &rtpf_suite::catalog()[pi];
        let (_, config) = CacheConfig::paper_configs()[ki].clone();
        let mut sink = DiagnosticSink::new(deny_warnings());
        audit_ir(&b.program, &mut sink);
        let timing = MemTiming::default();
        let opts = SoundnessOptions { walks: 4, ..SoundnessOptions::default() };
        audit_soundness(&b.program, &config, &timing, &mut sink, &opts)
            .expect("suite program analyses");
        prop_assert!(!sink.has_denials(), "{}:\n{}", b.name, sink.render_text());
    }

    /// A classifier that upgrades everything to always-hit is caught on
    /// every benchmark under every sampled configuration: the first fetch
    /// of a cold cache always misses concretely.
    #[test]
    fn broken_classifier_is_always_caught(pi in 0usize..37, ki in 0usize..36) {
        let b = &rtpf_suite::catalog()[pi];
        let (_, config) = CacheConfig::paper_configs()[ki].clone();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let timing = MemTiming::default();
        let opts = SoundnessOptions { walks: 2, ..SoundnessOptions::default() };
        audit_soundness_with(&b.program, &config, &timing, &mut sink, &opts, |_, _| {
            Classification::AlwaysHit
        })
        .expect("suite program analyses");
        prop_assert!(fired(&sink, Code::UnsoundAlwaysHit), "{} not caught", b.name);
        prop_assert!(sink.has_denials());
    }

    /// Zeroing the bound of any loop in any benchmark fires RTPF004.
    #[test]
    fn zeroed_loop_bound_is_caught(pi in 0usize..37) {
        let b = &rtpf_suite::catalog()[pi];
        let Some((&header, _)) = b.program.loop_bounds().iter().next() else {
            return Ok(()); // loop-free benchmark: nothing to corrupt
        };
        let mut p = b.program.clone();
        p.set_loop_bound(header, 0).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        audit_ir(&p, &mut sink);
        prop_assert!(fired(&sink, Code::ZeroLoopBound), "{}:\n{}", b.name, sink.render_text());
        prop_assert!(sink.has_denials());
    }
}

/// A two-armed diamond with an optional extra block; `drop_edge` omits
/// the edge into the second arm, leaving it unreachable.
fn diamond(drop_edge: bool) -> Program {
    let mut p = Program::new("diamond");
    let e = p.entry();
    let a = p.add_block();
    let b = p.add_block();
    let x = p.add_block();
    for blk in [e, a, b, x] {
        p.push_instr(blk, InstrKind::Compute(0)).unwrap();
    }
    p.push_instr(e, InstrKind::Branch).unwrap();
    p.add_edge(e, a, EdgeKind::Fallthrough).unwrap();
    if !drop_edge {
        p.add_edge(e, b, EdgeKind::Taken).unwrap();
        p.add_edge(b, x, EdgeKind::Taken).unwrap();
    }
    p.add_edge(a, x, EdgeKind::Fallthrough).unwrap();
    p
}

#[test]
fn dropped_edge_is_caught_as_unreachable() {
    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    audit_ir(&diamond(false), &mut sink);
    assert!(!fired(&sink, Code::UnreachableBlock));
    assert!(!sink.has_denials(), "{}", sink.render_text());

    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    audit_ir(&diamond(true), &mut sink);
    assert!(fired(&sink, Code::UnreachableBlock));
    assert!(sink.has_denials());
}

#[test]
fn dropped_exit_edge_is_caught_as_no_exit() {
    // entry → h ⇄ h body cycle with no way out.
    let mut p = Program::new("noexit");
    let e = p.entry();
    let h = p.add_block();
    p.push_instr(e, InstrKind::Compute(0)).unwrap();
    p.push_instr(h, InstrKind::Branch).unwrap();
    p.add_edge(e, h, EdgeKind::Fallthrough).unwrap();
    p.add_edge(h, h, EdgeKind::Taken).unwrap();
    p.set_loop_bound(h, 4).unwrap();
    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    audit_ir(&p, &mut sink);
    assert!(fired(&sink, Code::NoExit), "{}", sink.render_text());
    assert!(sink.has_denials());
}

#[test]
fn missing_loop_bound_is_caught() {
    // A structurally fine self-loop whose bound was never recorded.
    let mut p = Program::new("nobound");
    let e = p.entry();
    let h = p.add_block();
    let x = p.add_block();
    p.push_instr(e, InstrKind::Compute(0)).unwrap();
    p.push_instr(h, InstrKind::Branch).unwrap();
    p.push_instr(x, InstrKind::Compute(1)).unwrap();
    p.add_edge(e, h, EdgeKind::Fallthrough).unwrap();
    p.add_edge(h, h, EdgeKind::Taken).unwrap();
    p.add_edge(h, x, EdgeKind::Fallthrough).unwrap();
    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    audit_ir(&p, &mut sink);
    assert!(
        fired(&sink, Code::MissingLoopBound),
        "{}",
        sink.render_text()
    );
    assert!(sink.has_denials());
}

#[test]
fn misclassified_single_access_is_caught() {
    // Flip exactly one genuinely-missing reference to always-hit; the
    // cross-check must localize it.
    let b = rtpf_suite::by_name("crc").expect("crc in suite");
    let (_, config) = CacheConfig::paper_configs()[0].clone();
    let timing = MemTiming::default();
    let opts = SoundnessOptions::default();
    let mut flipped = std::cell::Cell::new(false);
    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    audit_soundness_with(&b.program, &config, &timing, &mut sink, &opts, |_, c| {
        if !flipped.get() && c == Classification::AlwaysMiss {
            flipped.set(true);
            Classification::AlwaysHit
        } else {
            c
        }
    })
    .unwrap();
    let flipped = flipped.get_mut();
    assert!(
        *flipped,
        "crc must have an always-miss reference to corrupt"
    );
    assert!(
        fired(&sink, Code::UnsoundAlwaysHit),
        "{}",
        sink.render_text()
    );
    assert!(sink.has_denials());
}
