//! IR lints: structural checks on a [`Program`] and its layout.
//!
//! Unlike [`Program::validate`], which stops at the first defect, the lint
//! pass sweeps the whole program and reports every finding through the
//! [`DiagnosticSink`], so a corrupted input yields its complete defect
//! list in one run.

use std::collections::HashSet;

use rtpf_isa::dom::Dominators;
use rtpf_isa::loops::LoopForest;
use rtpf_isa::{BlockId, InstrId, InstrKind, IsaError, Layout, Program, INSTR_BYTES};

use crate::diag::{Code, DiagnosticSink, Span};

/// Runs every IR lint on `p`, reporting findings into `sink`.
///
/// The pass is total: it works on programs that `validate` would reject,
/// so it can describe *all* the ways a corrupted program is broken.
pub fn audit_ir(p: &Program, sink: &mut DiagnosticSink) {
    let name = p.name().to_string();
    let reachable = reachable_blocks(p);

    // RTPF001: unreachable blocks.
    for b in p.block_ids() {
        if !reachable.contains(&b) {
            sink.report(
                Code::UnreachableBlock,
                Span::block(&name, b),
                format!("block {b} is not reachable from the entry {}", p.entry()),
                Some("remove the block or add an edge reaching it".into()),
            );
        }
    }

    // RTPF002: empty blocks. Join and loop-exit blocks produced by the
    // structured builder are legitimately empty, hence note level.
    for b in p.block_ids() {
        if p.block(b).is_empty() {
            sink.report(
                Code::EmptyBlock,
                Span::block(&name, b),
                format!("block {b} holds no instructions"),
                None,
            );
        }
    }

    // RTPF006: the entry block should have no predecessors; a CFG whose
    // entry is re-entered is an implicit loop header.
    if !p.preds(p.entry()).is_empty() {
        sink.report(
            Code::EntryHasPreds,
            Span::block(&name, p.entry()),
            format!("entry block {} has predecessors", p.entry()),
            Some("introduce a dedicated preheader block".into()),
        );
    }

    // RTPF007: at least one exit block must exist.
    if p.exits().is_empty() {
        sink.report(
            Code::NoExit,
            Span::program(&name),
            "program has no exit block (every block has successors)".to_string(),
            None,
        );
    }

    // RTPF005 / RTPF003 / RTPF004: loop structure and bounds.
    let dom = Dominators::compute(p);
    match LoopForest::compute(p, &dom) {
        Err(IsaError::IrreducibleLoop { header }) => {
            sink.report(
                Code::IrreducibleLoop,
                Span::block(&name, header),
                format!("irreducible cycle through {header}: entered other than through a dominating header"),
                Some("restructure the CFG so every cycle has a single dominating header".into()),
            );
        }
        Ok(forest) => {
            for l in forest.loops() {
                match p.loop_bound(l.header) {
                    None => sink.report(
                        Code::MissingLoopBound,
                        Span::block(&name, l.header),
                        format!("loop headed by {} has no iteration bound", l.header),
                        Some("record the bound with set_loop_bound".into()),
                    ),
                    Some(0) => sink.report(
                        Code::ZeroLoopBound,
                        Span::block(&name, l.header),
                        format!("loop headed by {} has a zero iteration bound", l.header),
                        Some("bounds count total body entries and must be at least 1".into()),
                    ),
                    Some(_) => {}
                }
            }
        }
    }

    // RTPF008: the canonical layout must place blocks contiguously and
    // without overlap, following the layout order.
    audit_layout(p, &Layout::of(p), sink);

    // RTPF009 / RTPF010: prefetch targets.
    audit_prefetches(p, &reachable, sink);
}

/// Checks that `layout` assigns each block in [`Program::layout_order`] a
/// contiguous, non-overlapping address range (RTPF008). Exposed separately
/// so callers can audit hand-built or anchored layouts.
pub fn audit_layout(p: &Program, layout: &Layout, sink: &mut DiagnosticSink) {
    let name = p.name().to_string();
    let mut prev: Option<(BlockId, u64)> = None; // (block, end address)
    for &b in p.layout_order() {
        let instrs = p.block(b).instrs();
        let Some(&first) = instrs.first() else {
            continue;
        };
        let start = layout.addr(first);
        // Instructions within a block must sit in consecutive slots.
        for (k, &i) in instrs.iter().enumerate() {
            let want = start + INSTR_BYTES * k as u64;
            if layout.addr(i) != want {
                sink.report(
                    Code::LayoutAnomaly,
                    Span::instr(&name, b, i),
                    format!(
                        "instruction {i} of {b} sits at {:#x}, expected {want:#x}",
                        layout.addr(i)
                    ),
                    None,
                );
            }
        }
        let end = start + INSTR_BYTES * instrs.len() as u64;
        if let Some((pb, pend)) = prev {
            if start < pend {
                sink.report(
                    Code::LayoutAnomaly,
                    Span::block(&name, b),
                    format!(
                        "address range of {b} (from {start:#x}) overlaps {pb} (ends {pend:#x})"
                    ),
                    None,
                );
            } else if start > pend {
                sink.report(
                    Code::LayoutAnomaly,
                    Span::block(&name, b),
                    format!("gap of {} bytes between {pb} and {b}", start - pend),
                    Some("non-contiguous text inflates the cache footprint".into()),
                );
            }
        }
        prev = Some((b, end));
    }
}

fn audit_prefetches(p: &Program, reachable: &HashSet<BlockId>, sink: &mut DiagnosticSink) {
    let name = p.name().to_string();
    for b in p.block_ids() {
        for (pos, &i) in p.block(b).instrs().iter().enumerate() {
            let InstrKind::Prefetch { target } = p.instr(i).kind else {
                continue;
            };
            // RTPF009: the target must be a non-prefetch instruction of
            // the program (an unknown id is reachable in release builds
            // via `remove_newest_instr`; a prefetch-for-a-prefetch is
            // senseless per Eq. 9).
            if target.index() >= p.instr_count() {
                sink.report(
                    Code::DanglingPrefetch,
                    Span::instr(&name, b, i),
                    format!("prefetch at {b}[{pos}] targets unknown instruction {target}"),
                    None,
                );
                continue;
            }
            if p.instr(target).kind.is_prefetch() {
                sink.report(
                    Code::DanglingPrefetch,
                    Span::instr(&name, b, i),
                    format!("prefetch at {b}[{pos}] targets another prefetch {target}"),
                    Some("prefetching for a prefetch is forbidden (Eq. 9)".into()),
                );
                continue;
            }
            // RTPF010: the target must be executable downstream of the
            // prefetch, else the fetched line is dead weight. A larger
            // cache block can still make the line useful for neighbouring
            // code, hence warn rather than deny.
            if !target_used_downstream(p, b, pos, target)
                || !reachable.contains(&p.block_of(target))
            {
                sink.report(
                    Code::UselessPrefetch,
                    Span::instr(&name, b, i),
                    format!(
                        "prefetch at {b}[{pos}] targets {target} in {}, which never executes after the prefetch",
                        p.block_of(target)
                    ),
                    Some("move the prefetch onto a path that reaches its target".into()),
                );
            }
        }
    }
}

/// Whether `target` can execute after position `pos` of block `b`: either
/// later in `b` itself, or in any block reachable from `b`'s successors
/// (following the full cyclic CFG).
fn target_used_downstream(p: &Program, b: BlockId, pos: usize, target: InstrId) -> bool {
    let tb = p.block_of(target);
    if tb == b && p.pos_in_block(target) > pos {
        return true;
    }
    let mut seen: HashSet<BlockId> = HashSet::new();
    let mut stack: Vec<BlockId> = p.succs(b).iter().map(|&(s, _)| s).collect();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if x == tb {
            return true;
        }
        stack.extend(p.succs(x).iter().map(|&(s, _)| s));
    }
    false
}

fn reachable_blocks(p: &Program) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    let mut stack = vec![p.entry()];
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        stack.extend(p.succs(b).iter().map(|&(s, _)| s));
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Severity, SeverityConfig};
    use rtpf_isa::shape::Shape;
    use rtpf_isa::EdgeKind;

    fn lint(p: &Program) -> DiagnosticSink {
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        audit_ir(p, &mut sink);
        sink
    }

    fn codes(sink: &DiagnosticSink) -> Vec<Code> {
        sink.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn structured_programs_are_clean_at_deny() {
        let p = Shape::seq([
            Shape::code(4),
            Shape::loop_(10, Shape::if_else(2, Shape::code(3), Shape::code(5))),
            Shape::code(2),
        ])
        .compile("clean");
        let sink = lint(&p);
        assert!(!sink.has_denials(), "{}", sink.render_text());
    }

    #[test]
    fn unreachable_block_fires_rtpf001() {
        let mut p = Shape::code(3).compile("u");
        let orphan = p.add_block();
        p.push_instr(orphan, InstrKind::Compute(0)).unwrap();
        let sink = lint(&p);
        assert!(codes(&sink).contains(&Code::UnreachableBlock));
        assert!(sink.has_denials());
    }

    #[test]
    fn empty_block_fires_rtpf002_as_note() {
        let mut p = Shape::code(3).compile("e");
        let tail = p.add_block();
        p.add_edge(p.entry(), tail, EdgeKind::Fallthrough).unwrap();
        let sink = lint(&p);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::EmptyBlock)
            .expect("lint fires");
        assert_eq!(d.severity, Severity::Note);
    }

    #[test]
    fn missing_and_zero_bounds_fire_rtpf003_and_rtpf004() {
        // A hand-built self-loop with no bound.
        let mut p = Program::new("nb");
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push_instr(b0, InstrKind::Compute(0)).unwrap();
        p.push_instr(b1, InstrKind::Compute(0)).unwrap();
        p.push_instr(b2, InstrKind::Return).unwrap();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b1, b1, EdgeKind::Taken).unwrap();
        p.add_edge(b1, b2, EdgeKind::Fallthrough).unwrap();
        assert!(codes(&lint(&p)).contains(&Code::MissingLoopBound));
        p.set_loop_bound(b1, 0).unwrap();
        assert!(codes(&lint(&p)).contains(&Code::ZeroLoopBound));
    }

    #[test]
    fn irreducible_cycle_fires_rtpf005() {
        let mut p = Program::new("irr");
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let b3 = p.add_block();
        for b in [b0, b1, b2] {
            p.push_instr(b, InstrKind::Compute(0)).unwrap();
        }
        p.push_instr(b3, InstrKind::Return).unwrap();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b0, b2, EdgeKind::Taken).unwrap();
        p.add_edge(b1, b2, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b2, b1, EdgeKind::Taken).unwrap();
        p.add_edge(b2, b3, EdgeKind::Fallthrough).unwrap();
        assert!(codes(&lint(&p)).contains(&Code::IrreducibleLoop));
    }

    #[test]
    fn entry_preds_and_no_exit_fire_rtpf006_and_rtpf007() {
        let mut p = Program::new("cyc");
        let b0 = p.entry();
        let b1 = p.add_block();
        p.push_instr(b0, InstrKind::Compute(0)).unwrap();
        p.push_instr(b1, InstrKind::Branch).unwrap();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();
        p.add_edge(b1, b0, EdgeKind::Taken).unwrap();
        p.set_loop_bound(b0, 3).unwrap();
        let got = codes(&lint(&p));
        assert!(got.contains(&Code::EntryHasPreds));
        assert!(got.contains(&Code::NoExit));
    }

    #[test]
    fn corrupt_layouts_fire_rtpf008() {
        let mut p = Program::new("lay");
        let b0 = p.entry();
        let b1 = p.add_block();
        for _ in 0..2 {
            p.push_instr(b0, InstrKind::Compute(0)).unwrap();
        }
        p.push_instr(b1, InstrKind::Compute(0)).unwrap();
        p.push_instr(b1, InstrKind::Return).unwrap();
        p.add_edge(b0, b1, EdgeKind::Fallthrough).unwrap();

        let check = |addrs: Vec<u64>| {
            let mut sink = DiagnosticSink::new(SeverityConfig::new());
            audit_layout(&p, &Layout::from_addrs(addrs, 0x100), &mut sink);
            sink
        };
        // The canonical assignment is clean.
        assert!(check(vec![0x100, 0x104, 0x108, 0x10c])
            .diagnostics()
            .is_empty());
        // A gap between the two blocks.
        let gap = check(vec![0x100, 0x104, 0x110, 0x114]);
        assert!(
            codes(&gap).contains(&Code::LayoutAnomaly),
            "{}",
            gap.render_text()
        );
        // Overlapping block ranges.
        let overlap = check(vec![0x100, 0x104, 0x104, 0x108]);
        assert!(codes(&overlap).contains(&Code::LayoutAnomaly));
        // Non-consecutive instructions within one block.
        let skewed = check(vec![0x100, 0x10c, 0x110, 0x114]);
        assert!(codes(&skewed).contains(&Code::LayoutAnomaly));
        // The shape-compiled canonical layout audits clean.
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        audit_layout(&p, &Layout::of(&p), &mut sink);
        assert!(sink.diagnostics().is_empty());
    }

    #[test]
    fn prefetch_for_a_prefetch_fires_rtpf009() {
        let mut p = Shape::code(3).compile("d");
        let entry = p.entry();
        let first = p.block(entry).instrs()[0];
        let pf1 = p
            .push_instr(entry, InstrKind::Prefetch { target: first })
            .unwrap();
        p.push_instr(entry, InstrKind::Prefetch { target: pf1 })
            .unwrap();
        let sink = lint(&p);
        assert!(codes(&sink).contains(&Code::DanglingPrefetch));
        assert!(sink.has_denials());
    }

    #[test]
    fn useless_prefetch_fires_rtpf010() {
        // The prefetch targets an instruction *before* it in the same
        // block, with no cycle back: the line can never be used.
        let p0 = Shape::code(3).compile("useless");
        let first = p0.block(p0.entry()).instrs()[0];
        let mut p = p0;
        p.push_instr(p.entry(), InstrKind::Prefetch { target: first })
            .unwrap();
        let sink = lint(&p);
        assert!(codes(&sink).contains(&Code::UselessPrefetch));
    }

    #[test]
    fn forward_prefetch_is_not_useless() {
        let mut p = Shape::seq([Shape::code(2), Shape::loop_(5, Shape::code(6))]).compile("fwd");
        let entry = p.entry();
        // Target an instruction in the loop body (downstream).
        let target = p
            .block_ids()
            .filter(|&b| b != entry)
            .flat_map(|b| p.block(b).instrs().to_vec())
            .last()
            .unwrap();
        p.push_instr(entry, InstrKind::Prefetch { target }).unwrap();
        let sink = lint(&p);
        assert!(!codes(&sink).contains(&Code::UselessPrefetch));
        assert!(!codes(&sink).contains(&Code::DanglingPrefetch));
    }
}
