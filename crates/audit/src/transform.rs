//! Transform audit: post-hoc re-verification of an optimized program.
//!
//! The optimizer promises (Theorem 1) a prefetch-equivalent program whose
//! memory WCET never increases, and selects each prefetch by the paper's
//! joint criterion: effective (Definition 10 — the latency fits the slack
//! between issue and next use), relocation-safe (Lemma 2 — already-placed
//! code keeps its addresses), and profitable (Lemma 1 — saved miss cycles
//! exceed the prefetch's own cost). This pass re-derives every one of
//! those facts from the *output* analysis, independent of the optimizer's
//! internal bookkeeping.

use rtpf_core::{check, WcetPath};
use rtpf_isa::{InstrKind, Layout, Program};
use rtpf_wcet::{AnalysisError, WcetAnalysis};

use crate::diag::{Code, DiagnosticSink, Span};

/// Aggregate outcome of one transform audit.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransformSummary {
    /// Prefetch instructions examined in the optimized program.
    pub prefetches: usize,
    /// `τ_w` of the original program.
    pub tau_before: u64,
    /// `τ_w` of the optimized program.
    pub tau_after: u64,
}

/// Audits `optimized` (analysed as `after`) against `original`.
///
/// `after` must be the analysis the optimizer produced — its layout is the
/// anchored layout the relocation model defines, and its classification is
/// what Theorem 1's `τ_w(p') ≤ τ_w(p)` was proved against.
///
/// # Errors
///
/// Fails when the original program cannot be analysed.
pub fn audit_transform(
    original: &Program,
    optimized: &Program,
    after: &WcetAnalysis,
    sink: &mut DiagnosticSink,
) -> Result<TransformSummary, AnalysisError> {
    let name = optimized.name().to_string();
    let config = after.config();
    let timing = *after.timing();

    // Theorem 1, both halves, by independent re-analysis.
    let report = check(original, optimized, after.layout().clone(), config, &timing)?;
    if !report.equivalent {
        sink.report(
            Code::NotEquivalent,
            Span::program(&name),
            "optimized program is not prefetch-equivalent to its input (Definition 5)".to_string(),
            Some("the transform may only insert prefetch instructions".into()),
        );
    }
    if !report.wcet_preserved {
        sink.report(
            Code::WcetRegression,
            Span::program(&name),
            format!(
                "τ_w regressed from {} to {} cycles (Theorem 1 violated)",
                report.tau_before, report.tau_after
            ),
            None,
        );
    }

    // Lemma 2 (relocation safety): every instruction of the original
    // program keeps the address the optimizer's suffix-anchored layout
    // promises — shifted down by one slot per prefetch inserted *before*
    // it in layout order, never up, and never reordered.
    audit_relocation(original, optimized, after.layout(), sink);

    // Per-prefetch re-checks against the final analysis.
    let path = WcetPath::of(after);
    let mut prefetches = 0usize;
    for b in optimized.block_ids() {
        for (pos, &i) in optimized.block(b).instrs().iter().enumerate() {
            let InstrKind::Prefetch { target } = optimized.instr(i).kind else {
                continue;
            };
            prefetches += 1;
            let span = Span::instr(&name, b, i);
            let tb = after.layout().block_of(target, config.block_bytes());
            // A prefetch instruction occurs in many VIVU contexts; the
            // optimizer selected it because it pays off in at least one.
            // Later rounds legitimately shift the WCET path, so a context
            // that no longer benefits is not a defect — only a prefetch
            // that benefits in *no* on-path context is worth flagging.
            // (The aggregate bound itself is covered by RTPF031.)
            let mut on_path = 0u32;
            let mut effective = 0u32; // Definition 10 holds in this context
            let mut profitable = 0u32; // next use classifies as a hit (Lemma 1)
            for rf in after.acfg().refs() {
                if rf.instr != i {
                    continue;
                }
                let Some(pi) = path.position(rf.id) else {
                    continue;
                };
                on_path += 1;
                let Some(r_j) = path.next_use(after, rf.id, tb) else {
                    continue;
                };
                let pj = path.position(r_j).expect("next_use returns path refs");
                // Definition 10: the prefetch latency must fit the slack
                // of the references strictly between issue and use.
                let window = if pj > pi + 1 {
                    path.span_cycles(pi + 1, pj - 1)
                } else {
                    0
                };
                if timing.prefetch_latency > window {
                    continue;
                }
                effective += 1;
                if !after.classification(r_j).counts_as_miss() {
                    profitable += 1;
                }
            }
            if on_path > 0 && effective == 0 {
                sink.report(
                    Code::IneffectivePrefetch,
                    span.clone(),
                    format!(
                        "prefetch at {b}[{pos}]: in all {on_path} on-path context(s), {tb} is \
                         either never used again or the {}-cycle latency exceeds the window \
                         before its next use (Definition 10)",
                        timing.prefetch_latency
                    ),
                    None,
                );
            } else if effective > 0 && profitable == 0 {
                sink.report(
                    Code::UnprofitablePrefetch,
                    span.clone(),
                    format!(
                        "prefetch at {b}[{pos}]: the next use of {tb} still classifies as a \
                         miss in every effective on-path context, so the prefetch pays its \
                         cost for no gain (Lemma 1)"
                    ),
                    None,
                );
            }
            if on_path == 0 {
                sink.report(
                    Code::OffPathPrefetch,
                    span,
                    format!("prefetch at {b}[{pos}] lies off the final WCET path in every context"),
                    Some("harmless for the bound; earlier rounds' paths may have moved".into()),
                );
            }
        }
    }

    Ok(TransformSummary {
        prefetches,
        tau_before: report.tau_before,
        tau_after: report.tau_after,
    })
}

/// Lemma 2: under the suffix-anchored relocation model, an original
/// instruction may only shift *down* (by 4 bytes per prefetch placed
/// before it), and originally adjacent instructions must stay in order.
fn audit_relocation(
    original: &Program,
    optimized: &Program,
    after_layout: &Layout,
    sink: &mut DiagnosticSink,
) {
    let name = optimized.name().to_string();
    let before = Layout::of(original);
    let inserted = optimized
        .instr_count()
        .saturating_sub(original.instr_count()) as u64;
    let max_shift = inserted * rtpf_isa::INSTR_BYTES;
    let mut prev: Option<(rtpf_isa::InstrId, u64)> = None;
    for &b in original.layout_order() {
        for &i in original.block(b).instrs() {
            if i.index() >= optimized.instr_count() {
                continue; // not comparable; equivalence check already failed
            }
            let was = before.addr(i);
            let now = after_layout.addr(i);
            if now > was || was - now > max_shift {
                sink.report(
                    Code::RelocationUnsafe,
                    Span::instr(&name, b, i),
                    format!(
                        "instruction {i} moved from {was:#x} to {now:#x}, outside the \
                         downward relocation window of {max_shift} bytes (Lemma 2)"
                    ),
                    None,
                );
            }
            if let Some((pi, pnow)) = prev {
                if now <= pnow {
                    sink.report(
                        Code::RelocationUnsafe,
                        Span::instr(&name, b, i),
                        format!(
                            "instruction {i} ({now:#x}) no longer follows {pi} ({pnow:#x}): \
                             relocation reordered original code (Lemma 2)"
                        ),
                        None,
                    );
                }
            }
            prev = Some((i, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{DiagnosticSink, SeverityConfig};
    use rtpf_cache::{CacheConfig, MemTiming};
    use rtpf_core::{OptimizeParams, Optimizer};
    use rtpf_isa::shape::Shape;

    fn optimizable() -> Program {
        Shape::seq([
            Shape::code(30),
            Shape::loop_(
                20,
                Shape::seq([
                    Shape::code(10),
                    Shape::if_else(2, Shape::code(16), Shape::code(8)),
                    Shape::if_then(2, Shape::code(12)),
                ]),
            ),
            Shape::code(14),
        ])
        .compile("t")
    }

    #[test]
    fn optimizer_output_audits_clean_of_denials() {
        let p = optimizable();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let r = Optimizer::new(config, OptimizeParams::default())
            .run(&p)
            .unwrap();
        assert!(r.report.inserted > 0, "scenario must insert prefetches");
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_transform(&p, &r.program, &r.analysis_after, &mut sink).unwrap();
        assert_eq!(s.prefetches as u32, r.report.inserted);
        assert!(s.tau_after <= s.tau_before);
        assert!(!sink.has_denials(), "{}", sink.render_text());
    }

    #[test]
    fn non_equivalent_pair_fires_rtpf030() {
        let p = optimizable();
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let timing = MemTiming::default();
        // "Optimize" by analysing a *different* program.
        let q = Shape::code(40).compile("t");
        let a = WcetAnalysis::analyze(&q, &config, &timing).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let _ = audit_transform(&p, &q, &a, &mut sink).unwrap();
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::NotEquivalent));
        assert!(sink.has_denials());
    }

    #[test]
    fn hand_inserted_late_prefetch_fires_rtpf032() {
        // A prefetch placed immediately before its target's use leaves no
        // window to hide the latency: Definition 10 must flag it.
        let p = Shape::seq([Shape::code(4), Shape::code(4)]).compile("late");
        let mut q = p.clone();
        let entry = q.entry();
        let last = *q.block(entry).instrs().last().unwrap();
        let n = q.block(entry).len();
        q.insert_instr(entry, n - 1, InstrKind::Prefetch { target: last })
            .unwrap();
        let config = CacheConfig::new(2, 16, 512).unwrap();
        let timing = MemTiming::default();
        let a = WcetAnalysis::analyze(&q, &config, &timing).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_transform(&p, &q, &a, &mut sink).unwrap();
        assert_eq!(s.prefetches, 1);
        let fired: Vec<_> = sink.diagnostics().iter().map(|d| d.code).collect();
        assert!(
            fired.contains(&Code::IneffectivePrefetch) || fired.contains(&Code::OffPathPrefetch),
            "{}",
            sink.render_text()
        );
    }
}
