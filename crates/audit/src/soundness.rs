//! Abstract-vs-concrete soundness audit.
//!
//! The must/may classification promises: an *always-hit* reference hits in
//! **every** execution, an *always-miss* reference never hits. Following
//! Touzeau et al.'s cross-checking methodology, this pass drives the
//! concrete LRU cache ([`ConcreteState`]) down feasible paths of the VIVU
//! context graph — the exact graph the abstract fixpoint ran on — and
//! compares per-reference outcomes:
//!
//! * an always-hit reference that concretely misses is a genuine
//!   soundness bug (RTPF020, deny);
//! * an always-miss reference that concretely hits likewise (RTPF022);
//! * an unclassified reference that hit on every observed execution is a
//!   precision gap (RTPF021, note) and feeds the per-program precision
//!   score.
//!
//! Classifications produced by the exact FIFO/PLRU refinement stage
//! (DESIGN.md §12) are cross-checked under their own codes: a *refined*
//! always-hit that concretely misses is RTPF040, a refined always-miss
//! that concretely hits is RTPF042 (both deny — one counterexample
//! disproves the exploration), and a reference the refinement examined
//! but could not classify that shows a single concrete outcome is RTPF041
//! (note). The summary reports the precision of the cheap classification
//! alongside the refined one, so the evaluation can quantify what the
//! refinement bought.
//!
//! Under a two-level hierarchy (DESIGN.md §14) the walk drives the exact
//! [`ConcreteHierarchy`] instead, and the per-level classifications are
//! cross-checked the same way: a reference whose L1 outcome admits no L2
//! access that concretely reaches the L2 is RTPF050, an L2 always-hit
//! that concretely fills from DRAM is RTPF051, and an L2 always-miss
//! that concretely hits in the L2 is RTPF052 (all deny).
//!
//! Because the abstract join covers *every* path through the context
//! graph (including arbitrary flow around the broken back edges), any
//! walk that respects loop bounds observes a subset of the abstracted
//! behaviours — a disagreement is always a true positive, never noise
//! from an infeasible path.

use std::collections::HashMap;

use rtpf_cache::{
    CacheAccessClassification, CacheConfig, Classification, ConcreteHierarchy, HierarchyConfig,
    HierarchyOutcome, MemTiming, RefineMark,
};
use rtpf_isa::{BlockId, Layout, Program};
use rtpf_wcet::{AnalysisError, NodeId, RefId, WcetAnalysis};

use crate::diag::{Code, DiagnosticSink, Span};

/// Tuning knobs for the concrete walks.
#[derive(Clone, Copy, Debug)]
pub struct SoundnessOptions {
    /// Number of concrete executions per program/configuration. Walk 0 is
    /// iteration-greedy (runs every loop to its bound, for maximum warm
    /// coverage); the rest randomize loop exits and branch arms.
    pub walks: u32,
    /// Seed for the walk-policy generator (walks are deterministic given
    /// the seed).
    pub seed: u64,
    /// Instruction-fetch budget per walk, bounding audit time on large
    /// bound products.
    pub max_fetches: u64,
}

impl Default for SoundnessOptions {
    fn default() -> Self {
        SoundnessOptions {
            walks: 8,
            seed: 0x5eed_f00d,
            max_fetches: 2_000_000,
        }
    }
}

/// Aggregate outcome of one soundness audit.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoundnessSummary {
    /// References in the ACFG.
    pub refs_total: usize,
    /// References executed by at least one walk.
    pub refs_observed: usize,
    /// RTPF020/RTPF022/RTPF040/RTPF042 findings (genuine unsoundness).
    pub unsound: usize,
    /// RTPF021/RTPF041 findings (unclassified yet concretely
    /// single-outcome).
    pub precision_gaps: usize,
    /// Observed references whose classification was upgraded by the exact
    /// FIFO/PLRU refinement stage.
    pub refined: usize,
    /// Fraction of observed references whose (refined) classification
    /// matched the concrete behaviour exactly (1.0 = perfectly precise on
    /// the observed paths).
    pub precision_score: f64,
    /// The same fraction for the *cheap* (pre-refinement) classification.
    /// Equal to [`precision_score`](SoundnessSummary::precision_score)
    /// under LRU or with refinement off.
    pub cheap_precision_score: f64,
}

/// Runs the soundness audit of `p` under `config`/`timing`.
///
/// # Errors
///
/// Fails when the program cannot be analysed at all.
pub fn audit_soundness(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
) -> Result<SoundnessSummary, AnalysisError> {
    audit_soundness_with(p, config, timing, sink, opts, |_, c| c)
}

/// [`audit_soundness`] with a classification override, the seam that lets
/// tests prove the audit catches a broken classifier: `reclass` sees each
/// reference's analysed classification and returns the one to audit.
///
/// # Errors
///
/// Fails when the program cannot be analysed at all.
pub fn audit_soundness_with(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
    reclass: impl Fn(RefId, Classification) -> Classification,
) -> Result<SoundnessSummary, AnalysisError> {
    audit_soundness_forced(p, config, timing, sink, opts, |r, c, m| (reclass(r, c), m))
}

/// [`audit_soundness_with`] with the refinement mark exposed and
/// overridable as well: the seam that lets tests prove the audit catches
/// a corrupted *refinement* (RTPF040/RTPF042), not just a corrupted cheap
/// classifier.
///
/// # Errors
///
/// Fails when the program cannot be analysed at all.
pub fn audit_soundness_forced(
    p: &Program,
    config: &CacheConfig,
    timing: &MemTiming,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
    reclass: impl Fn(RefId, Classification, RefineMark) -> (Classification, RefineMark),
) -> Result<SoundnessSummary, AnalysisError> {
    let a = WcetAnalysis::analyze(p, config, timing)?;
    let obs = observe(p, &a, &a.hierarchy(), opts);
    Ok(compare(p, &a, &obs, sink, reclass, |_, c, cac| (c, cac)))
}

/// Runs the soundness audit of `p` under a full cache hierarchy: the
/// walks replay the exact two-level semantics and the per-level
/// classifications (L1 and, when present, L2 plus its L1-outcome filter)
/// are each cross-checked against the concrete outcomes.
///
/// # Errors
///
/// Fails when the program cannot be analysed at all.
pub fn audit_hierarchy_soundness(
    p: &Program,
    hierarchy: &HierarchyConfig,
    timing: &MemTiming,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
) -> Result<SoundnessSummary, AnalysisError> {
    audit_hierarchy_soundness_forced(p, hierarchy, timing, sink, opts, |_, c, cac| (c, cac))
}

/// [`audit_hierarchy_soundness`] with an L2 classification override, the
/// seam that lets tests prove the audit catches a broken second-level
/// classifier or a broken L1 filter: `reclass_l2` sees each reference's
/// analysed L2 classification and L1-outcome filter and returns the pair
/// to audit.
///
/// # Errors
///
/// Fails when the program cannot be analysed at all.
pub fn audit_hierarchy_soundness_forced(
    p: &Program,
    hierarchy: &HierarchyConfig,
    timing: &MemTiming,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
    reclass_l2: impl Fn(
        RefId,
        Classification,
        CacheAccessClassification,
    ) -> (Classification, CacheAccessClassification),
) -> Result<SoundnessSummary, AnalysisError> {
    let a = WcetAnalysis::analyze_hierarchy(
        p,
        Layout::of(p),
        hierarchy,
        timing,
        rtpf_cache::RefineConfig::on(),
        1,
    )?;
    let obs = observe(p, &a, hierarchy, opts);
    Ok(compare(p, &a, &obs, sink, |_, c, m| (c, m), reclass_l2))
}

/// Runs the soundness audit over an already-computed analysis artifact
/// (cache geometry and timing come from the artifact itself). This is the
/// seam the engine uses: the caller decides whether `a` came from the
/// artifact store or from an independent cache-bypassing recomputation.
pub fn audit_soundness_artifact(
    p: &Program,
    a: &WcetAnalysis,
    sink: &mut DiagnosticSink,
    opts: &SoundnessOptions,
) -> SoundnessSummary {
    let obs = observe(p, a, &a.hierarchy(), opts);
    compare(p, a, &obs, sink, |_, c, m| (c, m), |_, c, cac| (c, cac))
}

/// Per-reference concrete observations across all walks. The `l2_*`
/// counters track the second-level outcome of the own-block access and
/// stay zero on a single-level hierarchy.
struct Observations {
    hits: Vec<u64>,
    misses: Vec<u64>,
    l2_hits: Vec<u64>,
    l2_misses: Vec<u64>,
}

/// Walks the VIVU graph concretely, accumulating per-reference outcomes.
fn observe(
    p: &Program,
    a: &WcetAnalysis,
    hierarchy: &HierarchyConfig,
    opts: &SoundnessOptions,
) -> Observations {
    let g = a.vivu();
    let acfg = a.acfg();
    let two_level = hierarchy.l2().is_some();
    let mut hits = vec![0u64; acfg.len()];
    let mut misses = vec![0u64; acfg.len()];
    let mut l2_hits = vec![0u64; acfg.len()];
    let mut l2_misses = vec![0u64; acfg.len()];
    // Back edges grouped by source latch node.
    let mut back_of: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(l, h) in g.back_edges() {
        back_of.entry(l).or_default().push(h);
    }
    let bound = |h: BlockId| p.loop_bound(h).unwrap_or(1);

    for w in 0..opts.walks {
        let mut rng = SplitMix64(opts.seed ^ u64::from(w).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let greedy = w == 0;
        let mut state = ConcreteHierarchy::new(hierarchy);
        let mut cur = g.entry();
        let mut fetches = 0u64;
        let mut steps = 0u64;
        // Activation stack mirroring the current node's context frames:
        // `(header block, body entries so far this activation)`.
        let mut stack: Vec<(BlockId, u32)> = Vec::new();
        loop {
            let node = g.node(cur);
            let frames = node.ctx.frames();
            // Loops we have exited disappear from the frame stack.
            let keep = stack
                .iter()
                .zip(frames)
                .take_while(|(s, f)| s.0 == f.0)
                .count();
            stack.truncate(keep);
            // Frame growth only ever happens by arriving at a header.
            if let Some(&(h, it)) = frames.last() {
                if node.block == h {
                    match (stack.len() == frames.len(), it) {
                        (true, rtpf_wcet::Iter::First) => {
                            stack.last_mut().expect("depth > 0").1 = 1
                        }
                        (true, rtpf_wcet::Iter::Rest) => {
                            stack.last_mut().expect("depth > 0").1 += 1;
                        }
                        (false, rtpf_wcet::Iter::First) => stack.push((h, 1)),
                        (false, rtpf_wcet::Iter::Rest) => stack.push((h, 2)),
                    }
                }
            }
            // Intermediate frames can only be missing on the very first
            // node of the walk (an entry inside a loop).
            while stack.len() < frames.len() {
                stack.push((frames[stack.len()].0, 1));
            }

            // Execute the node's references, mirroring the abstract
            // transfer: access the own block, then the prefetch target.
            for &r in acfg.refs_of_node(cur) {
                match state.access(a.mem_block(r)) {
                    HierarchyOutcome::L1Hit => hits[r.index()] += 1,
                    HierarchyOutcome::L2Hit => {
                        misses[r.index()] += 1;
                        l2_hits[r.index()] += 1;
                    }
                    HierarchyOutcome::Miss => {
                        misses[r.index()] += 1;
                        if two_level {
                            l2_misses[r.index()] += 1;
                        }
                    }
                }
                fetches += 1;
                if let Some(tb) = a.pf_block(r) {
                    state.access(tb);
                    fetches += 1;
                }
            }
            steps += 1;
            if fetches >= opts.max_fetches || steps >= opts.max_fetches {
                break;
            }

            // Candidate moves: acyclic successors, plus back edges whose
            // loop still has iterations left under its bound.
            let forward = g.succs(cur);
            let mut back: Vec<NodeId> = Vec::new();
            if let Some(hs) = back_of.get(&cur) {
                for &hn in hs {
                    let hb = g.node(hn).block;
                    let iters = stack
                        .iter()
                        .rev()
                        .find(|&&(sh, _)| sh == hb)
                        .map_or(0, |&(_, n)| n);
                    if iters < bound(hb) {
                        back.push(hn);
                    }
                }
            }
            let take_back =
                !back.is_empty() && (greedy || forward.is_empty() || !rng.next().is_multiple_of(4));
            cur = if take_back {
                back[(rng.next() as usize) % back.len()]
            } else if !forward.is_empty() {
                forward[(rng.next() as usize) % forward.len()]
            } else {
                break;
            };
        }
    }
    Observations {
        hits,
        misses,
        l2_hits,
        l2_misses,
    }
}

/// Exactness of one classification against one reference's observations,
/// per the precision-score rules: hit-only always-hit, miss-only
/// always-miss, and genuinely-variable unclassified are exact.
fn is_exact(class: Classification, h: u64, m: u64) -> bool {
    match class {
        Classification::AlwaysHit => m == 0,
        Classification::AlwaysMiss => h == 0,
        Classification::Unclassified => h > 0 && m > 0,
    }
}

/// Compares observations against (possibly overridden) classifications.
fn compare(
    p: &Program,
    a: &WcetAnalysis,
    obs: &Observations,
    sink: &mut DiagnosticSink,
    reclass: impl Fn(RefId, Classification, RefineMark) -> (Classification, RefineMark),
    reclass_l2: impl Fn(
        RefId,
        Classification,
        CacheAccessClassification,
    ) -> (Classification, CacheAccessClassification),
) -> SoundnessSummary {
    let acfg = a.acfg();
    let name = p.name().to_string();
    let mut s = SoundnessSummary {
        refs_total: acfg.len(),
        ..SoundnessSummary::default()
    };
    let mut exact = 0usize;
    let mut cheap_exact = 0usize;
    for rf in acfg.refs() {
        let r = rf.id;
        let (h, m) = (obs.hits[r.index()], obs.misses[r.index()]);
        if h + m == 0 {
            continue; // never reached by any walk: no evidence either way
        }
        s.refs_observed += 1;
        let node = a.vivu().node(rf.node);
        let span = Span::instr(&name, node.block, rf.instr);
        let (class, mark) = reclass(r, a.classification(r), a.refine_mark(r));
        // The cheap (pre-refinement) view is scored silently on the same
        // observations; diagnostics are only raised for the shipped view.
        if is_exact(a.cheap_classification(r), h, m) {
            cheap_exact += 1;
        }
        if mark == RefineMark::Refined {
            s.refined += 1;
        }
        match class {
            Classification::AlwaysHit => {
                if m > 0 {
                    s.unsound += 1;
                    if mark == RefineMark::Refined {
                        sink.report(
                            Code::RefinedUnsoundAlwaysHit,
                            span.clone(),
                            format!(
                                "refined always-hit reference {} in {} (context {}) concretely \
                                 missed {m} of {} executions",
                                rf.instr,
                                node.block,
                                node.ctx,
                                h + m
                            ),
                            Some(
                                "the exact exploration missed a reachable state: \
                                 this is a refinement soundness bug"
                                    .into(),
                            ),
                        );
                    } else {
                        sink.report(
                            Code::UnsoundAlwaysHit,
                            span.clone(),
                            format!(
                                "reference {} in {} (context {}) is classified always-hit but \
                                 concretely missed {m} of {} executions",
                                rf.instr,
                                node.block,
                                node.ctx,
                                h + m
                            ),
                            Some(
                                "the must analysis over-approximates: this is a soundness bug"
                                    .into(),
                            ),
                        );
                    }
                } else {
                    exact += 1;
                }
            }
            Classification::AlwaysMiss => {
                if h > 0 {
                    s.unsound += 1;
                    if mark == RefineMark::Refined {
                        sink.report(
                            Code::RefinedUnsoundAlwaysMiss,
                            span.clone(),
                            format!(
                                "refined always-miss reference {} in {} (context {}) concretely \
                                 hit {h} of {} executions",
                                rf.instr,
                                node.block,
                                node.ctx,
                                h + m
                            ),
                            Some(
                                "the exact exploration saw a spurious miss in every state: \
                                 this is a refinement soundness bug"
                                    .into(),
                            ),
                        );
                    } else {
                        sink.report(
                            Code::UnsoundAlwaysMiss,
                            span.clone(),
                            format!(
                                "reference {} in {} (context {}) is classified always-miss but \
                                 concretely hit {h} of {} executions",
                                rf.instr,
                                node.block,
                                node.ctx,
                                h + m
                            ),
                            Some(
                                "the may analysis under-approximates: this is a soundness bug"
                                    .into(),
                            ),
                        );
                    }
                } else {
                    exact += 1;
                }
            }
            Classification::Unclassified => {
                if m == 0 {
                    s.precision_gaps += 1;
                    if mark == RefineMark::Examined {
                        sink.report(
                            Code::RefinedPrecisionGap,
                            span.clone(),
                            format!(
                                "refinement-examined reference {} in {} (context {}) stayed \
                                 unclassified yet hit on all {h} observed executions",
                                rf.instr, node.block, node.ctx
                            ),
                            Some(
                                "the exploration saw mixed states or ran out of budget; \
                                 raising --refine-budget may close this"
                                    .into(),
                            ),
                        );
                    } else {
                        sink.report(
                            Code::PrecisionGap,
                            span.clone(),
                            format!(
                                "unclassified reference {} in {} (context {}) hit on all {h} \
                                 observed executions",
                                rf.instr, node.block, node.ctx
                            ),
                            Some("a persistence or first-miss analysis could classify this".into()),
                        );
                    }
                } else if h == 0 && mark == RefineMark::Examined {
                    s.precision_gaps += 1;
                    sink.report(
                        Code::RefinedPrecisionGap,
                        span.clone(),
                        format!(
                            "refinement-examined reference {} in {} (context {}) stayed \
                             unclassified yet missed on all {m} observed executions",
                            rf.instr, node.block, node.ctx
                        ),
                        Some(
                            "the exploration saw mixed states or ran out of budget; \
                             raising --refine-budget may close this"
                                .into(),
                        ),
                    );
                } else if h > 0 {
                    exact += 1; // genuinely variable: unclassified is tight
                }
            }
        }
        // Second-level cross-check (two-level hierarchies only): the L1
        // filter and the L2 classification are each falsified by one
        // contradicting concrete outcome.
        if let (Some(l2class), Some(cac)) = (a.l2_classification(r), a.l2_cac(r)) {
            let (l2class, cac) = reclass_l2(r, l2class, cac);
            let (l2h, l2m) = (obs.l2_hits[r.index()], obs.l2_misses[r.index()]);
            if cac == CacheAccessClassification::Never && l2h + l2m > 0 {
                s.unsound += 1;
                sink.report(
                    Code::HierarchyFilterViolated,
                    span.clone(),
                    format!(
                        "reference {} in {} (context {}) is L1 always-hit (L2 filter                          `never`) yet concretely reached the L2 on {} of {} executions",
                        rf.instr,
                        node.block,
                        node.ctx,
                        l2h + l2m,
                        h + m
                    ),
                    Some(
                        "the L1 filter fed the L2 analysis a reference it promised away:                          this is a hierarchy soundness bug"
                            .into(),
                    ),
                );
            }
            match l2class {
                Classification::AlwaysHit if l2m > 0 => {
                    s.unsound += 1;
                    sink.report(
                        Code::UnsoundL2AlwaysHit,
                        span.clone(),
                        format!(
                            "reference {} in {} (context {}) is classified L2 always-hit                              but concretely filled from DRAM on {l2m} of {} L2 accesses",
                            rf.instr,
                            node.block,
                            node.ctx,
                            l2h + l2m
                        ),
                        Some(
                            "the WCET bound charged an L2 hit for a DRAM access: this is                              a soundness bug"
                                .into(),
                        ),
                    );
                }
                Classification::AlwaysMiss if l2h > 0 => {
                    s.unsound += 1;
                    sink.report(
                        Code::UnsoundL2AlwaysMiss,
                        span.clone(),
                        format!(
                            "reference {} in {} (context {}) is classified L2 always-miss                              but concretely hit in the L2 on {l2h} of {} L2 accesses",
                            rf.instr,
                            node.block,
                            node.ctx,
                            l2h + l2m
                        ),
                        Some(
                            "the L2 may analysis under-approximates: this is a soundness                              bug"
                                .into(),
                        ),
                    );
                }
                _ => {}
            }
        }
    }
    if s.refs_observed == 0 {
        s.precision_score = 1.0;
        s.cheap_precision_score = 1.0;
    } else {
        s.precision_score = exact as f64 / s.refs_observed as f64;
        s.cheap_precision_score = cheap_exact as f64 / s.refs_observed as f64;
    }
    s
}

/// SplitMix64: tiny deterministic generator for walk policies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::SeverityConfig;
    use rtpf_isa::shape::Shape;

    fn demo() -> Program {
        Shape::seq([
            Shape::code(6),
            Shape::loop_(12, Shape::if_else(2, Shape::code(8), Shape::code(4))),
            Shape::code(3),
        ])
        .compile("demo")
    }

    #[test]
    fn honest_classifier_has_no_unsound_findings() {
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_soundness(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
        )
        .unwrap();
        assert_eq!(s.unsound, 0, "{}", sink.render_text());
        assert!(!sink.has_denials(), "{}", sink.render_text());
        assert!(s.refs_observed > 0);
        assert!(s.refs_observed <= s.refs_total);
        assert!((0.0..=1.0).contains(&s.precision_score));
    }

    #[test]
    fn broken_classifier_fires_rtpf020() {
        // Force every reference to always-hit: the cold entry access must
        // concretely miss, so no always-hit-that-misses can escape.
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_soundness_with(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, _| Classification::AlwaysHit,
        )
        .unwrap();
        assert!(s.unsound > 0);
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::UnsoundAlwaysHit));
        assert!(sink.has_denials());
    }

    #[test]
    fn broken_may_analysis_fires_rtpf022() {
        // A loop small enough to stay resident: rest-context accesses hit
        // concretely, so classifying everything always-miss must be caught.
        let p = Shape::loop_(16, Shape::code(4)).compile("tight");
        let config = CacheConfig::new(4, 16, 1024).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_soundness_with(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, _| Classification::AlwaysMiss,
        )
        .unwrap();
        assert!(s.unsound > 0);
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::UnsoundAlwaysMiss));
    }

    #[test]
    fn corrupted_refinement_fires_rtpf040_and_rtpf042() {
        // Forcing the refined mark onto corrupt classifications must
        // surface the refinement-specific deny codes, not the cheap ones:
        // a refined always-hit that misses is RTPF040, a refined
        // always-miss that hits is RTPF042.
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        for (forced, code) in [
            (Classification::AlwaysHit, Code::RefinedUnsoundAlwaysHit),
            (Classification::AlwaysMiss, Code::RefinedUnsoundAlwaysMiss),
        ] {
            let mut sink = DiagnosticSink::new(SeverityConfig::new());
            let s = audit_soundness_forced(
                &p,
                &config,
                &MemTiming::default(),
                &mut sink,
                &SoundnessOptions::default(),
                |_, _, _| (forced, RefineMark::Refined),
            )
            .unwrap();
            assert!(s.unsound > 0, "{forced:?} corruption must be caught");
            assert!(
                sink.diagnostics().iter().any(|d| d.code == code),
                "expected {code}: {}",
                sink.render_text()
            );
            assert!(sink.has_denials());
            assert_eq!(s.refined, s.refs_observed);
        }
    }

    #[test]
    fn examined_but_unclassified_gaps_fire_rtpf041() {
        // Mark every reference examined-and-unclassified: single-outcome
        // references become RTPF041 residual-gap notes (never denials).
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_soundness_forced(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, _, _| (Classification::Unclassified, RefineMark::Examined),
        )
        .unwrap();
        assert_eq!(s.unsound, 0);
        assert!(s.precision_gaps > 0);
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::RefinedPrecisionGap));
        assert!(sink
            .diagnostics()
            .iter()
            .all(|d| d.code != Code::PrecisionGap));
        assert!(!sink.has_denials(), "{}", sink.render_text());
    }

    #[test]
    fn cheap_and_refined_scores_agree_without_refinement() {
        // Under LRU the refinement never runs, so both precision views
        // must coincide.
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_soundness(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
        )
        .unwrap();
        assert_eq!(s.precision_score, s.cheap_precision_score);
        assert_eq!(s.refined, 0);
    }

    #[test]
    fn walks_are_deterministic_given_the_seed() {
        let p = demo();
        let config = CacheConfig::new(1, 16, 128).unwrap();
        let run = || {
            let mut sink = DiagnosticSink::new(SeverityConfig::new());
            let s = audit_soundness(
                &p,
                &config,
                &MemTiming::default(),
                &mut sink,
                &SoundnessOptions::default(),
            )
            .unwrap();
            (s.refs_observed, s.precision_gaps, sink.diagnostics().len())
        };
        assert_eq!(run(), run());
    }

    fn demo_hierarchy() -> HierarchyConfig {
        let l1 = CacheConfig::new(2, 16, 256).unwrap();
        let l2 = CacheConfig::new(8, 16, 2048).unwrap();
        HierarchyConfig::from_levels(&[l1, l2]).unwrap()
    }

    #[test]
    fn honest_two_level_analysis_has_no_unsound_findings() {
        let p = demo();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_hierarchy_soundness(
            &p,
            &demo_hierarchy(),
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
        )
        .unwrap();
        assert_eq!(s.unsound, 0, "{}", sink.render_text());
        assert!(!sink.has_denials(), "{}", sink.render_text());
        assert!(s.refs_observed > 0);
    }

    #[test]
    fn violated_l1_filter_fires_rtpf050() {
        // Claim every reference is L1 always-hit as far as the L2 is
        // concerned (filter `Never`): cold L1 misses still reach the L2
        // concretely, so the filter lie cannot escape.
        let p = demo();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_hierarchy_soundness_forced(
            &p,
            &demo_hierarchy(),
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, c, _| (c, CacheAccessClassification::Never),
        )
        .unwrap();
        assert!(s.unsound > 0);
        assert!(
            sink.diagnostics()
                .iter()
                .any(|d| d.code == Code::HierarchyFilterViolated),
            "expected RTPF050: {}",
            sink.render_text()
        );
        assert!(sink.has_denials());
    }

    #[test]
    fn broken_l2_must_analysis_fires_rtpf051() {
        // Force L2 always-hit everywhere: the very first L2 access of a
        // cold walk fills from DRAM, contradicting the claim.
        let p = demo();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_hierarchy_soundness_forced(
            &p,
            &demo_hierarchy(),
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, _, cac| (Classification::AlwaysHit, cac),
        )
        .unwrap();
        assert!(s.unsound > 0);
        assert!(
            sink.diagnostics()
                .iter()
                .any(|d| d.code == Code::UnsoundL2AlwaysHit),
            "expected RTPF051: {}",
            sink.render_text()
        );
        assert!(sink.has_denials());
    }

    #[test]
    fn broken_l2_may_analysis_fires_rtpf052() {
        // A loop that thrashes a tiny L1 but stays resident in the L2:
        // rest-context L1 misses hit the L2 concretely, so classifying the
        // L2 always-miss must be caught.
        let p = Shape::loop_(16, Shape::code(40)).compile("l2-resident");
        let l1 = CacheConfig::new(1, 16, 128).unwrap();
        let l2 = CacheConfig::new(8, 16, 4096).unwrap();
        let hierarchy = HierarchyConfig::from_levels(&[l1, l2]).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_hierarchy_soundness_forced(
            &p,
            &hierarchy,
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
            |_, _, cac| (Classification::AlwaysMiss, cac),
        )
        .unwrap();
        assert!(s.unsound > 0);
        assert!(
            sink.diagnostics()
                .iter()
                .any(|d| d.code == Code::UnsoundL2AlwaysMiss),
            "expected RTPF052: {}",
            sink.render_text()
        );
    }

    #[test]
    fn single_level_walks_never_touch_the_l2_counters() {
        // The degenerate guard at the audit layer: with no L2 the
        // hierarchy entry point must agree with the single-level one and
        // raise none of the RTPF05x codes.
        let p = demo();
        let config = CacheConfig::new(2, 16, 256).unwrap();
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        let s = audit_hierarchy_soundness(
            &p,
            &HierarchyConfig::l1_only(config),
            &MemTiming::default(),
            &mut sink,
            &SoundnessOptions::default(),
        )
        .unwrap();
        let mut sink1 = DiagnosticSink::new(SeverityConfig::new());
        let s1 = audit_soundness(
            &p,
            &config,
            &MemTiming::default(),
            &mut sink1,
            &SoundnessOptions::default(),
        )
        .unwrap();
        assert_eq!(s.unsound, s1.unsound);
        assert_eq!(s.refs_observed, s1.refs_observed);
        assert_eq!(s.precision_gaps, s1.precision_gaps);
        assert!(!sink.diagnostics().iter().any(|d| matches!(
            d.code,
            Code::HierarchyFilterViolated | Code::UnsoundL2AlwaysHit | Code::UnsoundL2AlwaysMiss
        )));
    }
}
