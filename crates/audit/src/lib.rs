//! Static-analysis audit for the prefetch toolchain.
//!
//! Three layers, all reporting structured [`Diagnostic`]s with stable
//! `RTPF0xx` codes through a shared [`DiagnosticSink`] (catalog in
//! DESIGN.md §8):
//!
//! 1. [`ir`] — lints over a [`Program`](rtpf_isa::Program): unreachable
//!    and empty blocks, loop-bound defects, irreducible cycles,
//!    entry/exit invariants, layout contiguity, prefetch-target sanity;
//! 2. [`soundness`] — the abstract must/may classification cross-checked
//!    against the concrete LRU cache on the same VIVU graph (an
//!    always-hit that concretely misses is a soundness bug; an
//!    unclassified that always hits is a precision gap);
//! 3. [`transform`] — the optimizer's output re-verified against the
//!    paper's joint criterion (Definition 10, Lemma 1, Lemma 2) and
//!    Theorem 1.
//!
//! The `rtpf audit` CLI subcommand drives all three; CI runs it over the
//! whole benchmark suite at `--deny warnings`.
//!
//! # Example
//!
//! ```
//! use rtpf_audit::{audit_ir, DiagnosticSink, SeverityConfig};
//! use rtpf_isa::shape::Shape;
//!
//! let p = Shape::loop_(10, Shape::code(8)).compile("demo");
//! let mut sink = DiagnosticSink::new(SeverityConfig::new());
//! audit_ir(&p, &mut sink);
//! assert!(!sink.has_denials());
//! ```

#![forbid(unsafe_code)]

pub mod diag;
pub mod ir;
pub mod soundness;
pub mod transform;

pub use diag::{Code, Diagnostic, DiagnosticSink, Level, Severity, SeverityConfig, Span};
pub use ir::{audit_ir, audit_layout};
pub use soundness::{
    audit_hierarchy_soundness, audit_hierarchy_soundness_forced, audit_soundness,
    audit_soundness_artifact, audit_soundness_forced, audit_soundness_with, SoundnessOptions,
    SoundnessSummary,
};
pub use transform::{audit_transform, TransformSummary};
