//! Structured diagnostics: codes, severities, spans, and the sink.
//!
//! Every finding of the audit passes is a [`Diagnostic`] carrying a stable
//! [`Code`] (the `RTPF0xx` catalog in DESIGN.md §8), an effective
//! [`Severity`], and a [`Span`] anchoring it to a program element. The
//! [`DiagnosticSink`] collects findings, applies the severity
//! configuration (`--deny warnings`, per-code promotion/suppression), and
//! renders either human text or line-oriented JSON.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use rtpf_isa::{BlockId, InstrId};

/// Stable lint/audit codes. The numeric ranges partition by audit layer:
/// `001..=019` IR lints, `020..=029` soundness audit, `030..=039`
/// transform audit, `040..=049` refinement audit (the soundness
/// cross-check specialized to classifications the exact FIFO/PLRU
/// exploration produced), `050..=059` hierarchy audit (the concrete
/// two-level walk cross-checked against the per-level classifications of
/// DESIGN.md §14), `090..=099` tool-level failures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Code {
    /// RTPF001: a block is not reachable from the entry.
    UnreachableBlock,
    /// RTPF002: a block holds no instructions.
    EmptyBlock,
    /// RTPF003: a loop header carries no iteration bound.
    MissingLoopBound,
    /// RTPF004: a loop header carries a zero iteration bound.
    ZeroLoopBound,
    /// RTPF005: the CFG contains an irreducible cycle.
    IrreducibleLoop,
    /// RTPF006: the entry block has predecessors.
    EntryHasPreds,
    /// RTPF007: the program has no exit block.
    NoExit,
    /// RTPF008: layout address ranges overlap or leave gaps.
    LayoutAnomaly,
    /// RTPF009: a prefetch targets an instruction not in the program, or
    /// another prefetch (Eq. 9 forbids prefetching for a prefetch).
    DanglingPrefetch,
    /// RTPF010: a prefetch target is never referenced downstream.
    UselessPrefetch,
    /// RTPF020: an always-hit reference concretely missed (unsound).
    UnsoundAlwaysHit,
    /// RTPF021: an unclassified reference concretely always hit.
    PrecisionGap,
    /// RTPF022: an always-miss reference concretely hit (unsound).
    UnsoundAlwaysMiss,
    /// RTPF040: a *refined* always-hit (upgraded by the exact FIFO/PLRU
    /// exploration) concretely missed — the refinement itself is unsound.
    RefinedUnsoundAlwaysHit,
    /// RTPF041: a reference the refinement examined but left unclassified
    /// showed a single concrete outcome across every seeded walk — a
    /// residual precision gap the exploration could not close.
    RefinedPrecisionGap,
    /// RTPF042: a *refined* always-miss concretely hit — the refinement
    /// itself is unsound.
    RefinedUnsoundAlwaysMiss,
    /// RTPF050: a reference whose L1 classification admits no L2 access
    /// (L1 always-hit, filter `Never`) concretely reached the L2 — the
    /// hierarchy filter itself is unsound.
    HierarchyFilterViolated,
    /// RTPF051: an L2 always-hit reference concretely filled from DRAM
    /// (unsound: the WCET bound charged an L2 hit for a DRAM access).
    UnsoundL2AlwaysHit,
    /// RTPF052: an L2 always-miss reference concretely hit in the L2
    /// (unsound may analysis at the second level).
    UnsoundL2AlwaysMiss,
    /// RTPF030: input and output are not prefetch-equivalent.
    NotEquivalent,
    /// RTPF031: the transform increased `τ_w`.
    WcetRegression,
    /// RTPF032: an inserted prefetch violates the Definition 10 window.
    IneffectivePrefetch,
    /// RTPF033: an inserted prefetch's target still classifies as a miss.
    UnprofitablePrefetch,
    /// RTPF034: an inserted prefetch lies off the final WCET path.
    OffPathPrefetch,
    /// RTPF035: the transform moved an original instruction (Lemma 2).
    RelocationUnsafe,
    /// RTPF090: a tool-level failure (load, parse, analysis, optimize).
    ToolError,
}

impl Code {
    /// Every code, in catalog order.
    pub const ALL: [Code; 26] = [
        Code::UnreachableBlock,
        Code::EmptyBlock,
        Code::MissingLoopBound,
        Code::ZeroLoopBound,
        Code::IrreducibleLoop,
        Code::EntryHasPreds,
        Code::NoExit,
        Code::LayoutAnomaly,
        Code::DanglingPrefetch,
        Code::UselessPrefetch,
        Code::UnsoundAlwaysHit,
        Code::PrecisionGap,
        Code::UnsoundAlwaysMiss,
        Code::RefinedUnsoundAlwaysHit,
        Code::RefinedPrecisionGap,
        Code::RefinedUnsoundAlwaysMiss,
        Code::HierarchyFilterViolated,
        Code::UnsoundL2AlwaysHit,
        Code::UnsoundL2AlwaysMiss,
        Code::NotEquivalent,
        Code::WcetRegression,
        Code::IneffectivePrefetch,
        Code::UnprofitablePrefetch,
        Code::OffPathPrefetch,
        Code::RelocationUnsafe,
        Code::ToolError,
    ];

    /// The stable `RTPF0xx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnreachableBlock => "RTPF001",
            Code::EmptyBlock => "RTPF002",
            Code::MissingLoopBound => "RTPF003",
            Code::ZeroLoopBound => "RTPF004",
            Code::IrreducibleLoop => "RTPF005",
            Code::EntryHasPreds => "RTPF006",
            Code::NoExit => "RTPF007",
            Code::LayoutAnomaly => "RTPF008",
            Code::DanglingPrefetch => "RTPF009",
            Code::UselessPrefetch => "RTPF010",
            Code::UnsoundAlwaysHit => "RTPF020",
            Code::PrecisionGap => "RTPF021",
            Code::UnsoundAlwaysMiss => "RTPF022",
            Code::RefinedUnsoundAlwaysHit => "RTPF040",
            Code::RefinedPrecisionGap => "RTPF041",
            Code::RefinedUnsoundAlwaysMiss => "RTPF042",
            Code::HierarchyFilterViolated => "RTPF050",
            Code::UnsoundL2AlwaysHit => "RTPF051",
            Code::UnsoundL2AlwaysMiss => "RTPF052",
            Code::NotEquivalent => "RTPF030",
            Code::WcetRegression => "RTPF031",
            Code::IneffectivePrefetch => "RTPF032",
            Code::UnprofitablePrefetch => "RTPF033",
            Code::OffPathPrefetch => "RTPF034",
            Code::RelocationUnsafe => "RTPF035",
            Code::ToolError => "RTPF090",
        }
    }

    /// Parses an `RTPF0xx` identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// Catalog severity before any configuration is applied.
    pub fn default_severity(self) -> Severity {
        match self {
            // Structural defects the analyses cannot tolerate.
            Code::UnreachableBlock
            | Code::MissingLoopBound
            | Code::ZeroLoopBound
            | Code::IrreducibleLoop
            | Code::NoExit
            | Code::DanglingPrefetch => Severity::Deny,
            // Genuine soundness / Theorem 1 violations. A refined
            // classification that disagrees with a concrete walk is a hard
            // failure exactly like a cheap one: the exploration claims
            // every reachable state, so one counterexample disproves it.
            Code::UnsoundAlwaysHit
            | Code::UnsoundAlwaysMiss
            | Code::RefinedUnsoundAlwaysHit
            | Code::RefinedUnsoundAlwaysMiss
            | Code::HierarchyFilterViolated
            | Code::UnsoundL2AlwaysHit
            | Code::UnsoundL2AlwaysMiss
            | Code::NotEquivalent
            | Code::WcetRegression
            | Code::RelocationUnsafe
            | Code::ToolError => Severity::Deny,
            // Suspicious but survivable.
            Code::EntryHasPreds
            | Code::LayoutAnomaly
            | Code::UselessPrefetch
            | Code::IneffectivePrefetch
            | Code::UnprofitablePrefetch => Severity::Warn,
            // Informational: legitimate in compiler-generated code, or a
            // precision (not soundness) signal.
            Code::EmptyBlock
            | Code::PrecisionGap
            | Code::RefinedPrecisionGap
            | Code::OffPathPrefetch => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How seriously a diagnostic is taken. Ordered: `Note < Warn < Deny`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational; never fails an audit.
    Note,
    /// Suspicious; fails under `--deny warnings`.
    Warn,
    /// A defect; always fails the audit.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// Where a diagnostic points: a program, optionally narrowed to a basic
/// block, an instruction, and the cache configuration it was found under.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Name of the audited program.
    pub program: String,
    /// Basic block the finding anchors to, if any.
    pub block: Option<BlockId>,
    /// Instruction the finding anchors to, if any.
    pub instr: Option<InstrId>,
    /// Label of the cache configuration (e.g. `k7`), for findings that
    /// only exist under a specific geometry.
    pub config: Option<String>,
}

impl Span {
    /// A span covering the whole program.
    pub fn program(name: impl Into<String>) -> Span {
        Span {
            program: name.into(),
            ..Span::default()
        }
    }

    /// A span anchored to a basic block.
    pub fn block(name: impl Into<String>, b: BlockId) -> Span {
        Span {
            program: name.into(),
            block: Some(b),
            ..Span::default()
        }
    }

    /// A span anchored to an instruction inside a block.
    pub fn instr(name: impl Into<String>, b: BlockId, i: InstrId) -> Span {
        Span {
            program: name.into(),
            block: Some(b),
            instr: Some(i),
            ..Span::default()
        }
    }

    /// Returns this span tagged with a cache-configuration label.
    pub fn under(mut self, config: impl Into<String>) -> Span {
        self.config = Some(config.into());
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.program)?;
        if let Some(b) = self.block {
            write!(f, ":{b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, ":{i}")?;
        }
        if let Some(k) = &self.config {
            write!(f, "@{k}")?;
        }
        Ok(())
    }
}

/// One audit finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable catalog code.
    pub code: Code,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// Program element the finding anchors to.
    pub span: Span,
    /// What was found.
    pub message: String,
    /// How to address it, when the pass knows.
    pub help: Option<String>,
}

/// Per-code severity policy: keep the catalog default, force a level, or
/// drop the diagnostic entirely.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Level {
    /// Use [`Code::default_severity`].
    #[default]
    Default,
    /// Suppress the diagnostic.
    Allow,
    /// Force [`Severity::Note`].
    Note,
    /// Force [`Severity::Warn`].
    Warn,
    /// Force [`Severity::Deny`].
    Deny,
}

/// Severity configuration applied by the sink as findings arrive.
#[derive(Clone, Debug, Default)]
pub struct SeverityConfig {
    /// Promote every warning to deny (`--deny warnings`).
    pub deny_warnings: bool,
    overrides: BTreeMap<Code, Level>,
}

impl SeverityConfig {
    /// The default policy: catalog severities, warnings stay warnings.
    pub fn new() -> SeverityConfig {
        SeverityConfig::default()
    }

    /// Sets the policy for one code.
    pub fn set(&mut self, code: Code, level: Level) {
        self.overrides.insert(code, level);
    }

    /// Effective severity of `code`, or `None` when suppressed.
    pub fn effective(&self, code: Code) -> Option<Severity> {
        let base = match self.overrides.get(&code).copied().unwrap_or_default() {
            Level::Allow => return None,
            Level::Default => code.default_severity(),
            Level::Note => Severity::Note,
            Level::Warn => Severity::Warn,
            Level::Deny => Severity::Deny,
        };
        // `--deny warnings` promotes warn-level findings only; notes are
        // informational and stay below the failure threshold.
        if self.deny_warnings && base == Severity::Warn {
            Some(Severity::Deny)
        } else {
            Some(base)
        }
    }
}

/// Collects diagnostics from the audit passes, applying the severity
/// configuration as they arrive.
///
/// # Example
///
/// ```
/// use rtpf_audit::{Code, DiagnosticSink, SeverityConfig, Span};
///
/// let mut sink = DiagnosticSink::new(SeverityConfig::new());
/// sink.report(Code::NoExit, Span::program("demo"), "no exit block", None);
/// assert!(sink.has_denials());
/// assert!(sink.render_text().contains("RTPF007"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiagnosticSink {
    config: SeverityConfig,
    diags: Vec<Diagnostic>,
}

impl DiagnosticSink {
    /// An empty sink with the given severity policy.
    pub fn new(config: SeverityConfig) -> DiagnosticSink {
        DiagnosticSink {
            config,
            diags: Vec::new(),
        }
    }

    /// Records a finding unless its code is suppressed.
    pub fn report(
        &mut self,
        code: Code,
        span: Span,
        message: impl Into<String>,
        help: Option<String>,
    ) {
        if let Some(severity) = self.config.effective(code) {
            self.diags.push(Diagnostic {
                code,
                severity,
                span,
                message: message.into(),
                help,
            });
        }
    }

    /// All recorded findings, in arrival order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Absorbs another sink's findings, tagging each with a cache
    /// configuration label unless the finding already carries one.
    pub fn absorb(&mut self, other: DiagnosticSink, config_label: Option<&str>) {
        for mut d in other.diags {
            if d.span.config.is_none() {
                d.span.config = config_label.map(str::to_string);
            }
            self.diags.push(d);
        }
    }

    /// `(deny, warn, note)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.severity {
                Severity::Deny => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// Whether any finding reached deny level.
    pub fn has_denials(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Deny)
    }

    /// The severity policy this sink applies.
    pub fn config(&self) -> &SeverityConfig {
        &self.config
    }

    /// Renders every finding as indented human-readable text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diags {
            let _ = writeln!(s, "{}[{}]: {} ({})", d.severity, d.code, d.message, d.span);
            if let Some(h) = &d.help {
                let _ = writeln!(s, "  help: {h}");
            }
        }
        s
    }

    /// Renders every finding as one JSON object per line.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        for d in &self.diags {
            let mut o = String::new();
            let _ = write!(
                o,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"program\":{}",
                d.code,
                d.severity,
                json_str(&d.span.program)
            );
            if let Some(b) = d.span.block {
                let _ = write!(o, ",\"block\":{}", b.index());
            }
            if let Some(i) = d.span.instr {
                let _ = write!(o, ",\"instr\":{}", i.index());
            }
            if let Some(k) = &d.span.config {
                let _ = write!(o, ",\"config\":{}", json_str(k));
            }
            let _ = write!(o, ",\"message\":{}", json_str(&d.message));
            if let Some(h) = &d.help {
                let _ = write!(o, ",\"help\":{}", json_str(h));
            }
            o.push('}');
            let _ = writeln!(s, "{o}");
        }
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse_back() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert!(c.as_str().starts_with("RTPF"));
        }
        assert_eq!(Code::parse("rtpf020"), Some(Code::UnsoundAlwaysHit));
        assert_eq!(Code::parse("RTPF999"), None);
    }

    #[test]
    fn deny_warnings_promotes_warn_not_note() {
        let mut cfg = SeverityConfig::new();
        cfg.deny_warnings = true;
        assert_eq!(cfg.effective(Code::UselessPrefetch), Some(Severity::Deny));
        assert_eq!(cfg.effective(Code::EmptyBlock), Some(Severity::Note));
        assert_eq!(cfg.effective(Code::NoExit), Some(Severity::Deny));
    }

    #[test]
    fn allow_suppresses_and_overrides_force() {
        let mut cfg = SeverityConfig::new();
        cfg.set(Code::EmptyBlock, Level::Deny);
        cfg.set(Code::NoExit, Level::Allow);
        let mut sink = DiagnosticSink::new(cfg);
        sink.report(Code::EmptyBlock, Span::program("p"), "m", None);
        sink.report(Code::NoExit, Span::program("p"), "m", None);
        assert_eq!(sink.diagnostics().len(), 1);
        assert_eq!(sink.diagnostics()[0].severity, Severity::Deny);
    }

    #[test]
    fn json_escapes_and_renders_span_fields() {
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        sink.report(
            Code::UnsoundAlwaysHit,
            Span::instr("p \"q\"", BlockId(3), InstrId(7)).under("k9"),
            "line1\nline2",
            Some("fix it".into()),
        );
        let j = sink.render_json();
        assert!(j.contains("\"code\":\"RTPF020\""));
        assert!(j.contains("\\\"q\\\""));
        assert!(j.contains("\"block\":3"));
        assert!(j.contains("\"instr\":7"));
        assert!(j.contains("\"config\":\"k9\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"help\":\"fix it\""));
    }

    #[test]
    fn text_rendering_is_greppable() {
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        sink.report(
            Code::MissingLoopBound,
            Span::block("p", BlockId(2)),
            "loop bb2 has no bound",
            Some("call set_loop_bound".into()),
        );
        let t = sink.render_text();
        assert!(t.contains("error[RTPF003]"));
        assert!(t.contains("p:bb2"));
        assert!(t.contains("help: call set_loop_bound"));
    }
}
