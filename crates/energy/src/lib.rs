//! CACTI-style analytical energy and timing models.
//!
//! The paper obtained per-access energies, leakage power, and access times
//! from CACTI 6.5 for a 45 nm and a 32 nm process, with a 128 MB DRAM as
//! level-two memory. CACTI itself is not reproducible here, so this crate
//! provides analytical fits with the same *qualitative shape*, which is all
//! the paper's claims rely on:
//!
//! * dynamic read/fill energy grows with capacity, associativity and block
//!   size and **shrinks** with the technology node;
//! * leakage power grows linearly with capacity and **grows** as the node
//!   shrinks from 45 nm to 32 nm (the key trend behind the paper's
//!   cache-locking critique in §2.3);
//! * the miss penalty covers the DRAM access plus the line transfer;
//! * with a unified L2 ([`EnergyModel::with_l2`]) the L2 array adds its own
//!   read/fill and leakage terms, and only L1 misses that *also* miss in L2
//!   reach the DRAM — an L2 hit trades a cheap SRAM read for a DRAM burst.
//!
//! Absolute joule values are fitted placeholders, not CACTI output; all
//! experiment results are reported as *ratios* (optimized / original), as
//! in the paper's Inequations 10–12.
//!
//! The model is **replacement-policy-invariant** by design: per-access
//! energies, leakage, and timing depend only on the cache *geometry*
//! (capacity, associativity, block size) and the technology node, never
//! on how victims are chosen. The policy still changes *total* energy —
//! through the hit/miss counts in [`MemStats`] — but a FIFO or PLRU
//! configuration with the same geometry gets the exact same per-event
//! costs as LRU (the few policy-state bits are lost in the tag/data
//! array noise at any realistic geometry).
//!
//! # Example
//!
//! ```
//! use rtpf_cache::CacheConfig;
//! use rtpf_energy::{EnergyModel, MemStats, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CacheConfig::new(2, 16, 1024)?;
//! let model = EnergyModel::new(&config, Technology::Nm45);
//! let stats = MemStats {
//!     accesses: 1000,
//!     hits: 950,
//!     misses: 50,
//!     fills: 50,
//!     cycles: 2000,
//!     ..MemStats::default()
//! };
//! let e = model.energy_of(&stats);
//! assert!(e.total_nj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use std::fmt;

use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming};

/// CMOS process technology node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Technology {
    /// 45 nm node: higher dynamic energy, lower leakage, 1.0 ns cycle.
    Nm45,
    /// 32 nm node: lower dynamic energy, higher leakage, 0.8 ns cycle.
    Nm32,
}

impl Technology {
    /// Both nodes evaluated by the paper, in its order.
    pub fn all() -> [Technology; 2] {
        [Technology::Nm45, Technology::Nm32]
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        match self {
            Technology::Nm45 => 1.0,
            Technology::Nm32 => 0.8,
        }
    }

    fn dynamic_scale(&self) -> f64 {
        match self {
            Technology::Nm45 => 1.0,
            Technology::Nm32 => 0.72, // dynamic energy shrinks with node
        }
    }

    fn leakage_scale(&self) -> f64 {
        match self {
            Technology::Nm45 => 1.0,
            Technology::Nm32 => 1.9, // leakage worsens with node
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::Nm45 => f.write_str("45nm"),
            Technology::Nm32 => f.write_str("32nm"),
        }
    }
}

/// Memory-system activity counters produced by analysis or simulation.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct MemStats {
    /// Level-1 lookups (demand fetches and prefetch-instruction fetches).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Line fills (demand misses + completed prefetch operations).
    pub fills: u64,
    /// Total memory-subsystem busy cycles (drives static energy).
    pub cycles: u64,
    /// Level-2 lookups (L1 misses forwarded down). Zero without an L2.
    pub l2_accesses: u64,
    /// L2 lookups that hit.
    pub l2_hits: u64,
    /// L2 lookups that missed (and went to DRAM).
    pub l2_misses: u64,
    /// L2 line fills from DRAM.
    pub l2_fills: u64,
}

/// Energy breakdown in nanojoules.
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct EnergyBreakdown {
    /// L1 cache dynamic energy (reads + fills).
    pub cache_dynamic_nj: f64,
    /// L1 cache leakage over the busy window.
    pub cache_static_nj: f64,
    /// L2 cache dynamic energy (reads + fills). Zero without an L2.
    pub l2_dynamic_nj: f64,
    /// L2 cache leakage over the busy window. Zero without an L2.
    pub l2_static_nj: f64,
    /// DRAM access energy for fills that reached the DRAM.
    pub dram_dynamic_nj: f64,
    /// DRAM background power over the busy window.
    pub dram_static_nj: f64,
}

impl EnergyBreakdown {
    /// Total memory-system energy.
    ///
    /// The L2 terms are added between the cache and DRAM terms; when they
    /// are zero (no L2) the partial-sum sequence is identical to the
    /// single-level total, so L1-only results stay bit-for-bit stable.
    pub fn total_nj(&self) -> f64 {
        self.cache_dynamic_nj
            + self.cache_static_nj
            + self.l2_dynamic_nj
            + self.l2_static_nj
            + self.dram_dynamic_nj
            + self.dram_static_nj
    }
}

/// Analytical energy/timing model for one cache hierarchy and technology.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    config: CacheConfig,
    l2: Option<CacheConfig>,
    tech: Technology,
}

/// Reference geometry the fits are normalized to (256 B, 16 B, direct).
const BASE_CAPACITY: f64 = 256.0;
const BASE_BLOCK: f64 = 16.0;

/// Fitted constants (CACTI-shaped, see crate docs).
///
/// The balance mirrors the paper's setup (S.4): the level-two memory is a
/// **128 MB DRAM**, whose background (refresh + standby) power dwarfs the
/// per-access energies, and nanometer SRAM leaks heavily (§2.3's premise).
/// Time-proportional power therefore dominates, which is exactly why the
/// paper's measured energy improvement (−11.2%) tracks its ACET
/// improvement (−10.2%) so closely.
const READ_BASE_NJ: f64 = 0.012;
const LEAK_BASE_MW: f64 = 0.35;
const DRAM_ACCESS_BASE_NJ: f64 = 1.2;
const DRAM_STATIC_MW: f64 = 55.0;
const DRAM_LATENCY_CYCLES: u64 = 18;
/// Array latency of a unified on-chip L2 — a small fraction of the DRAM
/// round trip; both pay the same line transfer on top.
const L2_LATENCY_CYCLES: u64 = 6;

impl EnergyModel {
    /// A model for the given geometry and technology.
    pub fn new(config: &CacheConfig, tech: Technology) -> Self {
        EnergyModel {
            config: *config,
            l2: None,
            tech,
        }
    }

    /// A model for a full hierarchy: the L1 geometry plus, when present,
    /// a unified L2 whose array energies and leakage join the breakdown.
    pub fn for_hierarchy(hierarchy: &HierarchyConfig, tech: Technology) -> Self {
        EnergyModel {
            config: *hierarchy.l1(),
            l2: hierarchy.l2().copied(),
            tech,
        }
    }

    /// Adds a unified L2 geometry to the model.
    pub fn with_l2(mut self, l2: &CacheConfig) -> Self {
        self.l2 = Some(*l2);
        self
    }

    /// The L1 geometry being modelled.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The L2 geometry, when the model covers a two-level hierarchy.
    pub fn l2_config(&self) -> Option<&CacheConfig> {
        self.l2.as_ref()
    }

    /// The same fits applied to the L2 geometry, when present.
    fn l2_model(&self) -> Option<EnergyModel> {
        self.l2.map(|l2| EnergyModel::new(&l2, self.tech))
    }

    /// The technology node being modelled.
    pub fn technology(&self) -> Technology {
        self.tech
    }

    /// Dynamic energy of one cache read (tag + data) in nJ.
    pub fn read_energy_nj(&self) -> f64 {
        let cap = f64::from(self.config.capacity_bytes()) / BASE_CAPACITY;
        let assoc = f64::from(self.config.assoc());
        let block = f64::from(self.config.block_bytes()) / BASE_BLOCK;
        READ_BASE_NJ
            * cap.powf(0.45)
            * assoc.powf(0.25)
            * block.powf(0.15)
            * self.tech.dynamic_scale()
    }

    /// Dynamic energy of one line fill (write of a whole block) in nJ.
    pub fn fill_energy_nj(&self) -> f64 {
        // Filling writes `block` bytes: costlier than a read, scaling with
        // the line size.
        let block = f64::from(self.config.block_bytes()) / BASE_BLOCK;
        self.read_energy_nj() * (1.1 + 0.5 * block)
    }

    /// Cache leakage power in mW.
    pub fn leakage_mw(&self) -> f64 {
        let cap = f64::from(self.config.capacity_bytes()) / BASE_CAPACITY;
        LEAK_BASE_MW * cap * self.tech.leakage_scale()
    }

    /// DRAM energy per block transfer in nJ.
    pub fn dram_access_nj(&self) -> f64 {
        let block = f64::from(self.config.block_bytes()) / BASE_BLOCK;
        DRAM_ACCESS_BASE_NJ * (0.6 + 0.4 * block)
    }

    /// Cycle-level timing for this hierarchy: 1-cycle hits; misses pay the
    /// DRAM latency plus the line transfer (4 bytes/cycle). With an L2,
    /// an L1-miss-L2-hit pays only the L2 array latency plus the same
    /// transfer.
    pub fn timing(&self) -> MemTiming {
        let transfer = u64::from(self.config.block_bytes()) / 4;
        let penalty = DRAM_LATENCY_CYCLES + transfer;
        let base = MemTiming {
            hit_cycles: 1,
            miss_cycles: 1 + penalty,
            prefetch_latency: penalty,
            l2_hit_cycles: None,
        };
        match self.l2 {
            Some(_) => base.with_l2_hit(1 + L2_LATENCY_CYCLES + transfer),
            None => base,
        }
    }

    /// Energy of an execution with the given activity counters.
    ///
    /// Without an L2 every L1 fill is a DRAM burst; with one, only the
    /// fills that also missed in L2 (`l2_fills`) reach the DRAM, and the
    /// L2 array contributes its own dynamic and leakage terms.
    pub fn energy_of(&self, stats: &MemStats) -> EnergyBreakdown {
        let ns = stats.cycles as f64 * self.tech.cycle_ns();
        let (l2_dynamic_nj, l2_static_nj, dram_fills) = match self.l2_model() {
            Some(l2m) => (
                stats.l2_accesses as f64 * l2m.read_energy_nj()
                    + stats.l2_fills as f64 * l2m.fill_energy_nj(),
                l2m.leakage_mw() * ns / 1000.0,
                stats.l2_fills,
            ),
            None => (0.0, 0.0, stats.fills),
        };
        EnergyBreakdown {
            cache_dynamic_nj: stats.accesses as f64 * self.read_energy_nj()
                + stats.fills as f64 * self.fill_energy_nj(),
            // mW × ns = pJ; /1000 → nJ.
            cache_static_nj: self.leakage_mw() * ns / 1000.0,
            l2_dynamic_nj,
            l2_static_nj,
            dram_dynamic_nj: dram_fills as f64 * self.dram_access_nj(),
            dram_static_nj: DRAM_STATIC_MW * ns / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(assoc: u32, block: u32, cap: u32) -> CacheConfig {
        CacheConfig::new(assoc, block, cap).unwrap()
    }

    #[test]
    fn dynamic_energy_grows_with_capacity() {
        let small = EnergyModel::new(&cfg(2, 16, 256), Technology::Nm45);
        let large = EnergyModel::new(&cfg(2, 16, 8192), Technology::Nm45);
        assert!(large.read_energy_nj() > small.read_energy_nj());
        assert!(large.leakage_mw() > small.leakage_mw());
    }

    #[test]
    fn node_shrink_trades_dynamic_for_leakage() {
        let c = cfg(2, 16, 1024);
        let n45 = EnergyModel::new(&c, Technology::Nm45);
        let n32 = EnergyModel::new(&c, Technology::Nm32);
        assert!(n32.read_energy_nj() < n45.read_energy_nj());
        assert!(n32.leakage_mw() > n45.leakage_mw());
    }

    #[test]
    fn model_is_replacement_policy_invariant() {
        use rtpf_cache::ReplacementPolicy;
        let base = cfg(4, 16, 1024);
        let stats = MemStats {
            accesses: 1000,
            hits: 900,
            misses: 100,
            fills: 100,
            cycles: 3000,
            ..MemStats::default()
        };
        for policy in ReplacementPolicy::ALL {
            let c = base.with_policy(policy).unwrap();
            for tech in Technology::all() {
                let m = EnergyModel::new(&c, tech);
                let r = EnergyModel::new(&base, tech);
                assert_eq!(m.read_energy_nj(), r.read_energy_nj());
                assert_eq!(m.fill_energy_nj(), r.fill_energy_nj());
                assert_eq!(m.leakage_mw(), r.leakage_mw());
                assert_eq!(m.timing().miss_cycles, r.timing().miss_cycles);
                assert_eq!(
                    m.energy_of(&stats).total_nj(),
                    r.energy_of(&stats).total_nj()
                );
            }
        }
    }

    #[test]
    fn miss_penalty_scales_with_block_size() {
        let t16 = EnergyModel::new(&cfg(1, 16, 256), Technology::Nm45).timing();
        let t32 = EnergyModel::new(&cfg(1, 32, 256), Technology::Nm45).timing();
        assert!(t32.miss_cycles > t16.miss_cycles);
        assert_eq!(t16.hit_cycles, 1);
    }

    #[test]
    fn energy_attribution_is_additive() {
        let m = EnergyModel::new(&cfg(2, 16, 1024), Technology::Nm32);
        let s1 = MemStats {
            accesses: 100,
            hits: 90,
            misses: 10,
            fills: 10,
            cycles: 500,
            ..MemStats::default()
        };
        let s2 = MemStats {
            accesses: 200,
            hits: 180,
            misses: 20,
            fills: 20,
            cycles: 1000,
            ..MemStats::default()
        };
        let e1 = m.energy_of(&s1).total_nj();
        let e2 = m.energy_of(&s2).total_nj();
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn fewer_misses_means_less_energy_and_shorter_runtime_less_static() {
        let m = EnergyModel::new(&cfg(2, 16, 1024), Technology::Nm45);
        let timing = m.timing();
        let slow = MemStats {
            accesses: 1000,
            hits: 800,
            misses: 200,
            fills: 200,
            cycles: 800 * timing.hit_cycles + 200 * timing.miss_cycles,
            ..MemStats::default()
        };
        let fast = MemStats {
            accesses: 1000,
            hits: 950,
            misses: 50,
            fills: 50,
            cycles: 950 * timing.hit_cycles + 50 * timing.miss_cycles,
            ..MemStats::default()
        };
        let es = m.energy_of(&slow);
        let ef = m.energy_of(&fast);
        assert!(ef.total_nj() < es.total_nj());
        assert!(ef.cache_static_nj < es.cache_static_nj);
        assert!(ef.dram_dynamic_nj < es.dram_dynamic_nj);
    }

    #[test]
    fn timing_is_consistent_with_memtiming_contract() {
        let m = EnergyModel::new(&cfg(4, 32, 4096), Technology::Nm32);
        let t = m.timing();
        assert!(t.miss_cycles > t.hit_cycles);
        assert!(t.prefetch_latency >= t.miss_cycles - t.hit_cycles);
    }

    #[test]
    fn l1_only_breakdown_has_zero_l2_terms() {
        let m = EnergyModel::new(&cfg(2, 16, 1024), Technology::Nm45);
        let stats = MemStats {
            accesses: 1000,
            hits: 900,
            misses: 100,
            fills: 100,
            cycles: 3000,
            ..MemStats::default()
        };
        let e = m.energy_of(&stats);
        assert_eq!(e.l2_dynamic_nj, 0.0);
        assert_eq!(e.l2_static_nj, 0.0);
        // With zero L2 terms the total is exactly the four-term sum.
        assert_eq!(
            e.total_nj(),
            e.cache_dynamic_nj + e.cache_static_nj + e.dram_dynamic_nj + e.dram_static_nj
        );
        assert_eq!(m.timing().l2_hit_cycles, None);
        assert!(m.l2_config().is_none());
    }

    #[test]
    fn hierarchy_timing_orders_the_three_latencies() {
        let l1 = cfg(2, 16, 256);
        let l2 = cfg(4, 16, 4096);
        let m = EnergyModel::new(&l1, Technology::Nm45).with_l2(&l2);
        let t = m.timing();
        let l2_hit = t.l2_hit_cycles.expect("two-level timing has an L2 latency");
        assert!(t.hit_cycles < l2_hit);
        assert!(l2_hit < t.miss_cycles);
        // Same line transfer on top of either array latency.
        let transfer = u64::from(l1.block_bytes()) / 4;
        assert_eq!(l2_hit, 1 + L2_LATENCY_CYCLES + transfer);
        assert_eq!(t.miss_cycles, 1 + DRAM_LATENCY_CYCLES + transfer);
        // The base fields are untouched by the L2.
        let base = EnergyModel::new(&l1, Technology::Nm45).timing();
        assert_eq!(t.hit_cycles, base.hit_cycles);
        assert_eq!(t.miss_cycles, base.miss_cycles);
        assert_eq!(t.prefetch_latency, base.prefetch_latency);
    }

    #[test]
    fn for_hierarchy_matches_with_l2() {
        let l1 = cfg(2, 16, 256);
        let l2 = cfg(4, 16, 4096);
        let h = HierarchyConfig::two_level(l1, l2).unwrap();
        let a = EnergyModel::for_hierarchy(&h, Technology::Nm32);
        let b = EnergyModel::new(&l1, Technology::Nm32).with_l2(&l2);
        assert_eq!(a.timing(), b.timing());
        assert_eq!(a.l2_config(), Some(&l2));
        let d = EnergyModel::for_hierarchy(&HierarchyConfig::l1_only(l1), Technology::Nm32);
        assert!(d.l2_config().is_none());
        assert_eq!(d.timing(), EnergyModel::new(&l1, Technology::Nm32).timing());
    }

    #[test]
    fn l2_hits_absorb_dram_energy() {
        let l1 = cfg(2, 16, 256);
        let l2 = cfg(4, 16, 4096);
        let m = EnergyModel::new(&l1, Technology::Nm45).with_l2(&l2);
        let t = m.timing();
        let l2_hit = t.l2_hit_cycles.unwrap();
        // Same L1 behaviour; one run catches most misses in the L2.
        let absorbed = MemStats {
            accesses: 1000,
            hits: 800,
            misses: 200,
            fills: 200,
            l2_accesses: 200,
            l2_hits: 180,
            l2_misses: 20,
            l2_fills: 20,
            cycles: 800 * t.hit_cycles + 180 * l2_hit + 20 * t.miss_cycles,
        };
        let cold = MemStats {
            accesses: 1000,
            hits: 800,
            misses: 200,
            fills: 200,
            l2_accesses: 200,
            l2_hits: 0,
            l2_misses: 200,
            l2_fills: 200,
            cycles: 800 * t.hit_cycles + 200 * t.miss_cycles,
        };
        let ea = m.energy_of(&absorbed);
        let ec = m.energy_of(&cold);
        // Only the 20 L2 misses reach the DRAM.
        assert_eq!(ea.dram_dynamic_nj, 20.0 * m.dram_access_nj());
        assert_eq!(ec.dram_dynamic_nj, 200.0 * m.dram_access_nj());
        assert!(ea.l2_dynamic_nj > 0.0);
        assert!(ea.l2_static_nj > 0.0);
        assert!(ea.total_nj() < ec.total_nj());
    }

    #[test]
    fn l2_leakage_scales_with_its_capacity() {
        let l1 = cfg(2, 16, 256);
        let small = EnergyModel::new(&l1, Technology::Nm32).with_l2(&cfg(4, 16, 2048));
        let large = EnergyModel::new(&l1, Technology::Nm32).with_l2(&cfg(4, 16, 16384));
        let stats = MemStats {
            accesses: 100,
            hits: 100,
            cycles: 100,
            ..MemStats::default()
        };
        let es = small.energy_of(&stats);
        let el = large.energy_of(&stats);
        assert!(el.l2_static_nj > es.l2_static_nj);
        // L1 terms are independent of the L2 geometry.
        assert_eq!(es.cache_dynamic_nj, el.cache_dynamic_nj);
        assert_eq!(es.cache_static_nj, el.cache_static_nj);
    }
}
