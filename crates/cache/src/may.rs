//! May analysis: which blocks *might* be cached.
//!
//! Abstract may states assign each block a lower bound on its LRU age. A
//! block absent from the may state is cached in **no** concrete state the
//! abstract state represents, so a reference to it is an *always miss*.
//!
//! For LRU the domain is exact. FIFO and tree-PLRU have no finite LRU
//! reduction on the may side (a FIFO block ages only on misses, which the
//! abstract domain cannot distinguish from hits; a PLRU block can be
//! protected indefinitely by the tree bits), so their may domain is
//! *unbounded* ([`ReplacementPolicy::UNBOUNDED`](crate::ReplacementPolicy::UNBOUNDED)):
//! possibly-cached blocks never age out, and only blocks that were never
//! accessed on any reaching path classify as always-miss. Sound for any
//! policy, but strictly less precise than the exact LRU domain.

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;
use crate::policy::ReplacementPolicy;

/// Abstract may cache state.
///
/// Stored as a single sorted vector of `(block, min-age)` entries — the
/// same flat layout as [`crate::MustState`], chosen so each state costs
/// one allocation instead of `n_sets × assoc` bucket vectors. Each block
/// appears at most once and ages stay below the policy's effective
/// associativity (which is [`ReplacementPolicy::UNBOUNDED`] for FIFO and
/// tree-PLRU — see the module docs).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MayState {
    /// Sorted by block id: possibly-cached blocks with their minimal age.
    entries: Vec<(MemBlockId, u32)>,
    assoc: u32,
    n_sets: u32,
}

impl MayState {
    /// The empty may state (nothing possibly cached): the correct entry
    /// state for a cold cache.
    pub fn new(config: &CacheConfig) -> Self {
        MayState {
            entries: Vec::new(),
            assoc: config.policy().may_ways(config.assoc()),
            n_sets: config.n_sets(),
        }
    }

    /// Minimal age of `block`, if it might be cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        self.entries
            .binary_search_by_key(&block, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `block` might be cached. A `false` answer classifies a
    /// reference to it as always-miss.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Abstract may update: the referenced block gets minimal age 0; blocks
    /// whose minimal age was ≤ the referenced block's move one step older;
    /// blocks aging past the (effective) associativity are definitely
    /// evicted. In an unbounded domain nothing ever ages out: the update
    /// only records that the block may now be cached.
    pub fn update(&mut self, block: MemBlockId) {
        if self.assoc == ReplacementPolicy::UNBOUNDED {
            if let Err(pos) = self.entries.binary_search_by_key(&block, |e| e.0) {
                self.entries.insert(pos, (block, 0));
            }
            return;
        }
        let n_sets = u64::from(self.n_sets);
        let set = block.0 % n_sets;
        let assoc = self.assoc;
        // On a hit at age h blocks with age ≤ h age by one; on a miss every
        // same-set block does. Either way, reaching the associativity means
        // definite eviction.
        let bump_max = self.age(block).unwrap_or(assoc - 1);
        self.entries.retain_mut(|e| {
            if e.0 == block {
                return false; // reinserted at age 0 below
            }
            if e.0 .0 % n_sets == set && e.1 <= bump_max {
                e.1 += 1;
                return e.1 < assoc;
            }
            true
        });
        let pos = self
            .entries
            .binary_search_by_key(&block, |e| e.0)
            .unwrap_err();
        self.entries.insert(pos, (block, 0));
    }

    /// May join: union of both sides, keeping the *minimal* age.
    pub fn join(&self, other: &MayState) -> MayState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        let mut entries = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => {
                    entries.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entries.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    entries.push((a.0, a.1.min(b.1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        entries.extend_from_slice(&self.entries[i..]);
        entries.extend_from_slice(&other.entries[j..]);
        MayState {
            entries,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All possibly-cached blocks with their minimal ages.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of possibly-cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block might be cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for MayState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // An unbounded domain has no fixed age rows; print only the ages
        // actually present (all 0 in practice).
        let rows = if self.assoc == ReplacementPolicy::UNBOUNDED {
            self.entries.iter().map(|e| e.1 + 1).max().unwrap_or(1)
        } else {
            self.assoc
        };
        for s in 0..u64::from(self.n_sets) {
            write!(f, "set {s}:")?;
            for h in 0..rows {
                let cells: Vec<String> = self
                    .entries
                    .iter()
                    .filter(|e| e.0 .0 % u64::from(self.n_sets) == s && e.1 == h)
                    .map(|e| e.0.to_string())
                    .collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap()
    }

    #[test]
    fn absent_block_is_definitely_uncached() {
        let m = MayState::new(&cfg());
        assert!(!m.contains(MemBlockId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn update_tracks_minimal_ages() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 falls out (min age would be 2)
        assert!(!m.contains(MemBlockId(1)));
    }

    #[test]
    fn join_is_union_with_min_age() {
        let mut a = MayState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        let mut b = MayState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // 1 at age 0, 2 at age 1
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(0));
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // only in b
    }

    #[test]
    fn unbounded_domain_never_forgets_a_block() {
        use crate::policy::ReplacementPolicy;
        for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Plru] {
            let config = CacheConfig::new(2, 16, 32)
                .unwrap()
                .with_policy(policy)
                .unwrap();
            let mut m = MayState::new(&config);
            for b in 0..100u64 {
                m.update(MemBlockId(b));
            }
            // Far beyond the 2 ways, every accessed block is still "maybe
            // cached" (the domain cannot rule eviction out)...
            for b in 0..100u64 {
                assert!(m.contains(MemBlockId(b)), "{policy}: lost block {b}");
            }
            // ...and a never-accessed block still classifies always-miss.
            assert!(!m.contains(MemBlockId(100)));
            // Display terminates and shows only present age rows.
            assert!(m.to_string().contains("age0"));
            assert!(!m.to_string().contains("age1"));
        }
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Every concretely-cached block must appear in the may state.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MayState::new(&config);
        for &b in &[3u64, 7, 3, 11, 15, 7, 3, 4, 8, 4] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for blk in c.blocks() {
                assert!(m.contains(blk), "concrete holds {blk} but may lost it");
            }
        }
    }

    #[test]
    fn hit_update_ages_siblings() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // ages: 2→0, 1→1
        m.update(MemBlockId(2)); // hit at age 0: nothing else younger
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
    }

    #[test]
    fn hit_update_leaves_older_blocks_alone() {
        // 4-way single set: a hit at age 1 must not disturb ages > 1.
        let config = CacheConfig::new(4, 16, 64).unwrap();
        let mut m = MayState::new(&config);
        for b in [1u64, 2, 3, 4] {
            m.update(MemBlockId(b));
        }
        // Ages now: 4→0, 3→1, 2→2, 1→3.
        m.update(MemBlockId(3)); // hit at age 1: ages 0..=1 bump, rest stay
        assert_eq!(m.age(MemBlockId(3)), Some(0));
        assert_eq!(m.age(MemBlockId(4)), Some(1));
        assert_eq!(m.age(MemBlockId(2)), Some(2)); // untouched
        assert_eq!(m.age(MemBlockId(1)), Some(3)); // untouched
    }
}
