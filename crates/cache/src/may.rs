//! May analysis: which blocks *might* be cached.
//!
//! Abstract may states assign each block a lower bound on its LRU age. A
//! block absent from the may state is cached in **no** concrete state the
//! abstract state represents, so a reference to it is an *always miss*.

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;

/// Abstract may cache state.
///
/// Per set, `ages[h]` holds the blocks whose minimal LRU age is `h`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MayState {
    sets: Vec<Vec<Vec<MemBlockId>>>,
    assoc: u32,
    n_sets: u32,
}

impl MayState {
    /// The empty may state (nothing possibly cached): the correct entry
    /// state for a cold cache.
    pub fn new(config: &CacheConfig) -> Self {
        MayState {
            sets: vec![vec![Vec::new(); config.assoc() as usize]; config.n_sets() as usize],
            assoc: config.assoc(),
            n_sets: config.n_sets(),
        }
    }

    /// Minimal age of `block`, if it might be cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }

    /// Whether `block` might be cached. A `false` answer classifies a
    /// reference to it as always-miss.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Abstract may update: the referenced block gets minimal age 0; blocks
    /// whose minimal age was ≤ the referenced block's move one step older;
    /// blocks aging past the associativity are definitely evicted.
    pub fn update(&mut self, block: MemBlockId) {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let a = self.assoc as usize;
        let old_age = self.age_in_set(set, block);
        let buckets = &mut self.sets[set];
        match old_age {
            Some(h) => {
                let h = h as usize;
                if let Ok(pos) = buckets[h].binary_search(&block) {
                    buckets[h].remove(pos);
                }
                // Blocks of age ≤ h (except the referenced one) age by one.
                let mut carry: Vec<MemBlockId> = Vec::new();
                for bucket in buckets.iter_mut().take(h + 1) {
                    std::mem::swap(bucket, &mut carry);
                }
                // `carry` now holds the old bucket[h] remnants destined for
                // h+1 (or eviction if h+1 == assoc).
                if h + 1 < a {
                    merge_into(&mut buckets[h + 1], carry);
                }
                buckets[0] = vec![block];
            }
            None => {
                buckets.pop();
                buckets.insert(0, vec![block]);
                debug_assert_eq!(buckets.len(), a);
            }
        }
    }

    /// May join: union of both sides, keeping the *minimal* age.
    pub fn join(&self, other: &MayState) -> MayState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        let mut out = MayState {
            sets: vec![vec![Vec::new(); self.assoc as usize]; self.n_sets as usize],
            assoc: self.assoc,
            n_sets: self.n_sets,
        };
        for s in 0..self.n_sets as usize {
            for (h, bucket) in self.sets[s].iter().enumerate() {
                for &b in bucket {
                    let age = match other.age_in_set(s, b) {
                        Some(h2) => h.min(h2 as usize),
                        None => h,
                    };
                    insert_sorted(&mut out.sets[s][age], b);
                }
            }
            for (h, bucket) in other.sets[s].iter().enumerate() {
                for &b in bucket {
                    if self.age_in_set(s, b).is_none() {
                        insert_sorted(&mut out.sets[s][h], b);
                    }
                }
            }
        }
        out
    }

    /// All possibly-cached blocks with their minimal ages.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.sets.iter().flat_map(|set| {
            set.iter()
                .enumerate()
                .flat_map(|(h, bucket)| bucket.iter().map(move |&b| (b, h as u32)))
        })
    }

    /// Number of possibly-cached blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().map(Vec::len).sum()
    }

    /// Whether no block might be cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn age_in_set(&self, set: usize, block: MemBlockId) -> Option<u32> {
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }
}

fn insert_sorted(v: &mut Vec<MemBlockId>, b: MemBlockId) {
    if let Err(pos) = v.binary_search(&b) {
        v.insert(pos, b);
    }
}

fn merge_into(dst: &mut Vec<MemBlockId>, src: Vec<MemBlockId>) {
    for b in src {
        insert_sorted(dst, b);
    }
}

impl fmt::Display for MayState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, set) in self.sets.iter().enumerate() {
            write!(f, "set {s}:")?;
            for (h, bucket) in set.iter().enumerate() {
                let cells: Vec<String> = bucket.iter().map(|b| b.to_string()).collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap()
    }

    #[test]
    fn absent_block_is_definitely_uncached() {
        let m = MayState::new(&cfg());
        assert!(!m.contains(MemBlockId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn update_tracks_minimal_ages() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 falls out (min age would be 2)
        assert!(!m.contains(MemBlockId(1)));
    }

    #[test]
    fn join_is_union_with_min_age() {
        let mut a = MayState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        let mut b = MayState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // 1 at age 0, 2 at age 1
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(0));
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // only in b
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Every concretely-cached block must appear in the may state.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MayState::new(&config);
        for &b in &[3u64, 7, 3, 11, 15, 7, 3, 4, 8, 4] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for blk in c.blocks() {
                assert!(m.contains(blk), "concrete holds {blk} but may lost it");
            }
        }
    }

    #[test]
    fn hit_update_ages_siblings() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // ages: 2→0, 1→1
        m.update(MemBlockId(2)); // hit at age 0: nothing else younger
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
    }
}
