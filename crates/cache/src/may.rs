//! May analysis: which blocks *might* be cached.
//!
//! Abstract may states assign each block a lower bound on its LRU age. A
//! block absent from the may state is cached in **no** concrete state the
//! abstract state represents, so a reference to it is an *always miss*.
//!
//! For LRU the domain is exact. FIFO and tree-PLRU have no finite LRU
//! reduction on the may side (a FIFO block ages only on misses, which the
//! abstract domain cannot distinguish from hits; a PLRU block can be
//! protected indefinitely by the tree bits), so their may domain is
//! *unbounded* ([`ReplacementPolicy::UNBOUNDED`](crate::ReplacementPolicy::UNBOUNDED)):
//! possibly-cached blocks never age out, and only blocks that were never
//! accessed on any reaching path classify as always-miss. Sound for any
//! policy, but strictly less precise than the exact LRU domain.

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;
use crate::packed;
use crate::policy::ReplacementPolicy;

/// Abstract may cache state.
///
/// Stored as a single sorted vector of packed `(set, block, age)` words —
/// the same layout as [`crate::MustState`]; see [`crate::packed`] and
/// DESIGN.md §11. In the unbounded domain ages are always 0 and the
/// update degenerates to a sorted-set insert on the packed keys.
///
/// Each block appears at most once and ages stay below the policy's
/// effective associativity (which is [`ReplacementPolicy::UNBOUNDED`] for
/// FIFO and tree-PLRU — see the module docs). [`iter`](MayState::iter)
/// yields blocks in `(set, block)` order — the storage order — not global
/// block order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MayState {
    /// Sorted packed words: possibly-cached blocks with their minimal age.
    words: Vec<u64>,
    assoc: u32,
    n_sets: u32,
}

impl MayState {
    /// The empty may state (nothing possibly cached): the correct entry
    /// state for a cold cache. A bounded effective associativity too wide
    /// for the packed age lane ([`packed::MAX_AGE`]) widens to
    /// [`ReplacementPolicy::UNBOUNDED`] — never ruling out eviction is
    /// sound, it merely classifies fewer always-misses.
    ///
    /// `const`: the no-information state for a given configuration can live
    /// in a `static` and be shared instead of rebuilt per query.
    pub const fn new(config: &CacheConfig) -> Self {
        let ways = config.policy().may_ways(config.assoc());
        let assoc = if ways != ReplacementPolicy::UNBOUNDED && ways > packed::MAX_AGE {
            ReplacementPolicy::UNBOUNDED
        } else {
            ways
        };
        MayState {
            words: Vec::new(),
            assoc,
            n_sets: config.n_sets(),
        }
    }

    /// The packed words, for hashing by the state interner.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words, for the k-way merge in
    /// [`crate::join`] (which writes merged words into a reusable scratch
    /// state instead of allocating per join).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut Vec<u64> {
        &mut self.words
    }

    /// Minimal age of `block`, if it might be cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        if block.0 > packed::BLOCK_MASK {
            return None; // unpackable ids are never stored
        }
        let key = packed::sort_key(self.n_sets, block.0);
        packed::find(&self.words, key)
            .ok()
            .map(|i| packed::age_of(self.words[i]))
    }

    /// Whether `block` might be cached. A `false` answer classifies a
    /// reference to it as always-miss.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Whether this state lives in the no-information unbounded domain
    /// (FIFO / tree-PLRU, or a bounded effective associativity widened
    /// past the packed age lane). An unclassified reference under an
    /// unbounded may domain is a *sentinel* NC — the always-miss half of
    /// the classifier was structurally absent, not outvoted — which is
    /// what the refinement stage targets first (see
    /// [`crate::refine::NcCause`]).
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.assoc == ReplacementPolicy::UNBOUNDED
    }

    /// Abstract may update: the referenced block gets minimal age 0; blocks
    /// whose minimal age was ≤ the referenced block's move one step older;
    /// blocks aging past the (effective) associativity are definitely
    /// evicted. In an unbounded domain nothing ever ages out: the update
    /// only records that the block may now be cached.
    #[inline]
    pub fn update(&mut self, block: MemBlockId) {
        self.update_classify(block);
    }

    /// [`update`](MayState::update) fused with the possibly-cached query:
    /// applies the update and returns whether `block` might have been
    /// cached *before* it — the answer [`contains`](MayState::contains)
    /// would have given (`false` classifies the reference always-miss) —
    /// from the same binary search, so the fixpoint's classify-then-fold
    /// walk pays one lookup instead of two.
    pub fn update_classify(&mut self, block: MemBlockId) -> bool {
        let key = packed::sort_key(self.n_sets, block.0);
        if self.assoc == ReplacementPolicy::UNBOUNDED {
            return match packed::find(&self.words, key) {
                Ok(_) => true,
                Err(pos) => {
                    self.words.insert(pos, key << packed::AGE_BITS);
                    false
                }
            };
        }
        let set_mask = u64::from(self.n_sets) - 1;
        let set = block.0 & set_mask;
        let assoc = u64::from(self.assoc);
        match packed::find(&self.words, key) {
            Ok(i) => {
                // Hit at minimal age h: same-set blocks with age ≤ h move
                // one step older; one of them can reach the associativity
                // (age == h == assoc-1) and drop out, so the rewrite lags —
                // but the common no-eviction case stays fully in place.
                let bump_max = self.words[i] & packed::AGE_MASK;
                let (lo, hi) = packed::group_range(&self.words, key, Ok(i));
                let mut w = lo;
                for r in lo..hi {
                    let word = self.words[r];
                    if r == i {
                        // The refreshed block re-enters at age 0; the sort
                        // key ignores the age lane, so its slot is stable.
                        self.words[w] = key << packed::AGE_BITS;
                        w += 1;
                        continue;
                    }
                    let age = word & packed::AGE_MASK;
                    // Group runs may mix sets if groups collide (> 2^20
                    // sets); re-check the exact set from the block id.
                    if packed::block_of(word) & set_mask == set && age <= bump_max {
                        if age + 1 >= assoc {
                            continue; // definitely evicted
                        }
                        self.words[w] = word + 1;
                    } else {
                        self.words[w] = word;
                    }
                    w += 1;
                }
                if w < hi {
                    self.words.copy_within(hi.., w);
                    self.words.truncate(self.words.len() - (hi - w));
                }
                true
            }
            Err(ins) => {
                // Miss: every same-set block ages (bump_max = assoc-1
                // covers all stored ages) and may be definitely evicted.
                self.miss_update(key, set, set_mask, assoc, ins);
                false
            }
        }
    }

    /// Compact-bumps run words in `[start, hi)` down to `w` — aging
    /// same-set words, dropping those that reach `assoc` — then closes the
    /// remaining gap against the state tail (at most one tail move).
    fn compact_tail(
        &mut self,
        start: usize,
        hi: usize,
        mut w: usize,
        set: u64,
        set_mask: u64,
        assoc: u64,
    ) {
        for r in start..hi {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    continue; // definitely evicted
                }
                self.words[w] = word + 1;
            } else {
                self.words[w] = word;
            }
            w += 1;
        }
        if w < hi {
            self.words.copy_within(hi.., w);
            self.words.truncate(self.words.len() - (hi - w));
        }
    }

    /// The miss half of [`update_classify`](MayState::update_classify):
    /// ages the whole set run, drops what reaches `assoc`, and inserts the
    /// referenced block at age 0 — reusing the first dropped slot so the
    /// common saturated-set case never moves the state tail.
    fn miss_update(&mut self, key: u64, set: u64, set_mask: u64, assoc: u64, ins: usize) {
        let (lo, hi) = packed::group_range(&self.words, key, Err(ins));
        // Compact-bump the run prefix before the insertion point; a
        // removal there opens the slot the new word needs.
        let mut w = lo;
        for r in lo..ins {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    continue;
                }
                self.words[w] = word + 1;
            } else {
                self.words[w] = word;
            }
            w += 1;
        }
        let new_word = key << packed::AGE_BITS;
        if w < ins {
            self.words[w] = new_word;
            self.compact_tail(ins, hi, w + 1, set, set_mask, assoc);
            return;
        }
        // No slot opened yet: shift the run suffix right with a carry
        // until the first removal absorbs it; only if nothing ages out
        // does the insertion move the tail.
        let mut carry = new_word;
        for r in ins..hi {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    self.words[r] = carry;
                    self.compact_tail(r + 1, hi, r + 1, set, set_mask, assoc);
                    return;
                }
                self.words[r] = carry;
                carry = word + 1;
            } else {
                self.words[r] = carry;
                carry = word;
            }
        }
        self.words.insert(hi, carry);
    }

    /// May join: union of both sides, keeping the *minimal* age. Identical
    /// states short-circuit via a word-wise `memcmp`.
    pub fn join(&self, other: &MayState) -> MayState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        if self.words == other.words {
            return self.clone();
        }
        let (a, b) = (&self.words, &other.words);
        let mut words = Vec::with_capacity(a.len().max(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (wa, wb) = (a[i], b[j]);
            match packed::key_of(wa).cmp(&packed::key_of(wb)) {
                std::cmp::Ordering::Less => {
                    words.push(wa);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    words.push(wb);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Equal keys share all high lanes, so the word min is
                    // the same block at the min age.
                    words.push(wa.min(wb));
                    i += 1;
                    j += 1;
                }
            }
        }
        words.extend_from_slice(&a[i..]);
        words.extend_from_slice(&b[j..]);
        MayState {
            words,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All possibly-cached blocks with their minimal ages, in
    /// `(set, block)` order.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.words
            .iter()
            .map(|&w| (MemBlockId(packed::block_of(w)), packed::age_of(w)))
    }

    /// Number of possibly-cached blocks.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no block might be cached.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl fmt::Display for MayState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // An unbounded domain has no fixed age rows; print only the ages
        // actually present (all 0 in practice).
        let rows = if self.assoc == ReplacementPolicy::UNBOUNDED {
            self.iter().map(|e| e.1 + 1).max().unwrap_or(1)
        } else {
            self.assoc
        };
        for s in 0..u64::from(self.n_sets) {
            write!(f, "set {s}:")?;
            for h in 0..rows {
                let cells: Vec<String> = self
                    .iter()
                    .filter(|e| e.0 .0 % u64::from(self.n_sets) == s && e.1 == h)
                    .map(|e| e.0.to_string())
                    .collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap()
    }

    #[test]
    fn absent_block_is_definitely_uncached() {
        let m = MayState::new(&cfg());
        assert!(!m.contains(MemBlockId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn update_tracks_minimal_ages() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 falls out (min age would be 2)
        assert!(!m.contains(MemBlockId(1)));
    }

    #[test]
    fn join_is_union_with_min_age() {
        let mut a = MayState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        let mut b = MayState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // 1 at age 0, 2 at age 1
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(0));
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // only in b
    }

    #[test]
    fn unbounded_domain_never_forgets_a_block() {
        use crate::policy::ReplacementPolicy;
        for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Plru] {
            let config = CacheConfig::new(2, 16, 32)
                .unwrap()
                .with_policy(policy)
                .unwrap();
            let mut m = MayState::new(&config);
            for b in 0..100u64 {
                m.update(MemBlockId(b));
            }
            // Far beyond the 2 ways, every accessed block is still "maybe
            // cached" (the domain cannot rule eviction out)...
            for b in 0..100u64 {
                assert!(m.contains(MemBlockId(b)), "{policy}: lost block {b}");
            }
            // ...and a never-accessed block still classifies always-miss.
            assert!(!m.contains(MemBlockId(100)));
            // Display terminates and shows only present age rows.
            assert!(m.to_string().contains("age0"));
            assert!(!m.to_string().contains("age1"));
        }
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Every concretely-cached block must appear in the may state.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MayState::new(&config);
        for &b in &[3u64, 7, 3, 11, 15, 7, 3, 4, 8, 4] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for blk in c.blocks() {
                assert!(m.contains(blk), "concrete holds {blk} but may lost it");
            }
        }
    }

    #[test]
    fn hit_update_ages_siblings() {
        let mut m = MayState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // ages: 2→0, 1→1
        m.update(MemBlockId(2)); // hit at age 0: nothing else younger
        assert_eq!(m.age(MemBlockId(2)), Some(0));
        assert_eq!(m.age(MemBlockId(1)), Some(1));
    }

    #[test]
    fn hit_update_leaves_older_blocks_alone() {
        // 4-way single set: a hit at age 1 must not disturb ages > 1.
        let config = CacheConfig::new(4, 16, 64).unwrap();
        let mut m = MayState::new(&config);
        for b in [1u64, 2, 3, 4] {
            m.update(MemBlockId(b));
        }
        // Ages now: 4→0, 3→1, 2→2, 1→3.
        m.update(MemBlockId(3)); // hit at age 1: ages 0..=1 bump, rest stay
        assert_eq!(m.age(MemBlockId(3)), Some(0));
        assert_eq!(m.age(MemBlockId(4)), Some(1));
        assert_eq!(m.age(MemBlockId(2)), Some(2)); // untouched
        assert_eq!(m.age(MemBlockId(1)), Some(3)); // untouched
    }
}
