//! Cache geometry.

use std::error::Error;
use std::fmt;

use rtpf_isa::MemBlockId;

use crate::policy::ReplacementPolicy;

/// Error returned for an inconsistent cache geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// A parameter was zero.
    Zero,
    /// A parameter was not a power of two.
    NotPowerOfTwo,
    /// `capacity < associativity * block_bytes` (fewer than one set).
    TooSmall,
    /// The replacement policy cannot drive this geometry (tree-PLRU keeps
    /// its direction bits in one 64-bit word per set, capping it at 64
    /// ways).
    PolicyUnsupported,
    /// The per-level geometries do not form a valid (monotone) hierarchy —
    /// see [`HierarchyViolation`] for the specific rule broken.
    HierarchyInvalid(HierarchyViolation),
}

/// Error returned by [`CacheConfig::parse_spec`] for a malformed
/// `a:b:c[:policy]` geometry spec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecError {
    /// Not three or four colon-separated fields.
    Shape(String),
    /// A numeric field that did not parse as `u32`.
    Number(String),
    /// An unknown replacement-policy name.
    Policy(String),
    /// The fields parsed but describe an invalid geometry.
    Config(ConfigError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Shape(v) => write!(f, "cache spec wants a:b:c[:policy], got {v}"),
            SpecError::Number(v) => write!(f, "bad number {v:?} in cache spec"),
            SpecError::Policy(v) => write!(f, "unknown replacement policy {v:?}"),
            SpecError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SpecError {}

/// The specific way a multi-level hierarchy was inconsistent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HierarchyViolation {
    /// No levels at all.
    Empty,
    /// More levels than the analysis model supports (L1 + L2).
    TooManyLevels,
    /// A level's capacity is not strictly larger than the level above it
    /// (an L2 no bigger than L1 filters every access and models nothing).
    CapacityNotLarger,
    /// Levels disagree on the block (line) size; the per-level filter
    /// assumes one address-to-block map for the whole hierarchy.
    BlockMismatch,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero => write!(f, "cache parameters must be positive"),
            ConfigError::NotPowerOfTwo => {
                write!(f, "cache parameters must be powers of two")
            }
            ConfigError::TooSmall => {
                write!(
                    f,
                    "capacity smaller than one set (associativity * block size)"
                )
            }
            ConfigError::PolicyUnsupported => {
                write!(f, "replacement policy unsupported for this associativity")
            }
            ConfigError::HierarchyInvalid(v) => match v {
                HierarchyViolation::Empty => write!(f, "hierarchy has no levels"),
                HierarchyViolation::TooManyLevels => {
                    write!(f, "hierarchy has more levels than supported (L1 + L2)")
                }
                HierarchyViolation::CapacityNotLarger => {
                    write!(f, "L2 capacity must be strictly larger than L1 capacity")
                }
                HierarchyViolation::BlockMismatch => {
                    write!(f, "all hierarchy levels must share one block size")
                }
            },
        }
    }
}

impl Error for ConfigError {}

/// Instruction-cache configuration: geometry `(a, b, c)` in the paper's
/// Table 2 notation — associativity, block size in bytes, capacity in
/// bytes — plus the [`ReplacementPolicy`] the sets run under (LRU unless
/// overridden via [`with_policy`](CacheConfig::with_policy)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    assoc: u32,
    block_bytes: u32,
    capacity_bytes: u32,
    policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates an LRU geometry after validating it.
    ///
    /// `const` (hence the manual validation loop): a geometry known at
    /// compile time can seed `static` sentinel states — see
    /// [`no_info`](crate::no_info).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is zero, not a power of
    /// two, or the capacity holds less than one full set.
    pub const fn new(
        assoc: u32,
        block_bytes: u32,
        capacity_bytes: u32,
    ) -> Result<Self, ConfigError> {
        let params = [assoc, block_bytes, capacity_bytes];
        let mut i = 0;
        while i < params.len() {
            if params[i] == 0 {
                return Err(ConfigError::Zero);
            }
            if !params[i].is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo);
            }
            i += 1;
        }
        if capacity_bytes < assoc * block_bytes {
            return Err(ConfigError::TooSmall);
        }
        Ok(CacheConfig {
            assoc,
            block_bytes,
            capacity_bytes,
            policy: ReplacementPolicy::Lru,
        })
    }

    /// The same geometry under another replacement policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::PolicyUnsupported`] when the policy cannot
    /// drive this geometry (tree-PLRU beyond 64 ways).
    pub const fn with_policy(mut self, policy: ReplacementPolicy) -> Result<Self, ConfigError> {
        if matches!(policy, ReplacementPolicy::Plru) && self.assoc > 64 {
            return Err(ConfigError::PolicyUnsupported);
        }
        self.policy = policy;
        Ok(self)
    }

    /// The replacement policy.
    #[inline]
    pub const fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Associativity (`a`).
    #[inline]
    pub const fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block (line) size in bytes (`b`).
    #[inline]
    pub const fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Total capacity in bytes (`c`).
    #[inline]
    pub const fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Number of sets (`c / (a * b)`).
    #[inline]
    pub const fn n_sets(&self) -> u32 {
        self.capacity_bytes / (self.assoc * self.block_bytes)
    }

    /// The set a memory block maps to.
    #[inline]
    pub fn set_of(&self, block: MemBlockId) -> usize {
        (block.0 % u64::from(self.n_sets())) as usize
    }

    /// A configuration with the same block size, associativity, and
    /// policy but `capacity / divisor` bytes, as used by the paper's
    /// Figure 5 (running optimized programs on 1/2 and 1/4 capacity).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the shrunken capacity is not a valid
    /// geometry (e.g. fewer than one set would remain).
    pub fn shrink(&self, divisor: u32) -> Result<Self, ConfigError> {
        Self::new(
            self.assoc,
            self.block_bytes,
            self.capacity_bytes / divisor.max(1),
        )?
        .with_policy(self.policy)
    }

    /// The 36 configurations of the paper's Table 2 (`k1..k36`), in order:
    /// Parses the `a:b:c[:policy]` geometry spec shared by every front
    /// end (`--l2`, the smoke drill, the bench bins, and `rtpfd`
    /// requests): associativity, block bytes, capacity bytes, and an
    /// optional replacement policy name, colon-separated.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming which part of the spec was
    /// malformed, or wrapping the [`ConfigError`] of an invalid geometry.
    pub fn parse_spec(v: &str) -> Result<CacheConfig, SpecError> {
        let parts: Vec<&str> = v.split(':').collect();
        if parts.len() < 3 || parts.len() > 4 {
            return Err(SpecError::Shape(v.to_string()));
        }
        let mut nums = [0u32; 3];
        for (slot, p) in nums.iter_mut().zip(&parts) {
            *slot = p
                .trim()
                .parse()
                .map_err(|_| SpecError::Number((*p).to_string()))?;
        }
        let mut cfg = CacheConfig::new(nums[0], nums[1], nums[2]).map_err(SpecError::Config)?;
        if let Some(name) = parts.get(3) {
            let policy = ReplacementPolicy::parse(name)
                .ok_or_else(|| SpecError::Policy((*name).to_string()))?;
            cfg = cfg.with_policy(policy).map_err(SpecError::Config)?;
        }
        Ok(cfg)
    }

    /// capacities 256 B to 8 KiB, block sizes 16/32 B, associativities
    /// 1/2/4.
    pub fn paper_configs() -> Vec<(String, CacheConfig)> {
        let mut out = Vec::with_capacity(36);
        let mut k = 1;
        for capacity in [256u32, 512, 1024, 2048, 4096, 8192] {
            for block in [16u32, 32] {
                for assoc in [1u32, 2, 4] {
                    let cfg = CacheConfig::new(assoc, block, capacity)
                        .expect("table 2 configurations are valid");
                    out.push((format!("k{k}"), cfg));
                    k += 1;
                }
            }
        }
        out
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // LRU keeps the paper's bare `(a, b, c)` notation (unchanged from
        // when the crate was LRU-only); other policies are named.
        match self.policy {
            ReplacementPolicy::Lru => write!(
                f,
                "({}, {}, {})",
                self.assoc, self.block_bytes, self.capacity_bytes
            ),
            p => write!(
                f,
                "({}, {}, {}, {p})",
                self.assoc, self.block_bytes, self.capacity_bytes
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry() {
        let c = CacheConfig::new(2, 16, 256).unwrap();
        assert_eq!(c.n_sets(), 8);
        assert_eq!(c.to_string(), "(2, 16, 256)");
    }

    #[test]
    fn rejects_bad_geometry() {
        assert_eq!(CacheConfig::new(0, 16, 256), Err(ConfigError::Zero));
        assert_eq!(
            CacheConfig::new(3, 16, 256),
            Err(ConfigError::NotPowerOfTwo)
        );
        assert_eq!(CacheConfig::new(4, 32, 64), Err(ConfigError::TooSmall));
    }

    #[test]
    fn set_mapping_is_modular() {
        let c = CacheConfig::new(1, 16, 64).unwrap(); // 4 sets
        assert_eq!(c.set_of(MemBlockId(0)), 0);
        assert_eq!(c.set_of(MemBlockId(5)), 1);
        assert_eq!(c.set_of(MemBlockId(7)), 3);
    }

    #[test]
    fn paper_configs_match_table2() {
        let cfgs = CacheConfig::paper_configs();
        assert_eq!(cfgs.len(), 36);
        assert_eq!(cfgs[0].0, "k1");
        assert_eq!(cfgs[0].1, CacheConfig::new(1, 16, 256).unwrap());
        assert_eq!(cfgs[35].0, "k36");
        assert_eq!(cfgs[35].1, CacheConfig::new(4, 32, 8192).unwrap());
        // All distinct.
        for i in 0..cfgs.len() {
            for j in i + 1..cfgs.len() {
                assert_ne!(cfgs[i].1, cfgs[j].1);
            }
        }
    }

    #[test]
    fn shrink_preserves_shape() {
        let c = CacheConfig::new(4, 32, 8192).unwrap();
        let h = c.shrink(2).unwrap();
        assert_eq!(h.capacity_bytes(), 4096);
        assert_eq!(h.assoc(), 4);
        assert!(CacheConfig::new(4, 32, 128).unwrap().shrink(4).is_err());
    }

    #[test]
    fn policy_defaults_to_lru_and_threads_through() {
        let c = CacheConfig::new(2, 16, 256).unwrap();
        assert_eq!(c.policy(), ReplacementPolicy::Lru);
        let f = c.with_policy(ReplacementPolicy::Fifo).unwrap();
        assert_eq!(f.policy(), ReplacementPolicy::Fifo);
        // The policy is part of identity (and thus of fingerprints/keys).
        assert_ne!(c, f);
        // shrink keeps the policy.
        assert_eq!(f.shrink(2).unwrap().policy(), ReplacementPolicy::Fifo);
        // Display: LRU keeps the paper notation, others are named.
        assert_eq!(c.to_string(), "(2, 16, 256)");
        assert_eq!(f.to_string(), "(2, 16, 256, fifo)");
    }

    #[test]
    fn plru_rejects_unrepresentable_widths() {
        let wide = CacheConfig::new(128, 16, 4096).unwrap();
        assert_eq!(
            wide.with_policy(ReplacementPolicy::Plru),
            Err(ConfigError::PolicyUnsupported)
        );
        assert!(wide.with_policy(ReplacementPolicy::Fifo).is_ok());
        let ok = CacheConfig::new(64, 16, 2048).unwrap();
        assert!(ok.with_policy(ReplacementPolicy::Plru).is_ok());
    }
}
