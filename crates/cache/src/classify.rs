//! Hit/miss classification from abstract states.

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::may::MayState;
use crate::must::MustState;
use crate::refine::NcCause;

/// Static classification of one reference, in the style of cache-aware WCET
/// analysis (references [8, 21] of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Classification {
    /// The referenced block is cached in every reachable concrete state.
    AlwaysHit,
    /// The referenced block is cached in no reachable concrete state.
    AlwaysMiss,
    /// Neither guarantee holds; WCET analysis must assume a miss.
    Unclassified,
}

impl Classification {
    /// Classifies a reference to `block` given the incoming must and may
    /// states.
    pub fn of(block: MemBlockId, must: &MustState, may: &MayState) -> Classification {
        if must.contains(block) {
            Classification::AlwaysHit
        } else if !may.contains(block) {
            Classification::AlwaysMiss
        } else {
            Classification::Unclassified
        }
    }

    /// Whether WCET analysis must account a miss penalty for this
    /// classification (everything but [`Classification::AlwaysHit`]).
    #[inline]
    pub fn counts_as_miss(&self) -> bool {
        !matches!(self, Classification::AlwaysHit)
    }

    /// Why a reference to `block` is left unclassified under the given
    /// incoming states — `None` when it classifies. A sentinel cause
    /// means the may domain carried no information at all (the FIFO /
    /// tree-PLRU no-information path); a conflict cause means the exact
    /// may domain saw the block cached on some reaching path. The
    /// refinement stage targets sentinel NC references first.
    pub fn nc_cause(block: MemBlockId, must: &MustState, may: &MayState) -> Option<NcCause> {
        match Classification::of(block, must, may) {
            Classification::Unclassified if may.is_unbounded() => Some(NcCause::Sentinel),
            Classification::Unclassified => Some(NcCause::Conflict),
            _ => None,
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Classification::AlwaysHit => "always-hit",
            Classification::AlwaysMiss => "always-miss",
            Classification::Unclassified => "unclassified",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    #[test]
    fn classification_tracks_abstract_states() {
        let cfg = CacheConfig::new(2, 16, 32).unwrap();
        let mut must = MustState::new(&cfg);
        let mut may = MayState::new(&cfg);
        let b = MemBlockId(4);

        // Cold: not even possibly cached.
        assert_eq!(
            Classification::of(b, &must, &may),
            Classification::AlwaysMiss
        );

        // Possibly cached on one path only.
        may.update(b);
        assert_eq!(
            Classification::of(b, &must, &may),
            Classification::Unclassified
        );

        // Guaranteed cached.
        must.update(b);
        assert_eq!(
            Classification::of(b, &must, &may),
            Classification::AlwaysHit
        );
        assert!(!Classification::of(b, &must, &may).counts_as_miss());
    }

    #[test]
    fn nc_cause_pins_sentinel_vs_conflict() {
        use crate::policy::ReplacementPolicy;
        let b = MemBlockId(4);

        // Under FIFO the may side is the no-information sentinel: an NC
        // block is NC because always-miss was structurally unavailable.
        let fifo = CacheConfig::new(2, 16, 32)
            .unwrap()
            .with_policy(ReplacementPolicy::Fifo)
            .unwrap();
        let must = MustState::new(&fifo);
        let mut may = MayState::new(&fifo);
        assert!(may.is_unbounded());
        may.update(b);
        assert_eq!(
            Classification::of(b, &must, &may),
            Classification::Unclassified
        );
        assert_eq!(
            Classification::nc_cause(b, &must, &may),
            Some(NcCause::Sentinel)
        );

        // Under LRU the exact may domain answered: the same NC shape is a
        // genuine conflict, not a sentinel artifact.
        let lru = CacheConfig::new(2, 16, 32).unwrap();
        let must = MustState::new(&lru);
        let mut may = MayState::new(&lru);
        assert!(!may.is_unbounded());
        may.update(b);
        assert_eq!(
            Classification::of(b, &must, &may),
            Classification::Unclassified
        );
        assert_eq!(
            Classification::nc_cause(b, &must, &may),
            Some(NcCause::Conflict)
        );

        // Classified references have no NC cause, either way.
        let mut must = MustState::new(&lru);
        must.update(b);
        assert_eq!(Classification::nc_cause(b, &must, &may), None);
        let empty_may = MayState::new(&lru);
        let cold_must = MustState::new(&lru);
        assert_eq!(
            Classification::of(b, &cold_must, &empty_may),
            Classification::AlwaysMiss
        );
        assert_eq!(Classification::nc_cause(b, &cold_must, &empty_may), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Classification::AlwaysHit.to_string(), "always-hit");
        assert_eq!(Classification::AlwaysMiss.to_string(), "always-miss");
        assert_eq!(Classification::Unclassified.to_string(), "unclassified");
    }
}
