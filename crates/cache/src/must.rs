//! Must analysis: which blocks are *guaranteed* cached.
//!
//! Abstract must states assign each cached block an upper bound on its
//! logical age (0 = most recently accessed). A block present in the must
//! state is present in **every** concrete state the abstract state
//! represents, so a reference to it is an *always hit*. Update and join
//! follow Ferdinand's abstract LRU semantics (reference [8] of the paper).
//!
//! The domain is policy-generic through the configuration's
//! [`ReplacementPolicy`](crate::ReplacementPolicy): for LRU it runs at the
//! real associativity (exact); for FIFO and tree-PLRU it runs the same LRU
//! update at the policy's smaller *effective* associativity
//! ([`ReplacementPolicy::must_ways`](crate::ReplacementPolicy::must_ways)),
//! the relative-competitiveness reduction of Reineke & Grund — sound for
//! those policies, at the cost of fewer always-hit guarantees (see the
//! [`crate::policy`] module docs and DESIGN.md §10).

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;
use crate::packed;

/// Abstract must cache state.
///
/// Stored as a single sorted vector of packed `(set, block, age)` words —
/// see the [`crate::packed`] module for the lane layout and DESIGN.md §11
/// for the rationale. One `u64` per guaranteed block halves the footprint
/// of the old `(MemBlockId, u32)` pairs, same-set entries sit contiguously
/// so an update only touches its set's short run, joins reduce to sorted
/// word merges whose equal-block case is a single `u64::max`, and state
/// equality (the fixpoint's hottest comparison) is a `memcmp`.
///
/// Each block appears at most once, ages stay below the policy's
/// *effective* associativity, and at most that many blocks of any one set
/// are present. [`iter`](MustState::iter) yields blocks in `(set, block)`
/// order — the storage order — not global block order.
///
/// # Example
///
/// ```
/// use rtpf_cache::{CacheConfig, MustState, ReplacementPolicy};
/// use rtpf_isa::MemBlockId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(2, 16, 32)?; // one 2-way set, LRU
/// let mut must = MustState::new(&config);
/// must.update(MemBlockId(1));
/// must.update(MemBlockId(2));
/// assert!(must.contains(MemBlockId(1))); // guaranteed cached (age 1)
/// must.update(MemBlockId(3));            // ages 1 out of the guarantee
/// assert!(!must.contains(MemBlockId(1)));
///
/// // A non-LRU policy shrinks the guarantee window: FIFO(2) runs the
/// // same domain at effective associativity 1, so only the set's most
/// // recent access stays guaranteed.
/// let fifo = config.with_policy(ReplacementPolicy::Fifo)?;
/// let mut must = MustState::new(&fifo);
/// must.update(MemBlockId(1));
/// must.update(MemBlockId(2));
/// assert!(must.contains(MemBlockId(2)));
/// assert!(!must.contains(MemBlockId(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MustState {
    /// Sorted packed words: guaranteed-cached blocks with their maximal age.
    words: Vec<u64>,
    assoc: u32,
    n_sets: u32,
}

impl MustState {
    /// The empty must state (nothing guaranteed cached) — also the analysis
    /// top for joins and the correct entry state (`ĉ_I`). Runs at the
    /// policy's effective associativity (the real one for LRU), clamped to
    /// the packed age lane's width ([`packed::MAX_AGE`]) — running must at
    /// fewer ways is always sound, it merely guarantees less.
    ///
    /// `const`: the no-information state for a given configuration can live
    /// in a `static` and be shared instead of rebuilt per query.
    pub const fn new(config: &CacheConfig) -> Self {
        let ways = config.policy().must_ways(config.assoc());
        let assoc = if ways > packed::MAX_AGE {
            packed::MAX_AGE
        } else {
            ways
        };
        MustState {
            words: Vec::new(),
            assoc,
            n_sets: config.n_sets(),
        }
    }

    /// The packed words, for hashing by the state interner.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words, for the k-way merge in
    /// [`crate::join`] (which writes merged words into a reusable scratch
    /// state instead of allocating per join).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut Vec<u64> {
        &mut self.words
    }

    /// Maximal age of `block`, if it is guaranteed cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        if block.0 > packed::BLOCK_MASK {
            return None; // unpackable ids are never stored
        }
        let key = packed::sort_key(self.n_sets, block.0);
        packed::find(&self.words, key)
            .ok()
            .map(|i| packed::age_of(self.words[i]))
    }

    /// Whether a reference to `block` is an always-hit in this state.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Abstract must update `Û(ĉ, s)`: the referenced block becomes age 0;
    /// younger blocks age by one; blocks aging past the associativity are
    /// no longer guaranteed cached. Only the referenced block's set run is
    /// scanned; the rest of the state is untouched.
    #[inline]
    pub fn update(&mut self, block: MemBlockId) {
        self.update_classify(block);
    }

    /// [`update`](MustState::update) fused with the always-hit query:
    /// applies the update and returns whether `block` was guaranteed
    /// cached *before* it — the answer [`contains`](MustState::contains)
    /// would have given — from the same binary search, so the fixpoint's
    /// classify-then-fold walk pays one lookup instead of two.
    pub fn update_classify(&mut self, block: MemBlockId) -> bool {
        let key = packed::sort_key(self.n_sets, block.0);
        let set_mask = u64::from(self.n_sets) - 1;
        let set = block.0 & set_mask;
        let assoc = u64::from(self.assoc);
        match packed::find(&self.words, key) {
            Ok(i) => {
                // Hit at age h: only blocks strictly younger than h age,
                // to at most h < assoc — nothing falls out of the
                // guarantee, and the refreshed block keeps its slot (the
                // sort key ignores the age lane), so the whole rewrite is
                // in place with no insertion or tail move.
                let cutoff = self.words[i] & packed::AGE_MASK;
                let (lo, hi) = packed::group_range(&self.words, key, Ok(i));
                for r in lo..hi {
                    let word = self.words[r];
                    let age = word & packed::AGE_MASK;
                    // The group run may mix sets if groups collide
                    // (> 2^20 sets); re-check the set from the block id.
                    if r != i && packed::block_of(word) & set_mask == set && age < cutoff {
                        self.words[r] = word + 1;
                    }
                }
                self.words[i] = key << packed::AGE_BITS;
                true
            }
            Err(ins) => {
                // Miss: every same-set block ages (cutoff = assoc) and may
                // fall out of the guarantee.
                self.miss_update(key, set, set_mask, assoc, ins);
                false
            }
        }
    }

    /// Compact-bumps run words in `[start, hi)` down to `w` — aging
    /// same-set words, dropping those that reach `assoc` — then closes the
    /// remaining gap against the state tail (at most one tail move).
    fn compact_tail(
        &mut self,
        start: usize,
        hi: usize,
        mut w: usize,
        set: u64,
        set_mask: u64,
        assoc: u64,
    ) {
        for r in start..hi {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    continue; // aged out of the guarantee
                }
                self.words[w] = word + 1;
            } else {
                self.words[w] = word;
            }
            w += 1;
        }
        if w < hi {
            self.words.copy_within(hi.., w);
            self.words.truncate(self.words.len() - (hi - w));
        }
    }

    /// The miss half of [`update_classify`](MustState::update_classify):
    /// ages the whole set run, drops what reaches `assoc`, and inserts the
    /// referenced block at age 0 — reusing the first dropped slot so the
    /// common saturated-set case never moves the state tail.
    fn miss_update(&mut self, key: u64, set: u64, set_mask: u64, assoc: u64, ins: usize) {
        let (lo, hi) = packed::group_range(&self.words, key, Err(ins));
        // Compact-bump the run prefix before the insertion point; a
        // removal there opens the slot the new word needs.
        let mut w = lo;
        for r in lo..ins {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    continue;
                }
                self.words[w] = word + 1;
            } else {
                self.words[w] = word;
            }
            w += 1;
        }
        let new_word = key << packed::AGE_BITS;
        if w < ins {
            self.words[w] = new_word;
            self.compact_tail(ins, hi, w + 1, set, set_mask, assoc);
            return;
        }
        // No slot opened yet: shift the run suffix right with a carry
        // until the first removal absorbs it; only if nothing ages out
        // does the insertion move the tail.
        let mut carry = new_word;
        for r in ins..hi {
            let word = self.words[r];
            if packed::block_of(word) & set_mask == set {
                if (word & packed::AGE_MASK) + 1 >= assoc {
                    self.words[r] = carry;
                    self.compact_tail(r + 1, hi, r + 1, set, set_mask, assoc);
                    return;
                }
                self.words[r] = carry;
                carry = word + 1;
            } else {
                self.words[r] = carry;
                carry = word;
            }
        }
        self.words.insert(hi, carry);
    }

    /// Must join (Definition in [8]): keep only blocks present on **both**
    /// sides, at their *maximal* age. Identical states (the common case at
    /// a converged fixpoint) short-circuit via a word-wise `memcmp`.
    pub fn join(&self, other: &MustState) -> MustState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        if self.words == other.words {
            return self.clone();
        }
        let (a, b) = (&self.words, &other.words);
        let mut words = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (wa, wb) = (a[i], b[j]);
            match packed::key_of(wa).cmp(&packed::key_of(wb)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Equal keys share all high lanes, so the word max is
                    // the same block at the max age.
                    words.push(wa.max(wb));
                    i += 1;
                    j += 1;
                }
            }
        }
        MustState {
            words,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All blocks guaranteed cached, with their maximal ages, in
    /// `(set, block)` order.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.words
            .iter()
            .map(|&w| (MemBlockId(packed::block_of(w)), packed::age_of(w)))
    }

    /// Number of blocks guaranteed cached.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing is guaranteed cached.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl fmt::Display for MustState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..u64::from(self.n_sets) {
            write!(f, "set {s}:")?;
            for h in 0..self.assoc {
                let cells: Vec<String> = self
                    .iter()
                    .filter(|e| e.0 .0 % u64::from(self.n_sets) == s && e.1 == h)
                    .map(|e| e.0.to_string())
                    .collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // one set, 2-way
    }

    #[test]
    fn update_inserts_at_age_zero() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert!(m.contains(MemBlockId(1)));
    }

    #[test]
    fn update_ages_out_old_blocks() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // 1 → age 1
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 ages past assoc → gone
        assert!(!m.contains(MemBlockId(1)));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        assert_eq!(m.age(MemBlockId(3)), Some(0));
    }

    #[test]
    fn touching_a_guaranteed_block_refreshes_it() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        m.update(MemBlockId(1)); // promote back to 0; 2 ages to 1
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        m.update(MemBlockId(3));
        assert!(!m.contains(MemBlockId(2)));
    }

    #[test]
    fn hit_update_leaves_older_blocks_alone() {
        // 4-way single set: a hit at age 1 must not disturb ages ≥ 1.
        let config = CacheConfig::new(4, 16, 64).unwrap();
        let mut m = MustState::new(&config);
        for b in [1u64, 2, 3, 4] {
            m.update(MemBlockId(b));
        }
        // Ages now: 4→0, 3→1, 2→2, 1→3.
        m.update(MemBlockId(3)); // hit at age 1
        assert_eq!(m.age(MemBlockId(3)), Some(0));
        assert_eq!(m.age(MemBlockId(4)), Some(1));
        assert_eq!(m.age(MemBlockId(2)), Some(2)); // untouched
        assert_eq!(m.age(MemBlockId(1)), Some(3)); // untouched
    }

    #[test]
    fn join_keeps_intersection_at_max_age() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        a.update(MemBlockId(2));
        let mut b = MustState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // age 0 in b, but age 1 in a
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(1)); // max(1, 0)
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // max(0, 1)
    }

    #[test]
    fn join_drops_one_sided_blocks() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1));
        let b = MustState::new(&cfg());
        let j = a.join(&b);
        assert!(j.is_empty());
    }

    #[test]
    fn per_set_capacity_is_respected() {
        // 2 sets × 2 ways: filling one set never evicts the other's blocks.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut m = MustState::new(&config);
        m.update(MemBlockId(1)); // set 1
        m.update(MemBlockId(2)); // set 0
        m.update(MemBlockId(4)); // set 0
        m.update(MemBlockId(6)); // set 0: evicts 2, not 1
        assert!(m.contains(MemBlockId(1)));
        assert!(!m.contains(MemBlockId(2)));
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|(_, age)| age < config.assoc()));
    }

    #[test]
    fn non_lru_policies_shrink_the_guarantee_window() {
        use crate::policy::ReplacementPolicy;
        // FIFO(4): effective associativity 1 — only the last access holds.
        let fifo = CacheConfig::new(4, 16, 64)
            .unwrap()
            .with_policy(ReplacementPolicy::Fifo)
            .unwrap();
        let mut m = MustState::new(&fifo);
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        assert!(m.contains(MemBlockId(2)));
        assert!(!m.contains(MemBlockId(1)));
        // PLRU(4): effective associativity log2(4)+1 = 3.
        let plru = CacheConfig::new(4, 16, 64)
            .unwrap()
            .with_policy(ReplacementPolicy::Plru)
            .unwrap();
        let mut m = MustState::new(&plru);
        for b in [1u64, 2, 3] {
            m.update(MemBlockId(b));
        }
        assert!(m.contains(MemBlockId(1))); // age 2 < 3
        m.update(MemBlockId(4));
        assert!(!m.contains(MemBlockId(1))); // aged past the window
        assert!(m.contains(MemBlockId(2)));
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Run the same access string through the concrete and must models;
        // every must-cached block must be concretely cached.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MustState::new(&config);
        for &b in &[1u64, 5, 1, 9, 13, 5, 1, 2, 6, 2] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for (blk, _) in m.iter() {
                assert!(c.contains(blk), "must claims {blk} but concrete lacks it");
            }
        }
    }

    #[test]
    fn iter_yields_set_then_block_order() {
        // 2 sets: blocks 1,3 are set 1, blocks 2,4 set 0. Storage order
        // interleaves by set, not by global block id.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut m = MustState::new(&config);
        for b in [1u64, 2, 3, 4] {
            m.update(MemBlockId(b));
        }
        let blocks: Vec<u64> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(blocks, vec![2, 4, 1, 3]);
    }

    #[test]
    fn oversized_block_queries_are_absent_not_fatal() {
        let m = MustState::new(&cfg());
        assert!(!m.contains(MemBlockId(1 << 40)));
        assert_eq!(m.age(MemBlockId(1 << 40)), None);
    }
}
