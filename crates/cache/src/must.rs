//! Must analysis: which blocks are *guaranteed* cached.
//!
//! Abstract must states assign each cached block an upper bound on its
//! logical age (0 = most recently accessed). A block present in the must
//! state is present in **every** concrete state the abstract state
//! represents, so a reference to it is an *always hit*. Update and join
//! follow Ferdinand's abstract LRU semantics (reference [8] of the paper).
//!
//! The domain is policy-generic through the configuration's
//! [`ReplacementPolicy`](crate::ReplacementPolicy): for LRU it runs at the
//! real associativity (exact); for FIFO and tree-PLRU it runs the same LRU
//! update at the policy's smaller *effective* associativity
//! ([`ReplacementPolicy::must_ways`](crate::ReplacementPolicy::must_ways)),
//! the relative-competitiveness reduction of Reineke & Grund — sound for
//! those policies, at the cost of fewer always-hit guarantees (see the
//! [`crate::policy`] module docs and DESIGN.md §10).

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;

/// Abstract must cache state.
///
/// Stored as a single sorted vector of `(block, max-age)` entries: the
/// number of cached blocks is bounded by the cache size, so a flat vector
/// beats the per-set-per-age bucket representation by orders of magnitude
/// in allocation count — one allocation per state instead of
/// `n_sets × assoc` — which dominates the analysis fixpoint's runtime.
/// Each block appears at most once, ages stay below the policy's
/// *effective* associativity, and at most that many blocks of any one set
/// are present.
///
/// # Example
///
/// ```
/// use rtpf_cache::{CacheConfig, MustState, ReplacementPolicy};
/// use rtpf_isa::MemBlockId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(2, 16, 32)?; // one 2-way set, LRU
/// let mut must = MustState::new(&config);
/// must.update(MemBlockId(1));
/// must.update(MemBlockId(2));
/// assert!(must.contains(MemBlockId(1))); // guaranteed cached (age 1)
/// must.update(MemBlockId(3));            // ages 1 out of the guarantee
/// assert!(!must.contains(MemBlockId(1)));
///
/// // A non-LRU policy shrinks the guarantee window: FIFO(2) runs the
/// // same domain at effective associativity 1, so only the set's most
/// // recent access stays guaranteed.
/// let fifo = config.with_policy(ReplacementPolicy::Fifo)?;
/// let mut must = MustState::new(&fifo);
/// must.update(MemBlockId(1));
/// must.update(MemBlockId(2));
/// assert!(must.contains(MemBlockId(2)));
/// assert!(!must.contains(MemBlockId(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MustState {
    /// Sorted by block id: guaranteed-cached blocks with their maximal age.
    entries: Vec<(MemBlockId, u32)>,
    assoc: u32,
    n_sets: u32,
}

impl MustState {
    /// The empty must state (nothing guaranteed cached) — also the analysis
    /// top for joins and the correct entry state (`ĉ_I`). Runs at the
    /// policy's effective associativity (the real one for LRU).
    pub fn new(config: &CacheConfig) -> Self {
        MustState {
            entries: Vec::new(),
            assoc: config.policy().must_ways(config.assoc()),
            n_sets: config.n_sets(),
        }
    }

    #[inline]
    fn set_of(&self, block: MemBlockId) -> u64 {
        block.0 % u64::from(self.n_sets)
    }

    /// Maximal age of `block`, if it is guaranteed cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        self.entries
            .binary_search_by_key(&block, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether a reference to `block` is an always-hit in this state.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Abstract must update `Û(ĉ, s)`: the referenced block becomes age 0;
    /// younger blocks age by one; blocks aging past the associativity are
    /// no longer guaranteed cached.
    pub fn update(&mut self, block: MemBlockId) {
        let set = self.set_of(block);
        let n_sets = u64::from(self.n_sets);
        let assoc = self.assoc;
        // On a hit at age h only blocks younger than h age (and stay below
        // the associativity); on a miss every same-set block ages and may
        // fall out of the guarantee.
        let cutoff = self.age(block).unwrap_or(assoc);
        self.entries.retain_mut(|e| {
            if e.0 == block {
                return false; // reinserted at age 0 below
            }
            if e.0 .0 % n_sets == set && e.1 < cutoff {
                e.1 += 1;
                return e.1 < assoc;
            }
            true
        });
        let pos = self
            .entries
            .binary_search_by_key(&block, |e| e.0)
            .unwrap_err();
        self.entries.insert(pos, (block, 0));
    }

    /// Must join (Definition in [8]): keep only blocks present on **both**
    /// sides, at their *maximal* age.
    pub fn join(&self, other: &MustState) -> MustState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        let mut entries = Vec::with_capacity(self.entries.len().min(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    entries.push((a.0, a.1.max(b.1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        MustState {
            entries,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All blocks guaranteed cached, with their maximal ages.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of blocks guaranteed cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is guaranteed cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for MustState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..u64::from(self.n_sets) {
            write!(f, "set {s}:")?;
            for h in 0..self.assoc {
                let cells: Vec<String> = self
                    .entries
                    .iter()
                    .filter(|e| e.0 .0 % u64::from(self.n_sets) == s && e.1 == h)
                    .map(|e| e.0.to_string())
                    .collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // one set, 2-way
    }

    #[test]
    fn update_inserts_at_age_zero() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert!(m.contains(MemBlockId(1)));
    }

    #[test]
    fn update_ages_out_old_blocks() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // 1 → age 1
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 ages past assoc → gone
        assert!(!m.contains(MemBlockId(1)));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        assert_eq!(m.age(MemBlockId(3)), Some(0));
    }

    #[test]
    fn touching_a_guaranteed_block_refreshes_it() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        m.update(MemBlockId(1)); // promote back to 0; 2 ages to 1
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        m.update(MemBlockId(3));
        assert!(!m.contains(MemBlockId(2)));
    }

    #[test]
    fn hit_update_leaves_older_blocks_alone() {
        // 4-way single set: a hit at age 1 must not disturb ages ≥ 1.
        let config = CacheConfig::new(4, 16, 64).unwrap();
        let mut m = MustState::new(&config);
        for b in [1u64, 2, 3, 4] {
            m.update(MemBlockId(b));
        }
        // Ages now: 4→0, 3→1, 2→2, 1→3.
        m.update(MemBlockId(3)); // hit at age 1
        assert_eq!(m.age(MemBlockId(3)), Some(0));
        assert_eq!(m.age(MemBlockId(4)), Some(1));
        assert_eq!(m.age(MemBlockId(2)), Some(2)); // untouched
        assert_eq!(m.age(MemBlockId(1)), Some(3)); // untouched
    }

    #[test]
    fn join_keeps_intersection_at_max_age() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        a.update(MemBlockId(2));
        let mut b = MustState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // age 0 in b, but age 1 in a
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(1)); // max(1, 0)
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // max(0, 1)
    }

    #[test]
    fn join_drops_one_sided_blocks() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1));
        let b = MustState::new(&cfg());
        let j = a.join(&b);
        assert!(j.is_empty());
    }

    #[test]
    fn per_set_capacity_is_respected() {
        // 2 sets × 2 ways: filling one set never evicts the other's blocks.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut m = MustState::new(&config);
        m.update(MemBlockId(1)); // set 1
        m.update(MemBlockId(2)); // set 0
        m.update(MemBlockId(4)); // set 0
        m.update(MemBlockId(6)); // set 0: evicts 2, not 1
        assert!(m.contains(MemBlockId(1)));
        assert!(!m.contains(MemBlockId(2)));
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|(_, age)| age < config.assoc()));
    }

    #[test]
    fn non_lru_policies_shrink_the_guarantee_window() {
        use crate::policy::ReplacementPolicy;
        // FIFO(4): effective associativity 1 — only the last access holds.
        let fifo = CacheConfig::new(4, 16, 64)
            .unwrap()
            .with_policy(ReplacementPolicy::Fifo)
            .unwrap();
        let mut m = MustState::new(&fifo);
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        assert!(m.contains(MemBlockId(2)));
        assert!(!m.contains(MemBlockId(1)));
        // PLRU(4): effective associativity log2(4)+1 = 3.
        let plru = CacheConfig::new(4, 16, 64)
            .unwrap()
            .with_policy(ReplacementPolicy::Plru)
            .unwrap();
        let mut m = MustState::new(&plru);
        for b in [1u64, 2, 3] {
            m.update(MemBlockId(b));
        }
        assert!(m.contains(MemBlockId(1))); // age 2 < 3
        m.update(MemBlockId(4));
        assert!(!m.contains(MemBlockId(1))); // aged past the window
        assert!(m.contains(MemBlockId(2)));
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Run the same access string through the concrete and must models;
        // every must-cached block must be concretely cached.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MustState::new(&config);
        for &b in &[1u64, 5, 1, 9, 13, 5, 1, 2, 6, 2] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for (blk, _) in m.iter() {
                assert!(c.contains(blk), "must claims {blk} but concrete lacks it");
            }
        }
    }
}
